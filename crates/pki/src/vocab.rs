//! Shared vocabulary of the paper's measurement axes: Android versions,
//! handset manufacturers, and mobile operators as they appear in Figures 1
//! and 2 and Table 2.

/// Android OS versions studied by the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AndroidVersion {
    /// Android 4.1 (AOSP store: 139 certificates).
    V4_1,
    /// Android 4.2 (AOSP store: 140 certificates).
    V4_2,
    /// Android 4.3 (AOSP store: 146 certificates).
    V4_3,
    /// Android 4.4 (AOSP store: 150 certificates).
    V4_4,
}

impl AndroidVersion {
    /// All versions in release order.
    pub const ALL: [AndroidVersion; 4] = [
        AndroidVersion::V4_1,
        AndroidVersion::V4_2,
        AndroidVersion::V4_3,
        AndroidVersion::V4_4,
    ];

    /// Display label ("4.1" …).
    pub fn label(self) -> &'static str {
        match self {
            AndroidVersion::V4_1 => "4.1",
            AndroidVersion::V4_2 => "4.2",
            AndroidVersion::V4_3 => "4.3",
            AndroidVersion::V4_4 => "4.4",
        }
    }

    /// Size of the official AOSP root store for this version (Table 1).
    pub fn aosp_store_size(self) -> usize {
        match self {
            AndroidVersion::V4_1 => 139,
            AndroidVersion::V4_2 => 140,
            AndroidVersion::V4_3 => 146,
            AndroidVersion::V4_4 => 150,
        }
    }
}

/// Handset manufacturers appearing in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Manufacturer {
    Samsung,
    Lg,
    Asus,
    Htc,
    Motorola,
    Sony,
    Huawei,
    Lenovo,
    Compal,
    Pantech,
    Other,
}

impl Manufacturer {
    /// The manufacturers with dedicated rows in Figure 1/2.
    pub const MAJOR: [Manufacturer; 6] = [
        Manufacturer::Asus,
        Manufacturer::Htc,
        Manufacturer::Lg,
        Manufacturer::Motorola,
        Manufacturer::Samsung,
        Manufacturer::Sony,
    ];

    /// Display label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Manufacturer::Samsung => "SAMSUNG",
            Manufacturer::Lg => "LG",
            Manufacturer::Asus => "ASUS",
            Manufacturer::Htc => "HTC",
            Manufacturer::Motorola => "MOTOROLA",
            Manufacturer::Sony => "SONY",
            Manufacturer::Huawei => "HUAWEI",
            Manufacturer::Lenovo => "LENOVO",
            Manufacturer::Compal => "COMPAL",
            Manufacturer::Pantech => "PANTECH",
            Manufacturer::Other => "OTHER",
        }
    }
}

/// Mobile operators with rows in Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Operator {
    ThreeUk,
    AttUs,
    BouyguesFr,
    EeUk,
    FreeFr,
    OrangeFr,
    SfrFr,
    SprintUs,
    TmobileUs,
    TelstraAu,
    VerizonUs,
    VodafoneDe,
    /// Any operator without a dedicated Figure 2 row.
    Other,
}

impl Operator {
    /// The operators with dedicated rows in Figure 2, in the paper's order.
    pub const MAJOR: [Operator; 12] = [
        Operator::ThreeUk,
        Operator::AttUs,
        Operator::BouyguesFr,
        Operator::EeUk,
        Operator::FreeFr,
        Operator::OrangeFr,
        Operator::SfrFr,
        Operator::SprintUs,
        Operator::TmobileUs,
        Operator::TelstraAu,
        Operator::VerizonUs,
        Operator::VodafoneDe,
    ];

    /// Display label as printed in the paper (e.g. `VERIZON(US)`).
    pub fn label(self) -> &'static str {
        match self {
            Operator::ThreeUk => "3(UK)",
            Operator::AttUs => "AT&T(US)",
            Operator::BouyguesFr => "BOUYGUES(FR)",
            Operator::EeUk => "EE(UK)",
            Operator::FreeFr => "FREE(FR)",
            Operator::OrangeFr => "ORANGE(FR)",
            Operator::SfrFr => "SFR(FR)",
            Operator::SprintUs => "SPRINT(US)",
            Operator::TmobileUs => "T-MOBILE(US)",
            Operator::TelstraAu => "TELSTRA(AU)",
            Operator::VerizonUs => "VERIZON(US)",
            Operator::VodafoneDe => "VODAFONE(DE)",
            Operator::Other => "OTHER",
        }
    }
}

/// One row of Figure 2: a manufacturer at an OS version, or an operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Figure2Row {
    /// A manufacturer/version row (upper block of the figure).
    Mfr(Manufacturer, AndroidVersion),
    /// An operator row (lower block).
    Op(Operator),
}

impl Figure2Row {
    /// The paper's Figure 2 row set, top to bottom.
    pub fn paper_rows() -> Vec<Figure2Row> {
        use AndroidVersion::*;
        use Manufacturer::*;
        let mut rows = vec![
            Figure2Row::Mfr(Htc, V4_1),
            Figure2Row::Mfr(Htc, V4_2),
            Figure2Row::Mfr(Htc, V4_3),
            Figure2Row::Mfr(Htc, V4_4),
            Figure2Row::Mfr(Motorola, V4_1),
            Figure2Row::Mfr(Samsung, V4_1),
            Figure2Row::Mfr(Samsung, V4_2),
            Figure2Row::Mfr(Samsung, V4_3),
            Figure2Row::Mfr(Samsung, V4_4),
            Figure2Row::Mfr(Sony, V4_3),
        ];
        rows.extend(Operator::MAJOR.iter().map(|&o| Figure2Row::Op(o)));
        rows
    }

    /// Display label ("SAMSUNG 4.2" or "VERIZON(US)").
    pub fn label(self) -> String {
        match self {
            Figure2Row::Mfr(m, v) => format!("{} {}", m.label(), v.label()),
            Figure2Row::Op(o) => o.label().to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aosp_sizes_match_table1() {
        assert_eq!(AndroidVersion::V4_1.aosp_store_size(), 139);
        assert_eq!(AndroidVersion::V4_2.aosp_store_size(), 140);
        assert_eq!(AndroidVersion::V4_3.aosp_store_size(), 146);
        assert_eq!(AndroidVersion::V4_4.aosp_store_size(), 150);
    }

    #[test]
    fn versions_are_ordered() {
        let mut prev = None;
        for v in AndroidVersion::ALL {
            if let Some(p) = prev {
                assert!(p < v);
                assert!(AndroidVersion::aosp_store_size(p) < v.aosp_store_size());
            }
            prev = Some(v);
        }
    }

    #[test]
    fn figure2_rows_match_paper() {
        let rows = Figure2Row::paper_rows();
        assert_eq!(rows.len(), 22); // 10 manufacturer rows + 12 operator rows
        assert_eq!(rows[0].label(), "HTC 4.1");
        assert_eq!(rows[4].label(), "MOTOROLA 4.1");
        assert_eq!(rows[21].label(), "VODAFONE(DE)");
    }

    #[test]
    fn labels_unique() {
        let rows = Figure2Row::paper_rows();
        let labels: std::collections::HashSet<_> = rows.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), rows.len());
    }
}
