//! tangled-scenario — the adversarial interception scenario engine.
//!
//! The paper's Table 6 observes *one* middlebox against *one* (implied)
//! correct client. This crate generalises both sides: a seeded
//! population of clients with validator defects drawn from a
//! configurable mix, an interposing proxy with selectable chain-minting
//! strategies, and a detection/attribution pipeline that replays every
//! `(client, probe, presented-chain)` session and classifies which
//! defect — if any — let the interception through.
//!
//! Every session lands in exactly one ledger bucket:
//!
//! * **blocked** — correct validation stopped the forged chain;
//! * **intercepted** — the session was interposed and accepted, with the
//!   enabling defect attributed;
//! * **whitelisted** — the proxy's pin policy passed the target through.
//!
//! The report is a pure function of the seed: chain generation shards
//! over the ambient [`tangled_exec::ExecPool`] and the rendered ledger
//! is byte-identical at any pool width. Verdicts are computed by
//! [`tangled_trustd::TrustService`] via the idempotent `probe_session`
//! wire op, so the offline report and a served replay agree
//! verdict-for-verdict by construction.

pub mod mint;
pub mod serve;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use tangled_crypto::rng::SplitMix64;
use tangled_exec::{split_seed, ExecPool};
use tangled_intercept::DefectClass;
use tangled_trustd::{
    canonical, scale_for_sessions, verdict_fingerprint, Request, Response, TrustService,
    DEFAULT_CACHE_CAPACITY,
};

pub use mint::{MintStrategy, ScenarioProxy};
pub use serve::{replay_mitm, replay_mitm_chaos, MitmOutcome};

/// Store profile the simulated devices run.
pub const DEVICE_PROFILE: &str = "AOSP 4.4";

/// A scenario: who the clients are, how the proxy forges, and the seed
/// everything derives from.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Master seed; every derived stream splits off this.
    pub seed: u64,
    /// Number of simulated clients.
    pub clients: usize,
    /// Defect mix as `(class, weight)` pairs; weights need not sum to
    /// anything in particular.
    pub mix: Vec<(DefectClass, u32)>,
    /// Mint strategies the proxy cycles through.
    pub strategies: Vec<MintStrategy>,
}

/// The default population mix: a defective-client survey in miniature.
pub fn default_mix() -> Vec<(DefectClass, u32)> {
    vec![
        (DefectClass::Correct, 40),
        (DefectClass::AcceptAll, 20),
        (DefectClass::NoHostnameCheck, 15),
        (DefectClass::NoExpiryCheck, 10),
        (DefectClass::PinBypass, 5),
        (DefectClass::StaleStore, 10),
    ]
}

impl ScenarioSpec {
    /// Scale the default scenario: `scale` of 1.0 is a 200-client
    /// population over every strategy.
    pub fn for_scale(scale: f64, seed: u64) -> ScenarioSpec {
        let clients = ((scale * 200.0).round() as usize).max(4);
        ScenarioSpec {
            seed,
            clients,
            mix: default_mix(),
            strategies: MintStrategy::ALL.to_vec(),
        }
    }

    /// Size the scenario from a requested session count (loadgen's
    /// currency), via the same scale curve as the trustd replay.
    pub fn for_sessions(sessions: usize, seed: u64) -> ScenarioSpec {
        ScenarioSpec::for_scale(scale_for_sessions(sessions), seed)
    }

    /// Assign each client a defect class, deterministically from the
    /// seed: client `i` draws from its own split stream, so the
    /// population is independent of iteration order.
    pub fn population(&self) -> Vec<DefectClass> {
        let total: u64 = self.mix.iter().map(|(_, w)| u64::from(*w)).sum();
        (0..self.clients)
            .map(|i| {
                if total == 0 {
                    return DefectClass::Correct;
                }
                let mut rng = SplitMix64::new(split_seed(self.seed, i as u64));
                let mut pick = rng.next_below(total);
                for (class, weight) in &self.mix {
                    let w = u64::from(*weight);
                    if pick < w {
                        return *class;
                    }
                    pick -= w;
                }
                DefectClass::Correct
            })
            .collect()
    }

    /// Total sessions this spec generates.
    pub fn sessions(&self) -> usize {
        self.clients * self.strategies.len() * 21
    }
}

/// One row of the conservation ledger: a strategy's sessions split into
/// the three exclusive buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerRow {
    /// The mint strategy this row covers.
    pub strategy: MintStrategy,
    /// Sessions under this strategy.
    pub sessions: usize,
    /// Blocked by correct validation, keyed by reason.
    pub blocked: usize,
    /// Intercepted with an attributed defect.
    pub intercepted: usize,
    /// Passed through by the pin-whitelist policy.
    pub whitelisted: usize,
}

/// The scenario report: population, ledger, attribution, fingerprint.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The spec that produced this report.
    pub seed: u64,
    /// Client count.
    pub clients: usize,
    /// Defect-class population counts, in [`DefectClass::ALL`] order.
    pub population: Vec<(DefectClass, usize)>,
    /// Per-strategy conservation rows.
    pub ledger: Vec<LedgerRow>,
    /// Interceptions keyed by the defect (or installed-root) that
    /// enabled them.
    pub attribution: BTreeMap<String, usize>,
    /// Blocked sessions keyed by rejection reason.
    pub blocks: BTreeMap<String, usize>,
    /// Sessions whose response was not a probe_session verdict
    /// (should be zero; breaks conservation if not).
    pub errors: usize,
    /// FNV-1a fingerprint over the canonical verdict vector.
    pub fingerprint: u64,
}

impl ScenarioReport {
    /// Does every session land in exactly one bucket?
    pub fn conserved(&self) -> bool {
        self.errors == 0
            && self.ledger.iter().all(|r| {
                r.sessions == r.blocked + r.intercepted + r.whitelisted
            })
    }

    /// Ledger totals `(sessions, blocked, intercepted, whitelisted)`.
    pub fn totals(&self) -> (usize, usize, usize, usize) {
        self.ledger.iter().fold((0, 0, 0, 0), |acc, r| {
            (
                acc.0 + r.sessions,
                acc.1 + r.blocked,
                acc.2 + r.intercepted,
                acc.3 + r.whitelisted,
            )
        })
    }

    /// Render the report, ending with the conservation line and the
    /// verdict-vector fingerprint.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Interception scenarios — {} clients, seed {} ({})",
            self.clients, self.seed, DEVICE_PROFILE
        );
        let _ = writeln!(out, "population:");
        for (class, n) in &self.population {
            let _ = writeln!(out, "  {:<18} {n}", class.label());
        }
        let _ = writeln!(out, "ledger (per mint strategy):");
        let _ = writeln!(
            out,
            "  {:<18} {:>8} {:>8} {:>11} {:>11}",
            "strategy", "sessions", "blocked", "intercepted", "whitelisted"
        );
        for row in &self.ledger {
            let _ = writeln!(
                out,
                "  {:<18} {:>8} {:>8} {:>11} {:>11}",
                row.strategy.label(),
                row.sessions,
                row.blocked,
                row.intercepted,
                row.whitelisted
            );
        }
        let _ = writeln!(out, "attribution (defect that enabled interception):");
        for (label, n) in &self.attribution {
            let _ = writeln!(out, "  {label:<18} {n}");
        }
        let _ = writeln!(out, "block reasons:");
        for (label, n) in &self.blocks {
            let _ = writeln!(out, "  {label:<18} {n}");
        }
        let (sessions, blocked, intercepted, whitelisted) = self.totals();
        let status = if self.conserved() { "ok" } else { "VIOLATED" };
        let _ = writeln!(
            out,
            "conservation: {status} (sessions {sessions} = blocked {blocked} + intercepted {intercepted} + whitelisted {whitelisted})"
        );
        let _ = writeln!(out, "verdict-vector fingerprint: {:016x}", self.fingerprint);
        out
    }
}

/// Build the full request plan for a spec: one `probe_session` request
/// per `(strategy, client, target)` triple, strategy-major. Chains are
/// minted once per `(strategy, target)` pair, sharded over the ambient
/// pool.
pub fn plan(spec: &ScenarioSpec) -> Result<Vec<Request>, tangled_intercept::MintError> {
    let proxy = ScenarioProxy::new(spec.seed)?;
    let population = spec.population();
    let targets = proxy.targets().to_vec();

    // Mint each (strategy, target) chain exactly once, in parallel.
    let pairs: Vec<(MintStrategy, usize)> = spec
        .strategies
        .iter()
        .flat_map(|s| (0..targets.len()).map(move |t| (*s, t)))
        .collect();
    let pool = ExecPool::current();
    let minted = pool.par_map_indexed(&pairs, |_, (strategy, t)| proxy.present(*strategy, *t));
    let mut chains = Vec::with_capacity(minted.len());
    for chain in minted {
        chains.push(chain?);
    }

    let mut requests = Vec::with_capacity(spec.sessions());
    for (si, strategy) in spec.strategies.iter().enumerate() {
        for defect in population.iter().take(spec.clients) {
            for (ti, target) in targets.iter().enumerate() {
                let intercepted = proxy.intercepts(target);
                let chain: Vec<Vec<u8>> = chains[si * targets.len() + ti]
                    .iter()
                    .map(|c| c.to_der().to_vec())
                    .collect();
                let extra_anchor = if intercepted && *strategy == MintStrategy::InstalledRoot {
                    Some(proxy.installed_root().to_der().to_vec())
                } else {
                    None
                };
                requests.push(Request::ProbeSession {
                    profile: DEVICE_PROFILE.to_owned(),
                    defect: defect.label().to_owned(),
                    target: target.to_string(),
                    chain,
                    pinned: proxy.is_pinned(target),
                    extra_anchor,
                    intercepted,
                });
            }
        }
    }
    Ok(requests)
}

fn bucket(verdict: &str) -> Option<(&'static str, &str)> {
    let outcome = verdict.strip_prefix("probe_session/")?;
    if outcome == "whitelisted" {
        Some(("whitelisted", ""))
    } else if let Some(rest) = outcome.strip_prefix("blocked(") {
        Some(("blocked", rest.strip_suffix(')')?))
    } else if let Some(rest) = outcome.strip_prefix("intercepted(") {
        Some(("intercepted", rest.strip_suffix(')')?))
    } else {
        None
    }
}

/// Tally a verdict vector (as produced by [`tangled_trustd::canonical`])
/// into a [`ScenarioReport`]. Shared by the offline compute and the
/// served replay so both paths summarise identically.
pub fn tally(spec: &ScenarioSpec, verdicts: &[String]) -> ScenarioReport {
    let population = spec.population();
    let mut counts = vec![0usize; DefectClass::ALL.len()];
    for class in &population {
        if let Some(i) = DefectClass::ALL.iter().position(|c| c == class) {
            counts[i] += 1;
        }
    }

    let per_strategy = spec.clients * 21;
    let mut ledger: Vec<LedgerRow> = spec
        .strategies
        .iter()
        .map(|s| LedgerRow {
            strategy: *s,
            sessions: 0,
            blocked: 0,
            intercepted: 0,
            whitelisted: 0,
        })
        .collect();
    let mut attribution = BTreeMap::new();
    let mut blocks = BTreeMap::new();
    let mut errors = 0usize;
    for (idx, verdict) in verdicts.iter().enumerate() {
        let si = idx.checked_div(per_strategy).unwrap_or(0);
        let Some(row) = ledger.get_mut(si.min(spec.strategies.len().saturating_sub(1))) else {
            errors += 1;
            continue;
        };
        row.sessions += 1;
        match bucket(verdict) {
            Some(("whitelisted", _)) => row.whitelisted += 1,
            Some(("blocked", reason)) => {
                row.blocked += 1;
                *blocks.entry(reason.to_owned()).or_insert(0) += 1;
            }
            Some(("intercepted", attributed)) => {
                row.intercepted += 1;
                *attribution.entry(attributed.to_owned()).or_insert(0) += 1;
            }
            _ => {
                row.sessions -= 1;
                errors += 1;
            }
        }
    }

    let report = ScenarioReport {
        seed: spec.seed,
        clients: spec.clients,
        population: DefectClass::ALL
            .iter()
            .zip(&counts)
            .map(|(c, n)| (*c, *n))
            .collect(),
        ledger,
        attribution,
        blocks,
        errors,
        fingerprint: verdict_fingerprint(verdicts),
    };

    let (sessions, blocked, intercepted, whitelisted) = report.totals();
    tangled_obs::registry::add("scenario.sessions", sessions as u64);
    tangled_obs::registry::add("scenario.blocked", blocked as u64);
    tangled_obs::registry::add("scenario.intercepted", intercepted as u64);
    tangled_obs::registry::add("scenario.whitelisted", whitelisted as u64);
    for (label, n) in &report.attribution {
        tangled_obs::registry::add(&format!("scenario.attributed.{label}"), *n as u64);
    }
    tangled_obs::registry::observe("scenario.population", report.clients as u64);
    report
}

/// Run the whole scenario offline: plan, evaluate every session against
/// a local [`TrustService`], and tally the ledger. Byte-reproducible
/// from the seed at any pool width.
pub fn compute(spec: &ScenarioSpec) -> Result<ScenarioReport, tangled_intercept::MintError> {
    let requests = plan(spec)?;
    let service = Arc::new(TrustService::new(DEFAULT_CACHE_CAPACITY));
    let pool = ExecPool::current();
    let verdicts = pool.par_map_indexed(&requests, |_, req| canonical(&service.handle(req)));
    Ok(tally(spec, &verdicts))
}

/// Convenience: outcome of a single response, for spot checks.
pub fn outcome_of(resp: &Response) -> Option<String> {
    match resp {
        Response::ProbeSession { outcome } => Some(outcome.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec {
            seed,
            clients: 6,
            mix: default_mix(),
            strategies: MintStrategy::ALL.to_vec(),
        }
    }

    #[test]
    fn population_is_seed_stable_and_covers_the_mix() {
        let spec = ScenarioSpec::for_scale(1.0, 7);
        let a = spec.population();
        let b = spec.population();
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for class in DefectClass::ALL {
            assert!(
                a.contains(&class),
                "200-client default mix should include {class}"
            );
        }
    }

    #[test]
    fn report_conserves_and_attributes() {
        let report = compute(&small_spec(2014)).unwrap();
        assert!(report.conserved(), "ledger must conserve:\n{}", report.render());
        let (sessions, _, intercepted, whitelisted) = report.totals();
        assert_eq!(sessions, 6 * 5 * 21);
        // 9 whitelisted pass-throughs per client per strategy.
        assert_eq!(whitelisted, 6 * 5 * 9);
        assert!(intercepted > 0, "defective population must leak sessions");
        for label in report.attribution.keys() {
            assert!(
                label == "installed-root"
                    || DefectClass::parse(label).is_some(),
                "unknown attribution label {label}"
            );
        }
    }

    #[test]
    fn same_seed_renders_byte_identical() {
        let a = compute(&small_spec(99)).unwrap().render();
        let b = compute(&small_spec(99)).unwrap().render();
        assert_eq!(a, b);
    }

    #[test]
    fn all_correct_population_only_leaks_installed_root() {
        let spec = ScenarioSpec {
            seed: 5,
            clients: 4,
            mix: vec![(DefectClass::Correct, 1)],
            strategies: MintStrategy::ALL.to_vec(),
        };
        let report = compute(&spec).unwrap();
        assert!(report.conserved());
        for row in &report.ledger {
            if row.strategy == MintStrategy::InstalledRoot {
                assert!(row.intercepted > 0, "installed root defeats correct clients");
            } else {
                assert_eq!(
                    row.intercepted, 0,
                    "correct clients must block {}",
                    row.strategy
                );
            }
        }
        assert_eq!(report.attribution.keys().collect::<Vec<_>>(), ["installed-root"]);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    fn arb_mix() -> impl Strategy<Value = Vec<(DefectClass, u32)>> {
        proptest::collection::vec((0usize..6usize, 0u32..5u32), 1..7).prop_map(|pairs| {
            pairs
                .into_iter()
                .map(|(i, w)| (DefectClass::ALL[i], w))
                .collect()
        })
    }

    fn arb_strategies() -> impl Strategy<Value = Vec<MintStrategy>> {
        proptest::collection::vec(0usize..5usize, 1..4)
            .prop_map(|ids| ids.into_iter().map(|i| MintStrategy::ALL[i]).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// Any mix, any strategy subset, any seed: the engine never
        /// panics, the ledger conserves, and every attribution label is
        /// a known defect (or the installed root).
        #[test]
        fn random_scenarios_conserve(
            seed in 0u64..1_000_000,
            clients in 1usize..4,
            mix in arb_mix(),
            strategies in arb_strategies(),
        ) {
            let spec = ScenarioSpec { seed, clients, mix, strategies };
            let report = compute(&spec).expect("compute");
            prop_assert!(report.conserved(), "ledger conserves:\n{}", report.render());
            let (sessions, _, _, _) = report.totals();
            prop_assert_eq!(sessions, spec.sessions());
            for label in report.attribution.keys() {
                prop_assert!(
                    label == "installed-root" || DefectClass::parse(label).is_some(),
                    "unknown attribution label {}", label
                );
            }
        }

        /// A population of only correct validators leaks nothing — for
        /// every strategy except the locally-installed root, which even
        /// correct validation anchors.
        #[test]
        fn correct_population_only_falls_to_installed_root(
            seed in 0u64..1_000_000,
            strategies in arb_strategies(),
        ) {
            let spec = ScenarioSpec {
                seed,
                clients: 2,
                mix: vec![(DefectClass::Correct, 1)],
                strategies,
            };
            let report = compute(&spec).expect("compute");
            prop_assert!(report.conserved());
            for row in &report.ledger {
                if row.strategy == MintStrategy::InstalledRoot {
                    prop_assert!(row.intercepted > 0, "installed root defeats correct clients");
                } else {
                    prop_assert_eq!(row.intercepted, 0, "correct clients block {}", row.strategy);
                }
            }
        }
    }
}
