//! `tangled` — command-line interface to the tangled-mass toolkit.
//!
//! ```text
//! tangled tables  [scale]            print Tables 1–6 (default scale 0.5)
//! tangled figures [scale]            print Figures 1–3 data summaries
//! tangled export  [scale]            full result set as JSON on stdout
//! tangled mkstore <version> <dir>    write an AOSP store as a cacerts dir
//!                                    (version: 4.1 | 4.2 | 4.3 | 4.4 |
//!                                     mozilla | ios7)
//! tangled audit   <dir> <version>    audit an on-disk cacerts directory
//!                                    against an AOSP baseline
//! tangled probe                      replay the §7 interception case
//! ```

use std::collections::HashSet;
use std::process::ExitCode;
use tangled_mass::analysis::{export, figures, survey, tables, Study};
use tangled_mass::asn1::Time;
use tangled_mass::netalyzr::{Population, PopulationSpec};
use tangled_mass::pki::audit::audit;
use tangled_mass::pki::cacerts::{from_cacerts, to_cacerts_pem, CacertsFile};
use tangled_mass::pki::stores::ReferenceStore;
use tangled_mass::pki::trust::AnchorSource;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("tables") => cmd_tables(parse_scale(args.get(1))),
        Some("figures") => cmd_figures(parse_scale(args.get(1))),
        Some("export") => cmd_export(parse_scale(args.get(1))),
        Some("mkstore") => cmd_mkstore(args.get(1), args.get(2)),
        Some("audit") => cmd_audit(args.get(1), args.get(2)),
        Some("probe") => cmd_probe(),
        _ => {
            eprintln!("usage: tangled <tables|figures|export|mkstore|audit|probe> [...]");
            eprintln!("  tables  [scale]          print Tables 1-6");
            eprintln!("  figures [scale]          print Figures 1-3 summaries");
            eprintln!("  export  [scale]          print the result set as JSON");
            eprintln!("  mkstore <version> <dir>  write a reference store as cacerts files");
            eprintln!("  audit   <dir> <version>  audit a cacerts directory");
            eprintln!("  probe                    replay the interception case");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse_scale(arg: Option<&String>) -> f64 {
    arg.and_then(|s| s.parse().ok()).unwrap_or(0.5)
}

fn parse_store(name: &str) -> Result<ReferenceStore, String> {
    match name {
        "4.1" => Ok(ReferenceStore::Aosp41),
        "4.2" => Ok(ReferenceStore::Aosp42),
        "4.3" => Ok(ReferenceStore::Aosp43),
        "4.4" => Ok(ReferenceStore::Aosp44),
        "mozilla" => Ok(ReferenceStore::Mozilla),
        "ios7" => Ok(ReferenceStore::Ios7),
        other => Err(format!("unknown store '{other}' (want 4.1|4.2|4.3|4.4|mozilla|ios7)")),
    }
}

fn cmd_tables(scale: f64) -> Result<(), String> {
    eprintln!("generating study at scale {scale}…");
    let study = Study::new(scale, scale.max(0.25));
    println!("{}", tables::dataset_summary(&study.population).render());
    print!("{}", tables::render_all(&study));
    Ok(())
}

fn cmd_figures(scale: f64) -> Result<(), String> {
    eprintln!("generating study at scale {scale}…");
    let study = Study::new(scale, scale.max(0.25));
    println!("{}", figures::figure1_render(&study.population, 20));
    println!("{}", figures::figure2_render(&study.population, 20));
    println!("{}", figures::figure3_render(&study.validation));
    Ok(())
}

fn cmd_export(scale: f64) -> Result<(), String> {
    eprintln!("generating study at scale {scale}…");
    let study = Study::new(scale, scale.max(0.25));
    let doc = export::export_study(&study);
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn cmd_mkstore(version: Option<&String>, dir: Option<&String>) -> Result<(), String> {
    let version = version.ok_or("mkstore needs a store name")?;
    let dir = dir.ok_or("mkstore needs an output directory")?;
    let store = parse_store(version)?.cached();
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let files = to_cacerts_pem(&store);
    for f in &files {
        let path = std::path::Path::new(dir).join(&f.name);
        std::fs::write(&path, &f.der).map_err(|e| e.to_string())?;
    }
    eprintln!("wrote {} certificates to {dir}", files.len());
    Ok(())
}

fn cmd_audit(dir: Option<&String>, version: Option<&String>) -> Result<(), String> {
    let dir = dir.ok_or("audit needs a cacerts directory")?;
    let version = version.ok_or("audit needs a baseline store name")?;
    let baseline = parse_store(version)?.cached();

    let mut files = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| e.to_string())? {
        let entry = entry.map_err(|e| e.to_string())?;
        if !entry.file_type().map_err(|e| e.to_string())?.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let der = std::fs::read(entry.path()).map_err(|e| e.to_string())?;
        files.push(CacertsFile { name, der });
    }
    files.sort_by(|a, b| a.name.cmp(&b.name));
    let observed = from_cacerts(dir, &files, AnchorSource::Unknown)
        .map_err(|e| format!("reading {dir}: {e}"))?;
    let report = audit(
        &baseline,
        &observed,
        Time::date(2014, 2, 1).expect("valid date"),
    );
    print!("{}", report.render());
    Ok(())
}

fn cmd_probe() -> Result<(), String> {
    println!("{}", tables::table6().render());
    let pop = Population::generate(&PopulationSpec::scaled(0.1));
    let victim = survey::nexus7_victim(&pop).ok_or("no Nexus 7 in population")?;
    let proxied: HashSet<_> = [victim].into_iter().collect();
    eprintln!(
        "surveying {} sessions with one proxied device…",
        pop.sessions.len()
    );
    let report = survey::survey(&pop, &proxied);
    println!(
        "survey: {} of {} sessions exposed interception ({} device(s))",
        report.flagged.len(),
        report.sessions,
        report.flagged_devices().len()
    );
    for f in report.flagged.iter().take(3) {
        println!(
            "  session {} on device {:?}: {} targets re-signed by {}",
            f.session,
            f.device,
            f.intercepted_targets,
            f.interfering_issuer.as_deref().unwrap_or("?")
        );
    }
    Ok(())
}
