//! Property tests for the trustd wire protocol: encode/decode round
//! trips over randomized messages, frame-layer bounds, and
//! never-panicking decoders on arbitrary bytes.

use proptest::prelude::*;
use tangled_pki::cacerts::CacertsFile;
use tangled_trustd::wire::{
    read_frame, write_frame, ChainVerdict, FrameError, Request, Response, WireError,
    MAX_FRAME,
};

fn arb_blob() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), 0..64)
}

fn arb_chain() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(arb_blob(), 0..4)
}

fn arb_name() -> BoxedStrategy<String> {
    "[A-Za-z0-9 ._:/-]{0,32}".boxed()
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (arb_name(), arb_chain())
            .prop_map(|(profile, chain)| Request::Validate { profile, chain }),
        arb_blob().prop_map(|cert| Request::Classify { cert }),
        (
            arb_name(),
            proptest::collection::vec(
                ("[0-9a-f]{8}", 0u8..10, arb_blob()).prop_map(|(hash, n, der)| {
                    CacertsFile {
                        name: format!("{hash}.{n}"),
                        der,
                    }
                }),
                0..4,
            ),
        )
            .prop_map(|(baseline, files)| Request::Audit { baseline, files }),
        (arb_name(), arb_name(), arb_chain(), any::<bool>()).prop_map(
            |(profile, target, chain, pinned)| Request::Probe {
                profile,
                target,
                chain,
                pinned,
            }
        ),
        Just(Request::Stats),
    ]
}

fn arb_verdict() -> impl Strategy<Value = ChainVerdict> {
    prop_oneof![
        (arb_name(), 1usize..8).prop_map(|(anchor, chain_len)| ChainVerdict::Trusted {
            anchor,
            chain_len,
        }),
        arb_name().prop_map(|error| ChainVerdict::Untrusted { error }),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (arb_verdict(), any::<bool>())
            .prop_map(|(verdict, cached)| Response::Validate { verdict, cached }),
        (arb_name(), proptest::collection::vec(arb_name(), 0..4))
            .prop_map(|(class, profiles)| Response::Classify { class, profiles }),
        (
            arb_name(),
            0usize..200,
            0usize..200,
            0usize..400,
            proptest::collection::vec((arb_name(), arb_name()), 0..4),
        )
            .prop_map(|(risk, added, removed, findings, quarantined)| {
                Response::Audit {
                    risk,
                    added,
                    removed,
                    findings,
                    quarantined,
                }
            }),
        arb_name().prop_map(|verdict| Response::Probe { verdict }),
        (arb_name(), any::<u64>(), 0usize..200).prop_map(|(profile, epoch, anchors)| {
            Response::Swap {
                profile,
                epoch,
                anchors,
            }
        }),
        (arb_name(), arb_name())
            .prop_map(|(stage, error)| Response::Error { stage, error }),
    ]
}

proptest! {
    #[test]
    fn request_encode_decode_round_trips(req in arb_request()) {
        let body = req.encode();
        prop_assert!(body.len() <= MAX_FRAME, "encoded request fits a frame");
        let back = Request::decode(&body);
        prop_assert_eq!(back.as_ref().ok(), Some(&req), "decode({:?})", req);
    }

    #[test]
    fn response_encode_decode_round_trips(resp in arb_response()) {
        let body = resp.encode();
        prop_assert!(body.len() <= MAX_FRAME, "encoded response fits a frame");
        let back = Response::decode(&body);
        prop_assert_eq!(back.as_ref().ok(), Some(&resp), "decode({:?})", resp);
    }

    #[test]
    fn framed_request_survives_the_stream(req in arb_request()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &req.encode()).expect("bounded frame");
        let mut cursor = std::io::Cursor::new(buf);
        let body = read_frame(&mut cursor).expect("readable").expect("one frame");
        prop_assert_eq!(Request::decode(&body).ok(), Some(req));
        // And the stream is cleanly exhausted.
        prop_assert!(read_frame(&mut cursor).expect("eof").is_none());
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_decoders(bytes in arb_blob()) {
        // Whatever the bytes, decoding returns a classified error or a
        // message — it never panics.
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    #[test]
    fn oversized_lengths_are_rejected(extra in 1u64..u32::MAX as u64 - MAX_FRAME as u64) {
        let len = (MAX_FRAME as u64 + extra) as u32;
        let mut buf = len.to_be_bytes().to_vec();
        // Any amount of trailing data: the header alone must reject.
        buf.extend_from_slice(&[0u8; 16]);
        match read_frame(&mut std::io::Cursor::new(buf)) {
            Err(FrameError::Wire(WireError::Oversized { len: seen })) => {
                prop_assert_eq!(seen, len as usize);
            }
            other => prop_assert!(false, "expected Oversized, got {:?}", other),
        }
    }
}
