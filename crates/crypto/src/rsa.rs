//! RSA key generation and PKCS#1 v1.5 signatures (RFC 8017).
//!
//! Implements RSASSA-PKCS1-v1_5 with SHA-1 or SHA-256 digests — the two
//! signature algorithms that dominate the 2012–2014 certificate corpus the
//! paper studies. Verification is strict: the decoded encoded message must
//! match the expected EMSA-PKCS1-v1_5 encoding byte-for-byte (no
//! Bleichenbacher-style lenient parsing).

use crate::bigint::Uint;
use crate::modular::{lcm, mod_inv, mod_pow};
use crate::prime::gen_prime_coprime;
use crate::rng::SplitMix64;
use crate::sha1::sha1;
use crate::sha256::sha256;
use crate::CryptoError;

/// Signature algorithm identifiers understood by this workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignatureAlgorithm {
    /// `sha1WithRSAEncryption` (OID 1.2.840.113549.1.1.5).
    Sha1WithRsa,
    /// `sha256WithRSAEncryption` (OID 1.2.840.113549.1.1.11).
    Sha256WithRsa,
}

impl SignatureAlgorithm {
    /// Human-readable name matching OpenSSL's convention.
    pub fn name(self) -> &'static str {
        match self {
            SignatureAlgorithm::Sha1WithRsa => "sha1WithRSAEncryption",
            SignatureAlgorithm::Sha256WithRsa => "sha256WithRSAEncryption",
        }
    }

    /// DigestInfo DER prefix for EMSA-PKCS1-v1_5 (RFC 8017 §9.2 note 1).
    fn digest_info_prefix(self) -> &'static [u8] {
        match self {
            // SEQ { SEQ { OID 1.3.14.3.2.26, NULL }, OCTET STRING (20) }
            SignatureAlgorithm::Sha1WithRsa => {
                &[0x30, 0x21, 0x30, 0x09, 0x06, 0x05, 0x2b, 0x0e, 0x03, 0x02, 0x1a, 0x05, 0x00,
                  0x04, 0x14]
            }
            // SEQ { SEQ { OID 2.16.840.1.101.3.4.2.1, NULL }, OCTET STRING (32) }
            SignatureAlgorithm::Sha256WithRsa => {
                &[0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01, 0x65, 0x03, 0x04,
                  0x02, 0x01, 0x05, 0x00, 0x04, 0x20]
            }
        }
    }

    fn digest(self, message: &[u8]) -> Vec<u8> {
        match self {
            SignatureAlgorithm::Sha1WithRsa => sha1(message).to_vec(),
            SignatureAlgorithm::Sha256WithRsa => sha256(message).to_vec(),
        }
    }
}

/// An RSA public key: modulus `n` and public exponent `e`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    /// The modulus `n = p·q`.
    pub modulus: Uint,
    /// The public exponent `e` (65537 throughout this workspace).
    pub exponent: Uint,
}

impl RsaPublicKey {
    /// Byte length of the modulus (`k` in RFC 8017 terms).
    pub fn modulus_len(&self) -> usize {
        self.modulus.bit_len().div_ceil(8)
    }

    /// Verify an RSASSA-PKCS1-v1_5 signature over `message`.
    pub fn verify(
        &self,
        alg: SignatureAlgorithm,
        message: &[u8],
        signature: &[u8],
    ) -> Result<(), CryptoError> {
        if self.modulus.is_zero() || self.exponent.is_zero() {
            return Err(CryptoError::InvalidKey);
        }
        let k = self.modulus_len();
        if signature.len() != k {
            return Err(CryptoError::BadSignature);
        }
        let s = Uint::from_be_bytes(signature);
        if s >= self.modulus {
            return Err(CryptoError::BadSignature);
        }
        let m = mod_pow(&s, &self.exponent, &self.modulus)?;
        let em = m
            .to_be_bytes_padded(k)
            .ok_or(CryptoError::BadSignature)?;
        let expected = emsa_pkcs1_v15(alg, message, k)?;
        // Full byte comparison — strict verification.
        if em == expected {
            Ok(())
        } else {
            Err(CryptoError::BadSignature)
        }
    }
}

/// An RSA key pair with full private material.
#[derive(Debug, Clone)]
pub struct RsaKeyPair {
    public: RsaPublicKey,
    d: Uint,
}

impl RsaKeyPair {
    /// Deterministically generate a key pair with a modulus of
    /// `modulus_bits` from the given RNG. `modulus_bits` must be ≥ 128 and
    /// even.
    pub fn generate(modulus_bits: usize, rng: &mut SplitMix64) -> Result<Self, CryptoError> {
        if modulus_bits < 128 || !modulus_bits.is_multiple_of(2) {
            return Err(CryptoError::InvalidKey);
        }
        let e = Uint::from_u64(65537);
        let half = modulus_bits / 2;
        for _attempt in 0..64 {
            let p = gen_prime_coprime(half, &e, rng);
            let q = gen_prime_coprime(half, &e, rng);
            if p == q {
                continue;
            }
            let n = p.mul(&q);
            if n.bit_len() != modulus_bits {
                continue; // product fell one bit short; redraw
            }
            let lambda = lcm(&p.sub(&Uint::one()), &q.sub(&Uint::one()));
            let d = match mod_inv(&e, &lambda) {
                Ok(d) => d,
                Err(_) => continue,
            };
            return Ok(RsaKeyPair {
                public: RsaPublicKey {
                    modulus: n,
                    exponent: e,
                },
                d,
            });
        }
        Err(CryptoError::KeyGenExhausted)
    }

    /// Borrow the public half.
    pub fn public_key(&self) -> &RsaPublicKey {
        &self.public
    }

    /// Sign `message` with RSASSA-PKCS1-v1_5.
    pub fn sign(
        &self,
        alg: SignatureAlgorithm,
        message: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let k = self.public.modulus_len();
        let em = emsa_pkcs1_v15(alg, message, k)?;
        let m = Uint::from_be_bytes(&em);
        let s = mod_pow(&m, &self.d, &self.public.modulus)?;
        s.to_be_bytes_padded(k).ok_or(CryptoError::MessageTooLong)
    }
}

/// EMSA-PKCS1-v1_5 encoding (RFC 8017 §9.2):
/// `0x00 0x01 PS 0x00 DigestInfo` where PS is at least eight `0xFF` bytes.
fn emsa_pkcs1_v15(
    alg: SignatureAlgorithm,
    message: &[u8],
    em_len: usize,
) -> Result<Vec<u8>, CryptoError> {
    let digest = alg.digest(message);
    let t_len = alg.digest_info_prefix().len() + digest.len();
    if em_len < t_len + 11 {
        return Err(CryptoError::MessageTooLong);
    }
    let mut em = Vec::with_capacity(em_len);
    em.push(0x00);
    em.push(0x01);
    em.resize(em_len - t_len - 1, 0xff);
    em.push(0x00);
    em.extend_from_slice(alg.digest_info_prefix());
    em.extend_from_slice(&digest);
    debug_assert_eq!(em.len(), em_len);
    Ok(em)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keypair(seed: u64) -> RsaKeyPair {
        RsaKeyPair::generate(512, &mut SplitMix64::new(seed)).expect("keygen")
    }

    #[test]
    fn sign_verify_round_trip_sha256() {
        let kp = keypair(1);
        let sig = kp.sign(SignatureAlgorithm::Sha256WithRsa, b"hello world").unwrap();
        kp.public_key()
            .verify(SignatureAlgorithm::Sha256WithRsa, b"hello world", &sig)
            .unwrap();
    }

    #[test]
    fn sign_verify_round_trip_sha1() {
        let kp = keypair(2);
        let sig = kp.sign(SignatureAlgorithm::Sha1WithRsa, b"legacy era").unwrap();
        kp.public_key()
            .verify(SignatureAlgorithm::Sha1WithRsa, b"legacy era", &sig)
            .unwrap();
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = keypair(3);
        let sig = kp.sign(SignatureAlgorithm::Sha256WithRsa, b"original").unwrap();
        assert_eq!(
            kp.public_key()
                .verify(SignatureAlgorithm::Sha256WithRsa, b"tampered", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn tampered_signature_rejected() {
        let kp = keypair(4);
        let mut sig = kp.sign(SignatureAlgorithm::Sha256WithRsa, b"msg").unwrap();
        sig[10] ^= 0x01;
        assert_eq!(
            kp.public_key()
                .verify(SignatureAlgorithm::Sha256WithRsa, b"msg", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn wrong_algorithm_rejected() {
        let kp = keypair(5);
        let sig = kp.sign(SignatureAlgorithm::Sha1WithRsa, b"msg").unwrap();
        assert_eq!(
            kp.public_key()
                .verify(SignatureAlgorithm::Sha256WithRsa, b"msg", &sig),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = keypair(6);
        let kp2 = keypair(7);
        let sig = kp1.sign(SignatureAlgorithm::Sha256WithRsa, b"msg").unwrap();
        assert!(kp2
            .public_key()
            .verify(SignatureAlgorithm::Sha256WithRsa, b"msg", &sig)
            .is_err());
    }

    #[test]
    fn wrong_length_signature_rejected() {
        let kp = keypair(8);
        let sig = kp.sign(SignatureAlgorithm::Sha256WithRsa, b"msg").unwrap();
        assert_eq!(
            kp.public_key()
                .verify(SignatureAlgorithm::Sha256WithRsa, b"msg", &sig[1..]),
            Err(CryptoError::BadSignature)
        );
    }

    #[test]
    fn keygen_deterministic() {
        let a = keypair(42);
        let b = keypair(42);
        assert_eq!(a.public_key(), b.public_key());
        assert_eq!(a.d, b.d);
    }

    #[test]
    fn keygen_distinct_seeds() {
        assert_ne!(keypair(1).public_key().modulus, keypair(2).public_key().modulus);
    }

    #[test]
    fn modulus_has_requested_bits() {
        for bits in [512usize, 768] {
            let kp = RsaKeyPair::generate(bits, &mut SplitMix64::new(9)).unwrap();
            assert_eq!(kp.public_key().modulus.bit_len(), bits);
        }
    }

    #[test]
    fn invalid_keygen_params() {
        assert!(RsaKeyPair::generate(64, &mut SplitMix64::new(0)).is_err());
        assert!(RsaKeyPair::generate(513, &mut SplitMix64::new(0)).is_err());
    }

    #[test]
    fn modulus_too_small_for_digest() {
        // A 512-bit modulus is fine; the encoding check itself:
        let em = emsa_pkcs1_v15(SignatureAlgorithm::Sha256WithRsa, b"x", 32);
        assert_eq!(em, Err(CryptoError::MessageTooLong));
    }

    #[test]
    fn emsa_layout() {
        let em = emsa_pkcs1_v15(SignatureAlgorithm::Sha256WithRsa, b"x", 64).unwrap();
        assert_eq!(em.len(), 64);
        assert_eq!(&em[..2], &[0x00, 0x01]);
        let zero_pos = em[2..].iter().position(|&b| b == 0).unwrap() + 2;
        assert!(em[2..zero_pos].iter().all(|&b| b == 0xff));
        assert!(zero_pos - 2 >= 8, "PS must be >= 8 bytes");
    }
}
