//! Device root-store auditing — the operational tool this reproduction
//! distils from the paper's methodology.
//!
//! Given an observed device store and the AOSP baseline it should match,
//! [`audit`] produces a structured [`AuditReport`]: additions with
//! provenance, removals, disabled anchors, expired-but-trusted anchors,
//! root-app red flags (§6), and an overall [`RiskLevel`]. This is exactly
//! the per-handset analysis behind Figures 1–2 packaged as a reusable API.

use crate::diff::{diff, StoreDiff};
use crate::store::RootStore;
use crate::trust::AnchorSource;
use tangled_asn1::Time;
use tangled_x509::CertIdentity;

/// Overall assessment of a device store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RiskLevel {
    /// Identical to the AOSP baseline.
    Stock,
    /// Vendor/operator additions only — the 39 % case of §5.
    Extended,
    /// User-visible modifications (manual additions or removals).
    UserModified,
    /// Anchors installed by root-privileged apps — the §6 case.
    Compromised,
}

impl RiskLevel {
    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            RiskLevel::Stock => "stock",
            RiskLevel::Extended => "extended (vendor/operator)",
            RiskLevel::UserModified => "user-modified",
            RiskLevel::Compromised => "compromised (root-app anchors)",
        }
    }
}

/// One flagged anchor in a report.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The anchor's identity.
    pub identity: CertIdentity,
    /// Provenance recorded in the store.
    pub source: AnchorSource,
    /// Why it was flagged.
    pub reason: &'static str,
}

/// The audit result for one device store.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Name of the audited store.
    pub store_name: String,
    /// Name of the baseline it was compared against.
    pub baseline_name: String,
    /// The raw diff against the baseline.
    pub diff: StoreDiff,
    /// Flagged anchors, most severe first.
    pub findings: Vec<Finding>,
    /// The rolled-up risk level.
    pub risk: RiskLevel,
}

impl AuditReport {
    /// Render a human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "audit of '{}' against '{}': {}\n",
            self.store_name,
            self.baseline_name,
            self.risk.label()
        ));
        out.push_str(&format!(
            "  +{} additions, -{} removals, {} findings\n",
            self.diff.added_count(),
            self.diff.removed_count(),
            self.findings.len()
        ));
        for f in &self.findings {
            out.push_str(&format!(
                "  [{}] {} — {}\n",
                f.source.label(),
                f.identity.subject,
                f.reason
            ));
        }
        out
    }
}

/// Audit an observed store against its expected baseline at time `at`.
pub fn audit(baseline: &RootStore, observed: &RootStore, at: Time) -> AuditReport {
    let d = diff(baseline, observed);
    let mut findings = Vec::new();

    // Additions, by provenance severity.
    for id in &d.added {
        if let Some(anchor) = observed.get(id) {
            let reason = match anchor.source {
                AnchorSource::RootApp => "installed by a root-privileged app",
                AnchorSource::User => "manually installed by the user",
                AnchorSource::Unknown => "addition of unknown origin",
                AnchorSource::Operator => "operator firmware addition",
                AnchorSource::Manufacturer => "manufacturer firmware addition",
                AnchorSource::Aosp => "addition labelled AOSP but absent from baseline",
            };
            findings.push(Finding {
                identity: id.clone(),
                source: anchor.source,
                reason,
            });
        }
    }
    // Removals (the paper saw only 5 such handsets).
    for id in &d.removed {
        findings.push(Finding {
            identity: id.clone(),
            source: AnchorSource::User,
            reason: "baseline anchor missing from device",
        });
    }
    // Disabled anchors.
    for anchor in observed.iter().filter(|a| !a.enabled) {
        findings.push(Finding {
            identity: anchor.identity(),
            source: anchor.source,
            reason: "anchor disabled in settings",
        });
    }
    // Expired anchors still trusted (the Firmaprofesional case, §2).
    for anchor in observed.iter_enabled().filter(|a| a.cert.is_expired_at(at)) {
        findings.push(Finding {
            identity: anchor.identity(),
            source: anchor.source,
            reason: "expired certificate still enabled as trust anchor",
        });
    }

    // Severity order: root-app first, then unknown/user, then the rest.
    findings.sort_by_key(|f| match f.source {
        AnchorSource::RootApp => 0,
        AnchorSource::Unknown => 1,
        AnchorSource::User => 2,
        AnchorSource::Operator => 3,
        AnchorSource::Manufacturer => 4,
        AnchorSource::Aosp => 5,
    });

    let has_root_app = findings
        .iter()
        .any(|f| f.source == AnchorSource::RootApp);
    let has_user_change = !d.removed.is_empty()
        || findings
            .iter()
            .any(|f| f.source == AnchorSource::User && f.reason != "anchor disabled in settings");
    let risk = if has_root_app {
        RiskLevel::Compromised
    } else if has_user_change {
        RiskLevel::UserModified
    } else if !d.added.is_empty() {
        RiskLevel::Extended
    } else {
        RiskLevel::Stock
    };

    AuditReport {
        store_name: observed.name().to_owned(),
        baseline_name: baseline.name().to_owned(),
        diff: d,
        findings,
        risk,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stores::{global_factory, ReferenceStore};

    fn at() -> Time {
        Time::date(2014, 2, 1).expect("valid")
    }

    fn baseline() -> RootStore {
        ReferenceStore::Aosp41.cached().cloned_as("AOSP 4.1 baseline")
    }

    #[test]
    fn stock_device_is_stock_despite_expired_root() {
        let b = baseline();
        let report = audit(&b, &b, at());
        assert_eq!(report.risk, RiskLevel::Stock);
        assert!(report.diff.is_identity());
        // The expired Firmaprofesional root is still flagged as a finding.
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0]
            .reason
            .contains("expired certificate"));
    }

    #[test]
    fn vendor_extension_is_extended() {
        let b = baseline();
        let mut obs = b.cloned_as("vendor firmware");
        let mut f = global_factory().lock().unwrap();
        obs.add_cert(f.root("Audit Vendor CA"), AnchorSource::Manufacturer);
        obs.add_cert(f.root("Audit Operator CA"), AnchorSource::Operator);
        drop(f);
        let report = audit(&b, &obs, at());
        assert_eq!(report.risk, RiskLevel::Extended);
        assert_eq!(report.diff.added_count(), 2);
        let text = report.render();
        assert!(text.contains("manufacturer"));
        assert!(text.contains("operator firmware addition"));
    }

    #[test]
    fn root_app_anchor_is_compromised_and_sorted_first() {
        let b = baseline();
        let mut obs = b.cloned_as("rooted device");
        let mut f = global_factory().lock().unwrap();
        obs.add_cert(f.root("Audit Vendor CA"), AnchorSource::Manufacturer);
        obs.add_cert(f.root("CRAZY HOUSE"), AnchorSource::RootApp);
        drop(f);
        let report = audit(&b, &obs, at());
        assert_eq!(report.risk, RiskLevel::Compromised);
        assert_eq!(report.findings[0].source, AnchorSource::RootApp);
        assert!(report.findings[0].identity.subject.contains("CRAZY HOUSE"));
    }

    #[test]
    fn removal_is_user_modified() {
        let b = baseline();
        let mut obs = b.cloned_as("user trimmed");
        let victim = obs.identities()[3].clone();
        obs.remove(&victim);
        let report = audit(&b, &obs, at());
        assert_eq!(report.risk, RiskLevel::UserModified);
        assert!(report
            .findings
            .iter()
            .any(|f| f.reason.contains("missing from device")));
    }

    #[test]
    fn disabled_anchor_reported_without_raising_risk() {
        let b = baseline();
        let mut obs = b.cloned_as("user disabled one");
        let victim = obs.identities()[0].clone();
        obs.disable(&victim);
        let report = audit(&b, &obs, at());
        // Disable is a finding but the store is otherwise stock.
        assert_eq!(report.risk, RiskLevel::Stock);
        assert!(report
            .findings
            .iter()
            .any(|f| f.reason.contains("disabled in settings")));
    }

    #[test]
    fn risk_levels_are_ordered() {
        assert!(RiskLevel::Stock < RiskLevel::Extended);
        assert!(RiskLevel::Extended < RiskLevel::UserModified);
        assert!(RiskLevel::UserModified < RiskLevel::Compromised);
    }
}
