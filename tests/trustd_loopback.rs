//! Loopback integration: a real trustd server on an ephemeral port, a
//! seeded population replayed through it, and the served verdicts
//! compared — byte for byte — against the same requests handled offline
//! with no server at all.

use std::sync::Arc;
use std::time::Duration;
use tangled_mass::trustd::replay::{
    canonical, offline_verdicts, population, queries, replay, ReplaySpec,
};
use tangled_mass::trustd::wire::{ChainVerdict, Request, Response};
use tangled_mass::trustd::{TrustClient, TrustServer, TrustService, DEFAULT_CACHE_CAPACITY};

/// One server + replay pass over a 100-session seeded population: served
/// verdicts must equal the offline verdicts exactly, the memo cache must
/// actually hit, and no protocol errors may occur.
#[test]
fn replay_matches_offline_study_exactly() {
    let spec = ReplaySpec::new(2014, 100);
    let expected = offline_verdicts(&spec);
    assert!(!expected.is_empty());

    let service = Arc::new(TrustService::new(DEFAULT_CACHE_CAPACITY));
    let server = TrustServer::bind("127.0.0.1:0", Arc::clone(&service), 4).expect("bind");
    let outcome = replay(server.local_addr(), &spec).expect("replay");
    server.shutdown();

    assert_eq!(outcome.wire_errors, 0, "no protocol errors");
    assert_eq!(outcome.requests, expected.len());
    assert_eq!(
        outcome.verdicts, expected,
        "served verdicts must be byte-identical to the offline study"
    );

    // The population repeats origin chains across sessions, so the memo
    // cache must have answered at least once.
    let hits = outcome.stats["cache"]["hits"].as_u64().expect("hits counter");
    assert!(hits > 0, "cache hit rate must be non-zero, stats: {}", outcome.stats);
    assert_eq!(
        outcome.stats["served"]["validate"].as_u64().expect("served"),
        outcome
            .verdicts
            .iter()
            .filter(|v| v.starts_with("validate/"))
            .count() as u64
    );
}

/// Same seed and query order → identical counter fingerprints, run to
/// run, with latency excluded (the only nondeterministic ingredient).
#[test]
fn stats_are_deterministic_for_a_fixed_seed() {
    let run = || {
        let spec = ReplaySpec::new(99, 48);
        let service = TrustService::new(DEFAULT_CACHE_CAPACITY);
        let pop = population(&spec);
        for req in queries(&pop, &spec) {
            service.handle(&req);
        }
        service.stats().counters_fingerprint()
    };
    let first = run();
    assert_eq!(first, run(), "counters must be a pure function of the replay");
    assert!(first.contains("served:validate="), "{first}");
}

/// Malformed frames mid-session are quarantined, answered, and do not
/// poison the verdicts that follow on the same connection.
#[test]
fn wire_faults_quarantine_without_killing_the_session() {
    let service = Arc::new(TrustService::new(16));
    let server = TrustServer::bind("127.0.0.1:0", Arc::clone(&service), 1).expect("bind");
    let mut client =
        TrustClient::connect_retry(server.local_addr(), Duration::from_secs(5)).expect("connect");

    let before = client.call(&Request::Stats).expect("stats");
    assert!(matches!(before, Response::Stats(_)));

    // A frame whose body is JSON but not a message, then one that is not
    // JSON at all: each gets a classified error reply.
    for (raw, label) in [
        (br#"{"type":"transmogrify"}"#.to_vec(), "bad-request"),
        (b"\xff\xfe\xfd".to_vec(), "bad-json"),
    ] {
        match client.call_raw(&raw).expect("fault reply") {
            Response::Error { stage, error } => {
                assert_eq!(stage, "wire");
                assert_eq!(error, label);
            }
            other => panic!("expected wire error, got {other:?}"),
        }
    }

    // The same connection still produces correct verdicts afterwards.
    let spec = ReplaySpec::new(5, 8);
    let pop = population(&spec);
    let reqs = queries(&pop, &spec);
    let offline = TrustService::new(16);
    for req in &reqs {
        let served = client.call(req).expect("post-fault call");
        assert_eq!(canonical(&served), canonical(&offline.handle(req)));
    }
    server.shutdown();

    assert_eq!(service.stats().quarantined_total(), 2);
    let doc = service.stats().to_json();
    assert_eq!(doc["health"]["quarantined"]["wire"]["bad-request"], 1u32);
    assert_eq!(doc["health"]["quarantined"]["wire"]["bad-json"], 1u32);
}

/// A profile swap over the wire: verdicts flip with the store, the epoch
/// advances, and cached entries from the old epoch never leak back.
#[test]
fn swap_over_the_wire_flips_verdicts() {
    let service = Arc::new(TrustService::new(64));
    let server = TrustServer::bind("127.0.0.1:0", Arc::clone(&service), 2).expect("bind");
    let mut client =
        TrustClient::connect_retry(server.local_addr(), Duration::from_secs(5)).expect("connect");

    let origin = tangled_mass::intercept::origin::OriginServers::for_table6();
    let target = tangled_mass::intercept::Target::parse("gmail.com:443").unwrap();
    let chain: Vec<Vec<u8>> = origin
        .chain(&target)
        .unwrap()
        .iter()
        .map(|c| c.to_der().to_vec())
        .collect();
    let validate = Request::Validate {
        profile: "AOSP 4.1".into(),
        chain,
    };

    match client.call(&validate).expect("validate") {
        Response::Validate { verdict, .. } => {
            assert!(matches!(verdict, ChainVerdict::Trusted { .. }), "{verdict:?}");
        }
        other => panic!("unexpected {other:?}"),
    }

    // Swap AOSP 4.1 for an empty store.
    let empty = tangled_mass::pki::store::RootStore::new("empty");
    match client
        .call(&Request::Swap {
            profile: "AOSP 4.1".into(),
            snapshot: empty.snapshot(),
        })
        .expect("swap")
    {
        Response::Swap { epoch, anchors, .. } => {
            assert_eq!(anchors, 0);
            assert!(epoch >= 7);
        }
        other => panic!("unexpected {other:?}"),
    }

    match client.call(&validate).expect("validate after swap") {
        Response::Validate { verdict, cached } => {
            assert!(!cached, "old-epoch cache entry must not answer");
            assert_eq!(
                verdict,
                ChainVerdict::Untrusted {
                    error: "no-path".into()
                }
            );
        }
        other => panic!("unexpected {other:?}"),
    }
    server.shutdown();
}
