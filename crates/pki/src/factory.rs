//! Deterministic CA certificate minting.
//!
//! Every synthetic CA in the workspace is derived from its *name*: the name
//! is hashed into a key-generation seed, so "Deutsche Telekom Root CA 1"
//! carries the same RSA key pair whether it is minted for the Mozilla
//! manifest, a Samsung firmware image, or the Notary's issuance simulator.
//! That is what makes cross-store certificate *equivalence* (same subject +
//! modulus, possibly different DER) arise naturally, exactly as the paper
//! observes for re-issued roots.

use crate::{DEFAULT_KEY_BITS, WORKSPACE_SEED};
use std::collections::HashMap;
use std::sync::Arc;
use tangled_asn1::Time;
use tangled_crypto::rsa::{RsaKeyPair, SignatureAlgorithm};
use tangled_crypto::sha256::sha256;
use tangled_crypto::{SplitMix64, Uint};
use tangled_x509::{Certificate, CertificateBuilder, DistinguishedName, X509Error};

/// Issuance parameters for a root certificate.
#[derive(Debug, Clone)]
pub struct CaSpec {
    /// Subject (and issuer) distinguished name.
    pub subject: DistinguishedName,
    /// Validity start.
    pub not_before: Time,
    /// Validity end.
    pub not_after: Time,
    /// Serial number.
    pub serial: u64,
    /// Signature algorithm.
    pub algorithm: SignatureAlgorithm,
}

impl CaSpec {
    /// The default spec for a named CA: `CN=<name>`, valid 2000–2030,
    /// serial 1, SHA-256. The long window means synthetic roots, like most
    /// real roots of the era, outlive the study period.
    pub fn named(name: &str) -> CaSpec {
        CaSpec {
            subject: DistinguishedName::common_name(name),
            not_before: Time::date(2000, 1, 1).expect("valid date"),
            not_after: Time::date(2030, 1, 1).expect("valid date"),
            serial: 1,
            algorithm: SignatureAlgorithm::Sha256WithRsa,
        }
    }
}

/// A deterministic factory for CA key pairs and certificates.
///
/// Key pairs are cached by key name; certificates by (key name, serial), so
/// re-issuing with a new serial/validity yields an *equivalent* but not
/// byte-equal certificate.
pub struct CaFactory {
    seed: u64,
    key_bits: usize,
    keys: HashMap<String, Arc<RsaKeyPair>>,
    certs: HashMap<(String, u64), Arc<Certificate>>,
}

impl std::fmt::Debug for CaFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CaFactory")
            .field("seed", &self.seed)
            .field("key_bits", &self.key_bits)
            .field("cached_keys", &self.keys.len())
            .field("cached_certs", &self.certs.len())
            .finish()
    }
}

impl CaFactory {
    /// A factory using the workspace seed and default key size.
    pub fn new() -> CaFactory {
        CaFactory::with_seed(WORKSPACE_SEED, DEFAULT_KEY_BITS)
    }

    /// A factory with an explicit seed and key size.
    pub fn with_seed(seed: u64, key_bits: usize) -> CaFactory {
        CaFactory {
            seed,
            key_bits,
            keys: HashMap::new(),
            certs: HashMap::new(),
        }
    }

    /// The deterministic key pair for a named key. The same (factory seed,
    /// key name) always yields the same pair.
    pub fn keypair(&mut self, key_name: &str) -> Arc<RsaKeyPair> {
        if let Some(kp) = self.keys.get(key_name) {
            return Arc::clone(kp);
        }
        let mut rng = SplitMix64::new(self.derive_seed(key_name));
        let kp = Arc::new(
            RsaKeyPair::generate(self.key_bits, &mut rng)
                .expect("key sizes are validated at construction"),
        );
        self.keys.insert(key_name.to_owned(), Arc::clone(&kp));
        kp
    }

    fn derive_seed(&self, key_name: &str) -> u64 {
        let h = sha256(key_name.as_bytes());
        let mut v = [0u8; 8];
        v.copy_from_slice(&h[..8]);
        u64::from_be_bytes(v) ^ self.seed
    }

    /// Mint (or fetch from cache) a self-signed root for `key_name` with
    /// the given spec.
    pub fn root_with_spec(
        &mut self,
        key_name: &str,
        spec: &CaSpec,
    ) -> Result<Arc<Certificate>, X509Error> {
        let cache_key = (key_name.to_owned(), spec.serial);
        if let Some(cert) = self.certs.get(&cache_key) {
            return Ok(Arc::clone(cert));
        }
        let kp = self.keypair(key_name);
        let cert = CertificateBuilder::new(
            spec.subject.clone(),
            spec.subject.clone(),
            spec.not_before,
            spec.not_after,
        )
        .serial(Uint::from_u64(spec.serial))
        .signature_algorithm(spec.algorithm)
        .ca(None)
        .key_ids(kp.public_key(), kp.public_key())
        .sign(kp.public_key(), &kp)?;
        let cert = Arc::new(cert);
        self.certs.insert(cache_key, Arc::clone(&cert));
        Ok(cert)
    }

    /// Mint the default root for a named CA (`CN=<name>`).
    pub fn root(&mut self, name: &str) -> Arc<Certificate> {
        self.root_with_spec(name, &CaSpec::named(name))
            .expect("default spec is always valid")
    }

    /// Mint a *re-issued* variant of a named root: same subject and key
    /// pair, shifted validity window and new serial. Byte-unequal but
    /// identity-equal to [`CaFactory::root`]'s output.
    pub fn reissued_root(&mut self, name: &str) -> Arc<Certificate> {
        let mut spec = CaSpec::named(name);
        spec.serial = 2;
        spec.not_before = Time::date(2010, 6, 1).expect("valid date");
        spec.not_after = Time::date(2035, 6, 1).expect("valid date");
        self.root_with_spec(name, &spec)
            .expect("reissue spec is always valid")
    }

    /// Issue an intermediate CA under a named root.
    pub fn intermediate(
        &mut self,
        parent_name: &str,
        name: &str,
        path_len: Option<u32>,
    ) -> Result<Arc<Certificate>, X509Error> {
        let cache_key = (format!("int:{parent_name}/{name}"), 1);
        if let Some(cert) = self.certs.get(&cache_key) {
            return Ok(Arc::clone(cert));
        }
        let parent = self.root(parent_name);
        let parent_kp = self.keypair(parent_name);
        let kp = self.keypair(&format!("int:{name}"));
        let cert = CertificateBuilder::new(
            parent.subject.clone(),
            DistinguishedName::common_name(name),
            parent.not_before,
            parent.not_after,
        )
        .serial(Uint::from_u64(1000 + cache_key.1))
        .ca(path_len)
        .key_ids(kp.public_key(), parent_kp.public_key())
        .sign(kp.public_key(), &parent_kp)?;
        let cert = Arc::new(cert);
        self.certs.insert(cache_key, Arc::clone(&cert));
        Ok(cert)
    }

    /// Issue a TLS server leaf for `domain`, signed by the named CA
    /// (root or `int:`-prefixed intermediate key name).
    pub fn leaf(
        &mut self,
        issuer_key_name: &str,
        issuer: &Certificate,
        domain: &str,
        serial: u64,
    ) -> Result<Arc<Certificate>, X509Error> {
        let issuer_kp = self.keypair(issuer_key_name);
        let kp = self.keypair(&format!("leaf:{domain}:{serial}"));
        let cert = CertificateBuilder::new(
            issuer.subject.clone(),
            DistinguishedName::common_name(domain),
            Time::date(2012, 1, 1).expect("valid date"),
            Time::date(2016, 1, 1).expect("valid date"),
        )
        .serial(Uint::from_u64(serial))
        .tls_server(vec![domain.to_owned()])
        .key_ids(kp.public_key(), issuer_kp.public_key())
        .sign(kp.public_key(), &issuer_kp)?;
        Ok(Arc::new(cert))
    }
}

impl Default for CaFactory {
    fn default() -> Self {
        CaFactory::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_deterministic_per_name() {
        let mut f1 = CaFactory::new();
        let mut f2 = CaFactory::new();
        assert_eq!(
            f1.keypair("GlobalSign Root CA").public_key(),
            f2.keypair("GlobalSign Root CA").public_key()
        );
        assert_ne!(
            f1.keypair("GlobalSign Root CA").public_key(),
            f1.keypair("GoDaddy Inc").public_key()
        );
    }

    #[test]
    fn different_factory_seeds_rekey() {
        let mut a = CaFactory::with_seed(1, 512);
        let mut b = CaFactory::with_seed(2, 512);
        assert_ne!(a.keypair("X").public_key(), b.keypair("X").public_key());
    }

    #[test]
    fn root_is_cached() {
        let mut f = CaFactory::new();
        let a = f.root("Cache Test CA");
        let b = f.root("Cache Test CA");
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn reissue_is_equivalent_not_equal() {
        let mut f = CaFactory::new();
        let orig = f.root("Reissue CA");
        let re = f.reissued_root("Reissue CA");
        assert_eq!(orig.identity(), re.identity());
        assert_ne!(orig.to_der(), re.to_der());
        assert_ne!(orig.serial, re.serial);
    }

    #[test]
    fn issued_hierarchy_verifies() {
        let mut f = CaFactory::new();
        let root = f.root("Hierarchy Root");
        let inter = f.intermediate("Hierarchy Root", "Hierarchy Sub CA", None).unwrap();
        let leaf = f
            .leaf("int:Hierarchy Sub CA", &inter, "www.example.net", 77)
            .unwrap();
        inter.verify_issued_by(&root).unwrap();
        leaf.verify_issued_by(&inter).unwrap();
        assert_eq!(leaf.dns_names(), &["www.example.net".to_string()]);
    }

    #[test]
    fn expired_spec_honoured() {
        let mut f = CaFactory::new();
        let mut spec = CaSpec::named("Firmaprofesional-like");
        spec.not_after = Time::date(2013, 10, 24).unwrap();
        let cert = f.root_with_spec("Firmaprofesional-like", &spec).unwrap();
        assert!(cert.is_expired_at(Time::date(2014, 1, 1).unwrap()));
    }
}
