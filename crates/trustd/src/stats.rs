//! Per-request-type service counters.
//!
//! One mutex-guarded ledger: requests served and errored per request
//! kind, memo-cache hits/misses, quarantined inputs in the PR-1
//! [`RunHealth`] vocabulary (stage → error label → count), and a
//! log₂-bucketed latency histogram per kind for p50/p99.
//!
//! Latency is wall-clock and therefore nondeterministic; everything else
//! is a pure function of the request sequence. The determinism tests
//! compare [`ServiceStats::counters_fingerprint`], which excludes the
//! histograms.

use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::Mutex;
use tangled_core::health::RunHealth;
use tangled_obs::registry as metrics;

/// Log₂-bucketed latency histogram (microseconds) — the generalised
/// [`tangled_obs::Log2Histogram`], kept under its historical name here.
/// Bucket `i` covers `[2^i, 2^(i+1))` µs, bucket 0 also absorbs sub-µs
/// samples; 40 buckets reach ~12 days, far beyond any request.
pub use tangled_obs::Log2Histogram as LatencyHistogram;

#[derive(Default)]
struct StatsInner {
    served: BTreeMap<String, u64>,
    errors: BTreeMap<String, u64>,
    cache_hits: u64,
    cache_misses: u64,
    health: RunHealth,
    latency: BTreeMap<String, LatencyHistogram>,
    /// Snapshot sections (or profiles) quarantined during a degraded
    /// warm start: `(unit, label)`. Rendered canonically sorted, so the
    /// stats document is byte-reproducible regardless of the order the
    /// warm-start path discovered the damage in.
    degraded: Vec<(String, String)>,
}

/// Thread-safe service counters.
#[derive(Default)]
pub struct ServiceStats {
    inner: Mutex<StatsInner>,
}

impl ServiceStats {
    /// Fresh, all-zero counters.
    pub fn new() -> ServiceStats {
        ServiceStats::default()
    }

    /// Record one request of `kind`, its latency, and whether it resolved
    /// to an error response. Mirrored into the process-wide metrics
    /// registry (`trustd.requests.<kind>`, `trustd.request_us`) so a
    /// `--metrics-dump` covers the serving path too.
    pub fn record_request(&self, kind: &str, micros: u64, errored: bool) {
        let mut inner = self.inner.lock().expect("stats poisoned");
        *inner.served.entry(kind.to_owned()).or_default() += 1;
        if errored {
            *inner.errors.entry(kind.to_owned()).or_default() += 1;
        }
        inner.latency.entry(kind.to_owned()).or_default().record(micros);
        drop(inner);
        metrics::add(&format!("trustd.requests.{kind}"), 1);
        metrics::observe("trustd.request_us", micros);
    }

    /// Record a memo-cache hit or miss.
    pub fn record_cache(&self, hit: bool) {
        let mut inner = self.inner.lock().expect("stats poisoned");
        if hit {
            inner.cache_hits += 1;
        } else {
            inner.cache_misses += 1;
        }
        drop(inner);
        metrics::add(
            if hit {
                "trustd.cache.hits"
            } else {
                "trustd.cache.misses"
            },
            1,
        );
    }

    /// Record one quarantined input under `(stage, label)` — the PR-1
    /// graceful-degradation vocabulary.
    pub fn record_quarantined(&self, stage: &str, label: &str) {
        self.inner
            .lock()
            .expect("stats poisoned")
            .health
            .record_quarantined(stage, label);
        metrics::add("trustd.quarantined", 1);
    }

    /// Record one snapshot unit quarantined during a degraded warm start
    /// (`unit` is a section or profile name). Counted in the health
    /// ledger under the `warm` stage and listed verbatim in the stats
    /// document, so operators can see *which* sections a degraded server
    /// is running without.
    pub fn record_degraded(&self, unit: &str, label: &str) {
        let mut inner = self.inner.lock().expect("stats poisoned");
        inner.health.record_quarantined("warm", label);
        inner.degraded.push((unit.to_owned(), label.to_owned()));
        drop(inner);
        metrics::add("trustd.warm.degraded", 1);
    }

    /// Is the service running degraded (any warm-start quarantine)?
    pub fn is_degraded(&self) -> bool {
        !self.inner.lock().expect("stats poisoned").degraded.is_empty()
    }

    /// Total requests served (all kinds).
    pub fn served_total(&self) -> u64 {
        self.inner
            .lock()
            .expect("stats poisoned")
            .served
            .values()
            .sum()
    }

    /// Memo-cache (hits, misses).
    pub fn cache_counts(&self) -> (u64, u64) {
        let inner = self.inner.lock().expect("stats poisoned");
        (inner.cache_hits, inner.cache_misses)
    }

    /// Total quarantined inputs.
    pub fn quarantined_total(&self) -> u32 {
        self.inner
            .lock()
            .expect("stats poisoned")
            .health
            .quarantined_total()
    }

    /// A deterministic digest of every counter *except* latency (which is
    /// wall-clock): same request sequence → same fingerprint.
    pub fn counters_fingerprint(&self) -> String {
        let inner = self.inner.lock().expect("stats poisoned");
        let mut out = String::new();
        for (kind, n) in &inner.served {
            out.push_str(&format!("served:{kind}={n};"));
        }
        for (kind, n) in &inner.errors {
            out.push_str(&format!("errors:{kind}={n};"));
        }
        out.push_str(&format!(
            "cache={}/{};",
            inner.cache_hits, inner.cache_misses
        ));
        for (stage, errors) in &inner.health.quarantined {
            for (label, n) in errors {
                out.push_str(&format!("quarantined:{stage}/{label}={n};"));
            }
        }
        out
    }

    /// The full stats document served on a `stats` request.
    pub fn to_json(&self) -> Value {
        let inner = self.inner.lock().expect("stats poisoned");
        // Canonical `(unit, label)` order: the warm-start path may
        // discover damage in any order (parallel verifier builds,
        // section-table order), but two servers degraded the same way
        // must serve byte-identical stats documents.
        let mut degraded = inner.degraded.clone();
        degraded.sort();
        degraded.dedup();
        let latency: BTreeMap<String, Value> = inner
            .latency
            .iter()
            .map(|(kind, h)| {
                (
                    kind.clone(),
                    json!({
                        "count": h.count(),
                        "p50_us": h.percentile(50),
                        "p99_us": h.percentile(99),
                    }),
                )
            })
            .collect();
        json!({
            "served": inner.served.clone(),
            "errors": inner.errors.clone(),
            "cache": {
                "hits": inner.cache_hits,
                "misses": inner.cache_misses,
            },
            "health": inner.health.to_json(),
            "latency_us": latency,
            "warm": {
                "degraded": !inner.degraded.is_empty(),
                "quarantined": degraded
                    .iter()
                    .map(|(unit, label)| json!({
                        "section": unit.as_str(),
                        "error": label.as_str(),
                    }))
                    .collect::<Vec<_>>(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_track_buckets() {
        let h = LatencyHistogram::default();
        assert_eq!(h.percentile(50), 0, "empty histogram");
        // 99 fast samples (~4 µs), one slow (~4096 µs).
        for _ in 0..99 {
            h.record(4);
        }
        h.record(4096);
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(50), 4);
        assert_eq!(h.percentile(99), 4);
        assert_eq!(h.percentile(100), 4096);
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = LatencyHistogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.percentile(100), 1u64 << 39);
    }

    #[test]
    fn counters_accumulate_and_fingerprint_excludes_latency() {
        let mk = |latency: u64| {
            let s = ServiceStats::new();
            s.record_request("validate", latency, false);
            s.record_request("validate", latency * 2, false);
            s.record_request("audit", latency, true);
            s.record_cache(true);
            s.record_cache(false);
            s.record_quarantined("wire", "bad-json");
            s
        };
        let a = mk(5);
        let b = mk(5000);
        assert_eq!(a.counters_fingerprint(), b.counters_fingerprint());
        assert_eq!(a.served_total(), 3);
        assert_eq!(a.cache_counts(), (1, 1));
        assert_eq!(a.quarantined_total(), 1);
        let fp = a.counters_fingerprint();
        assert!(fp.contains("served:validate=2;"), "{fp}");
        assert!(fp.contains("errors:audit=1;"), "{fp}");
        assert!(fp.contains("quarantined:wire/bad-json=1;"), "{fp}");
    }

    #[test]
    fn json_document_shape() {
        let s = ServiceStats::new();
        s.record_request("probe", 12, false);
        s.record_cache(true);
        s.record_quarantined("cacerts", "malformed-der");
        let v = s.to_json();
        assert_eq!(v["served"]["probe"], 1u64);
        assert_eq!(v["cache"]["hits"], 1u64);
        assert_eq!(v["health"]["quarantined"]["cacerts"]["malformed-der"], 1u32);
        assert_eq!(v["latency_us"]["probe"]["count"], 1u64);
        assert!(v["latency_us"]["probe"]["p99_us"].as_u64().is_some());
        assert_eq!(v["warm"]["degraded"], false);
    }

    #[test]
    fn degraded_warm_start_is_surfaced() {
        let s = ServiceStats::new();
        assert!(!s.is_degraded());
        s.record_degraded("ecosystem", "checksum-mismatch");
        assert!(s.is_degraded());
        let v = s.to_json();
        assert_eq!(v["warm"]["degraded"], true);
        assert_eq!(v["warm"]["quarantined"][0]["section"], "ecosystem");
        assert_eq!(v["warm"]["quarantined"][0]["error"], "checksum-mismatch");
        assert_eq!(v["health"]["quarantined"]["warm"]["checksum-mismatch"], 1u32);
        let fp = s.counters_fingerprint();
        assert!(fp.contains("quarantined:warm/checksum-mismatch=1;"), "{fp}");
    }

    #[test]
    fn degraded_list_renders_canonically_sorted() {
        // Two services that quarantined the same units in different
        // orders must serve byte-identical stats documents.
        let a = ServiceStats::new();
        a.record_degraded("population", "checksum-mismatch");
        a.record_degraded("eco-stores", "missing-section");
        a.record_degraded("AOSP 4.2", "missing-profile");
        let b = ServiceStats::new();
        b.record_degraded("AOSP 4.2", "missing-profile");
        b.record_degraded("population", "checksum-mismatch");
        b.record_degraded("eco-stores", "missing-section");
        let (ja, jb) = (a.to_json(), b.to_json());
        assert_eq!(
            serde_json::to_string(&ja["warm"]).unwrap(),
            serde_json::to_string(&jb["warm"]).unwrap()
        );
        assert_eq!(ja["warm"]["quarantined"][0]["section"], "AOSP 4.2");
        assert_eq!(ja["warm"]["quarantined"][1]["section"], "eco-stores");
        assert_eq!(ja["warm"]["quarantined"][2]["section"], "population");
    }
}
