//! The interposing re-signing proxy: mint strategies over the Table 6
//! target list.
//!
//! [`ScenarioProxy`] generalises [`tangled_intercept::proxy::MitmProxy`]:
//! the same per-(domain, port) policy and pin-whitelist, but chain
//! minting is a *pure* function of `(strategy, target index)` — serials
//! are derived, not counted — so generation can shard over the ambient
//! [`tangled_exec::ExecPool`] and stay byte-identical at any width.

use std::sync::Arc;
use tangled_asn1::Time;
use tangled_crypto::Uint;
use tangled_intercept::origin::OriginServers;
use tangled_intercept::policy::{ProxyAction, ProxyPolicy};
use tangled_intercept::proxy::{MintError, ProxyHierarchy};
use tangled_intercept::Target;
use tangled_pki::stores::{global_factory, ReferenceStore, FIRMAPROFESIONAL};
use tangled_x509::{Certificate, CertIdentity, CertificateBuilder, DistinguishedName};

/// How the proxy forges the chain for an intercepted target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MintStrategy {
    /// Leaf under the proxy's own (uninstalled) self-signed hierarchy —
    /// the paper's Reality Mine setup.
    SelfSignedRoot,
    /// Same forged chain, but the proxy root *is* installed on the
    /// device (the §6 rooted-handset threat): even correct validation
    /// anchors it.
    InstalledRoot,
    /// A perfectly valid public-PKI chain — for the wrong host.
    WrongHostLeaf,
    /// A leaf under the legitimate issuer whose window closed before the
    /// study instant.
    ExpiredLeaf,
    /// A valid-window leaf signed by the expired Firmaprofesional root
    /// that every AOSP store still ships (§2): only anchor-expiry
    /// checking blocks it.
    ExpiredRoot,
}

impl MintStrategy {
    /// Every strategy, in canonical report order.
    pub const ALL: [MintStrategy; 5] = [
        MintStrategy::SelfSignedRoot,
        MintStrategy::InstalledRoot,
        MintStrategy::WrongHostLeaf,
        MintStrategy::ExpiredLeaf,
        MintStrategy::ExpiredRoot,
    ];

    /// Stable report/CLI label.
    pub fn label(&self) -> &'static str {
        match self {
            MintStrategy::SelfSignedRoot => "self-signed-root",
            MintStrategy::InstalledRoot => "installed-root",
            MintStrategy::WrongHostLeaf => "wrong-host-leaf",
            MintStrategy::ExpiredLeaf => "expired-leaf",
            MintStrategy::ExpiredRoot => "expired-root",
        }
    }

    /// Parse a label back into a strategy.
    pub fn parse(label: &str) -> Option<MintStrategy> {
        MintStrategy::ALL.into_iter().find(|s| s.label() == label)
    }
}

impl std::fmt::Display for MintStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

fn date(y: i32, m: u8, d: u8) -> Result<Time, MintError> {
    Time::date(y, m, d).ok_or(MintError::new("mint", "bad-date"))
}

/// The scenario engine's re-signing middlebox.
pub struct ScenarioProxy {
    policy: ProxyPolicy,
    hierarchy: ProxyHierarchy,
    origin: OriginServers,
    targets: Vec<Target>,
    pinned: Vec<Target>,
    expected_issuer: CertIdentity,
}

impl ScenarioProxy {
    /// Stand up the proxy over the Table 6 endpoint list, deterministic
    /// in `seed`. The pin set is the proxy's whitelist plus
    /// `mail.google.com:443` — an endpoint the operator intercepts even
    /// though the client app pins it, which is what makes the pin-bypass
    /// defect observable.
    pub fn new(seed: u64) -> Result<ScenarioProxy, MintError> {
        let policy = ProxyPolicy::reality_mine();
        let hierarchy = ProxyHierarchy::reality_mine(seed)?;
        let origin = OriginServers::for_table6();
        let mut targets: Vec<Target> = origin.targets().cloned().collect();
        targets.sort_by_key(|t| t.to_string());
        let mut pinned: Vec<Target> = tangled_intercept::WHITELISTED_DOMAINS
            .iter()
            .filter_map(|s| Target::parse(s))
            .collect();
        if let Some(t) = Target::parse("mail.google.com:443") {
            pinned.push(t);
        }
        let expected_issuer = origin.issuer_identity();
        Ok(ScenarioProxy {
            policy,
            hierarchy,
            origin,
            targets,
            pinned,
            expected_issuer,
        })
    }

    /// The Table 6 targets, sorted by display form.
    pub fn targets(&self) -> &[Target] {
        &self.targets
    }

    /// Does the client app pin this endpoint's issuer?
    pub fn is_pinned(&self, target: &Target) -> bool {
        self.pinned.contains(target)
    }

    /// Does the proxy's per-(domain, port) policy interpose here?
    pub fn intercepts(&self, target: &Target) -> bool {
        self.policy.action(target) == ProxyAction::Intercept
    }

    /// The root the `installed-root` strategy plants on the device.
    pub fn installed_root(&self) -> &Arc<Certificate> {
        self.hierarchy.root()
    }

    /// The legitimate public-PKI issuer identity (the pin).
    pub fn expected_issuer(&self) -> &CertIdentity {
        &self.expected_issuer
    }

    /// The legitimate origin servers.
    pub fn origin(&self) -> &OriginServers {
        &self.origin
    }

    /// The chain presented on a session: the origin chain when the
    /// policy passes the target through, the strategy's forgery when it
    /// interposes. Pure in `(strategy, target index)`.
    pub fn present(
        &self,
        strategy: MintStrategy,
        target_idx: usize,
    ) -> Result<Vec<Arc<Certificate>>, MintError> {
        let target = self
            .targets
            .get(target_idx)
            .ok_or(MintError::new("mint", "bad-target"))?;
        if !self.intercepts(target) {
            return Ok(self
                .origin
                .chain(target)
                .map(|c| c.to_vec())
                .unwrap_or_default());
        }
        self.mint(strategy, target_idx)
    }

    /// Mint the forged chain for an intercepted target. Serials are a
    /// pure function of `(strategy, target index)` so parallel minting
    /// is order-independent.
    fn mint(
        &self,
        strategy: MintStrategy,
        target_idx: usize,
    ) -> Result<Vec<Arc<Certificate>>, MintError> {
        let target = &self.targets[target_idx];
        let serial = 100_000
            + 1_000
                * (MintStrategy::ALL
                    .iter()
                    .position(|s| *s == strategy)
                    .unwrap_or(0) as u64)
            + target_idx as u64;
        match strategy {
            MintStrategy::SelfSignedRoot | MintStrategy::InstalledRoot => {
                let leaf = self.hierarchy.mint_leaf(
                    &target.domain,
                    vec![target.domain.clone()],
                    serial,
                    date(2013, 6, 1)?,
                    date(2016, 6, 1)?,
                )?;
                Ok(vec![leaf, Arc::clone(self.hierarchy.issuing())])
            }
            MintStrategy::WrongHostLeaf => {
                // Present another target's perfectly valid origin chain:
                // trusted path, trusted anchor, wrong host name. Skip
                // past same-domain neighbours (the list holds the same
                // host on several ports) so the name really mismatches.
                let domain = &self.targets[target_idx].domain;
                let other = (1..self.targets.len())
                    .map(|off| &self.targets[(target_idx + off) % self.targets.len()])
                    .find(|t| &t.domain != domain)
                    .ok_or(MintError::new("mint", "bad-target"))?;
                Ok(self
                    .origin
                    .chain(other)
                    .map(|c| c.to_vec())
                    .unwrap_or_default())
            }
            MintStrategy::ExpiredLeaf => {
                // A leaf under the legitimate issuer whose validity
                // window closed months before the study instant.
                self.issuer_signed_leaf(
                    &target.domain,
                    serial,
                    date(2012, 1, 1)?,
                    date(2013, 6, 1)?,
                )
            }
            MintStrategy::ExpiredRoot => {
                // A currently-valid leaf anchored at the expired
                // Firmaprofesional root that AOSP still ships.
                let store = ReferenceStore::Aosp44.cached();
                let firm = store
                    .enabled_certificates()
                    .into_iter()
                    .find(|c| c.subject.cn() == Some(FIRMAPROFESIONAL))
                    .ok_or(MintError::new("mint", "missing-anchor"))?;
                let firm_kp = {
                    let mut f = global_factory().lock().expect("factory poisoned");
                    f.keypair(FIRMAPROFESIONAL)
                };
                let leaf_kp = {
                    let mut f = global_factory().lock().expect("factory poisoned");
                    f.keypair("scenario strategy leaf")
                };
                CertificateBuilder::new(
                    firm.subject.clone(),
                    DistinguishedName::common_name(&target.domain),
                    date(2012, 1, 1)?,
                    date(2016, 1, 1)?,
                )
                .serial(Uint::from_u64(serial))
                .tls_server(vec![target.domain.clone()])
                .key_ids(leaf_kp.public_key(), firm_kp.public_key())
                .sign(leaf_kp.public_key(), &firm_kp)
                .map(|leaf| vec![Arc::new(leaf)])
                .map_err(|_| MintError::new("mint", "issuance"))
            }
        }
    }

    fn issuer_signed_leaf(
        &self,
        domain: &str,
        serial: u64,
        not_before: Time,
        not_after: Time,
    ) -> Result<Vec<Arc<Certificate>>, MintError> {
        let issuer_name = self.origin.issuer_name().to_owned();
        let (issuer, issuer_kp, leaf_kp) = {
            let mut f = global_factory().lock().expect("factory poisoned");
            (
                f.root(&issuer_name),
                f.keypair(&issuer_name),
                f.keypair("scenario strategy leaf"),
            )
        };
        CertificateBuilder::new(
            issuer.subject.clone(),
            DistinguishedName::common_name(domain),
            not_before,
            not_after,
        )
        .serial(Uint::from_u64(serial))
        .tls_server(vec![domain.to_owned()])
        .key_ids(leaf_kp.public_key(), issuer_kp.public_key())
        .sign(leaf_kp.public_key(), &issuer_kp)
        .map(|leaf| vec![Arc::new(leaf)])
        .map_err(|_| MintError::new("mint", "issuance"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_labels_round_trip() {
        for s in MintStrategy::ALL {
            assert_eq!(MintStrategy::parse(s.label()), Some(s));
        }
        assert_eq!(MintStrategy::parse("nope"), None);
    }

    #[test]
    fn proxy_serves_21_targets_with_12_intercepted() {
        let proxy = ScenarioProxy::new(11).unwrap();
        assert_eq!(proxy.targets().len(), 21);
        let intercepted = proxy
            .targets()
            .iter()
            .filter(|t| proxy.intercepts(t))
            .count();
        assert_eq!(intercepted, 12);
        // 9 whitelisted pins plus the intercepted-but-pinned endpoint.
        let pinned = proxy
            .targets()
            .iter()
            .filter(|t| proxy.is_pinned(t))
            .count();
        assert_eq!(pinned, 10);
    }

    #[test]
    fn minting_is_pure_in_strategy_and_index() {
        let proxy = ScenarioProxy::new(11).unwrap();
        let idx = proxy
            .targets()
            .iter()
            .position(|t| proxy.intercepts(t))
            .unwrap();
        let a = proxy.present(MintStrategy::SelfSignedRoot, idx).unwrap();
        let b = proxy.present(MintStrategy::SelfSignedRoot, idx).unwrap();
        assert_eq!(a[0].to_der(), b[0].to_der());
        // Different strategies mint different leaves for the same target.
        let c = proxy.present(MintStrategy::ExpiredLeaf, idx).unwrap();
        assert_ne!(a[0].to_der(), c[0].to_der());
    }

    #[test]
    fn expired_root_leaf_is_valid_but_anchored_at_the_dead_root() {
        let proxy = ScenarioProxy::new(11).unwrap();
        let idx = proxy
            .targets()
            .iter()
            .position(|t| proxy.intercepts(t))
            .unwrap();
        let chain = proxy.present(MintStrategy::ExpiredRoot, idx).unwrap();
        assert_eq!(chain.len(), 1);
        let study = tangled_intercept::study_time().to_unix();
        assert!(chain[0].not_before.to_unix() <= study);
        assert!(study <= chain[0].not_after.to_unix());
        assert_eq!(
            chain[0].issuer.cn(),
            Some(FIRMAPROFESIONAL),
            "anchored at the §2 expired root"
        );
    }
}
