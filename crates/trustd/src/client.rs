//! A small blocking client for the trustd wire protocol.
//!
//! The client mirrors the server's deadline discipline: sockets carry a
//! short read timeout ([`READ_TICK`]) and the reply wait is bounded by a
//! *consecutive idle tick* budget ([`TrustClient::set_response_ticks`]) —
//! the client-side twin of the server's `STALL_BUDGET`. A server that
//! stalls mid-reply therefore surfaces as [`ClientError::TimedOut`]
//! instead of hanging the caller forever. Any received byte resets the
//! budget, so a slow-but-live server is never misclassified.
//!
//! The client is generic over its stream so the chaos harness can run it
//! over simulated and fault-injecting transports; the `TcpStream` impl
//! adds the connect helpers.

use crate::wire::{self, FrameError, Request, Response, WireError};
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Socket read-timeout tick; reply waits are counted in these.
const READ_TICK: Duration = Duration::from_millis(50);

/// Write timeout for TCP sockets: a peer that stops draining cannot
/// block the caller in `write` indefinitely.
const WRITE_BUDGET: Duration = Duration::from_secs(5);

/// Default reply budget in consecutive idle ticks (~10 s at
/// [`READ_TICK`]) — matches the server's stall budget.
const DEFAULT_RESPONSE_TICKS: u32 = 200;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server broke the wire protocol.
    Protocol(WireError),
    /// The server closed the connection instead of replying.
    Closed,
    /// The server went silent past the reply deadline.
    TimedOut,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol error: {e}"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::TimedOut => write!(f, "server exceeded the reply deadline"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Wire(e) => ClientError::Protocol(e),
        }
    }
}

/// One connection to a trustd server.
pub struct TrustClient<S = TcpStream> {
    stream: S,
    response_ticks: u32,
}

impl TrustClient<TcpStream> {
    /// Connect once, with the full deadline discipline: no-delay, a
    /// [`READ_TICK`] read timeout and a bounded write timeout.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TrustClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(READ_TICK))?;
        stream.set_write_timeout(Some(WRITE_BUDGET))?;
        Ok(TrustClient {
            stream,
            response_ticks: DEFAULT_RESPONSE_TICKS,
        })
    }

    /// Connect with retries until `deadline` elapses — for racing a
    /// server that is still binding (CI loadgen smoke).
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Clone,
        deadline: Duration,
    ) -> io::Result<TrustClient> {
        let started = Instant::now();
        loop {
            match TrustClient::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) if started.elapsed() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }
}

impl<S: Read + Write> TrustClient<S> {
    /// Wrap an already-connected stream (simulated transports, chaos
    /// wrappers). The stream should report idle waits as
    /// `WouldBlock`/`TimedOut` for the reply deadline to be meaningful.
    pub fn from_stream(stream: S) -> TrustClient<S> {
        TrustClient {
            stream,
            response_ticks: DEFAULT_RESPONSE_TICKS,
        }
    }

    /// Override the reply budget (consecutive idle ticks with no reply
    /// byte). Tests use small values to fail fast.
    pub fn set_response_ticks(&mut self, ticks: u32) {
        self.response_ticks = ticks.max(1);
    }

    /// Send a request, wait for the reply.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.call_raw(&req.encode())
    }

    /// Send raw frame bytes (protocol-fault tests), wait for the reply.
    ///
    /// The wait is bounded: `read_frame` internally tolerates idle ticks
    /// *mid-frame* (stall budget), while ticks at the reply boundary —
    /// nothing received yet — surface here and are counted against
    /// [`TrustClient::set_response_ticks`].
    pub fn call_raw(&mut self, body: &[u8]) -> Result<Response, ClientError> {
        wire::write_frame(&mut self.stream, body).map_err(ClientError::Io)?;
        let mut idle = 0u32;
        loop {
            match wire::read_frame(&mut self.stream) {
                Ok(Some(frame)) => {
                    return Response::decode(&frame).map_err(ClientError::Protocol);
                }
                Ok(None) => return Err(ClientError::Closed),
                Err(FrameError::Io(e)) if wire::is_timeout(&e) => {
                    idle += 1;
                    if idle > self.response_ticks {
                        return Err(ClientError::TimedOut);
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Accepts the request, then never replies: every read is an idle
    /// tick.
    struct SilentServer;

    impl Read for SilentServer {
        fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"))
        }
    }

    impl Write for SilentServer {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stalled_server_times_out_instead_of_hanging() {
        let mut client = TrustClient::from_stream(SilentServer);
        client.set_response_ticks(3);
        match client.call(&Request::Stats) {
            Err(ClientError::TimedOut) => {}
            other => panic!("expected TimedOut, got {other:?}"),
        }
    }

    /// Replies after a fixed number of idle ticks.
    struct SlowServer {
        reply: Vec<u8>,
        pos: usize,
        ticks_before_reply: u32,
    }

    impl Read for SlowServer {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.ticks_before_reply > 0 {
                self.ticks_before_reply -= 1;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            if self.pos >= self.reply.len() {
                return Ok(0);
            }
            let n = buf.len().min(self.reply.len() - self.pos);
            buf[..n].copy_from_slice(&self.reply[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl Write for SlowServer {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn slow_reply_within_budget_is_delivered() {
        let mut reply = Vec::new();
        wire::write_frame(&mut reply, &Response::Busy.encode()).unwrap();
        let mut client = TrustClient::from_stream(SlowServer {
            reply,
            pos: 0,
            ticks_before_reply: 5,
        });
        client.set_response_ticks(10);
        assert_eq!(client.call(&Request::Stats).unwrap(), Response::Busy);
    }
}
