//! Atomic log₂-bucketed histogram.
//!
//! The generalised home of what used to be `trustd::stats::
//! LatencyHistogram`: same bucket math, same percentile contract, but
//! recording through `&self` with relaxed atomics so the exec pool and
//! the server workers can observe into a shared histogram without a
//! lock.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets; bucket 39 reaches ~12 days in microseconds,
/// far beyond any sample the pipeline produces.
const BUCKETS: usize = 40;

/// Log₂-bucketed histogram over `u64` samples (typically microseconds).
///
/// Bucket `i` covers `[2^i, 2^(i+1))`; bucket 0 also absorbs zero.
/// Recording is a single relaxed atomic increment, so histograms can be
/// shared freely across threads. Totals are exact; only the per-bucket
/// resolution is approximate (one power of two).
pub struct Log2Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
}

impl Default for Log2Histogram {
    fn default() -> Log2Histogram {
        Log2Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
        }
    }
}

impl Clone for Log2Histogram {
    fn clone(&self) -> Log2Histogram {
        let out = Log2Histogram::default();
        for (dst, src) in out.buckets.iter().zip(&self.buckets) {
            dst.store(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        out.count
            .store(self.count.load(Ordering::Relaxed), Ordering::Relaxed);
        out
    }
}

impl std::fmt::Debug for Log2Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log2Histogram")
            .field("count", &self.count())
            .field("p50", &self.percentile(50))
            .field("p99", &self.percentile(99))
            .finish()
    }
}

impl Log2Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Log2Histogram {
        Log2Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        let bucket = (64 - value.leading_zeros()).saturating_sub(1) as usize;
        self.buckets[bucket.min(BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The lower bound of the bucket holding the `p`-th percentile
    /// sample, `p` in `0..=100`. Zero when empty.
    pub fn percentile(&self, p: u8) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        // Rank of the percentile sample, 1-based, ceil(p/100 * count).
        let rank = ((p as u64) * count).div_ceil(100).max(1);
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_track_buckets() {
        let h = Log2Histogram::new();
        assert_eq!(h.percentile(50), 0, "empty histogram");
        // 99 fast samples (~4 µs), one slow (~4096 µs).
        for _ in 0..99 {
            h.record(4);
        }
        h.record(4096);
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(50), 4);
        assert_eq!(h.percentile(99), 4);
        assert_eq!(h.percentile(100), 4096);
    }

    #[test]
    fn extremes_stay_in_range() {
        let h = Log2Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.percentile(50), 0);
        assert_eq!(h.percentile(100), 1u64 << 39);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Log2Histogram::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1_000u64 {
                        h.record(i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4_000);
    }

    #[test]
    fn clone_snapshots_counts() {
        let h = Log2Histogram::new();
        h.record(100);
        let snap = h.clone();
        h.record(100);
        assert_eq!(snap.count(), 1);
        assert_eq!(h.count(), 2);
    }
}
