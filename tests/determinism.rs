//! Cross-thread-count determinism: the whole point of the execution layer.
//!
//! The parallel pipeline must be *bit-identical* to the sequential one at
//! any pool width: work is sharded by unit index (never by thread),
//! per-unit sub-RNGs derive from `split_seed(seed, index)`, and results
//! merge in index order. This test builds the full-scale study at 1, 2 and
//! 8 threads and asserts the schema-v2 JSON export, every rendered paper
//! table, and all figure summaries are byte-identical.
//!
//! The thread override is process-global, so this binary holds exactly one
//! test.

use tangled_mass::analysis::{export, figures, tables, Study};
use tangled_mass::exec::set_thread_override;

fn render_everything(study: &Study) -> (String, String) {
    let doc = export::export_study(study);
    let json = serde_json::to_string(&doc).expect("export serialises");
    let text = [
        tables::dataset_summary(&study.population).render(),
        tables::render_all(study),
        figures::figure1_render(&study.population, 20),
        figures::figure2_render(&study.population, 20),
        figures::figure3_render(&study.validation),
    ]
    .join("\n");
    (json, text)
}

#[test]
fn full_study_is_bit_identical_across_thread_counts() {
    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        set_thread_override(Some(threads));
        let study = Study::full();
        runs.push((threads, render_everything(&study)));
    }
    set_thread_override(None);

    let (_, (json_base, text_base)) = &runs[0];
    for (threads, (json, text)) in &runs[1..] {
        assert_eq!(
            json, json_base,
            "schema-v2 export differs between 1 and {threads} threads"
        );
        assert_eq!(
            text, text_base,
            "rendered tables/figures differ between 1 and {threads} threads"
        );
    }
}
