//! Design-choice ablations (DESIGN.md §5).
//!
//! 1. Certificate identity: byte-hash vs subject+modulus vs modulus-only —
//!    dedup counts and throughput.
//! 2. Store diff: hash join vs sorted merge across store sizes.
//! 3. Chain building: subject-indexed vs naive quadratic scan.
//! 4. Validation counting: issuer-memoised vs full re-verification.
//! 5. Modular exponentiation: Montgomery fast path vs generic
//!    square-and-multiply (even modulus forces the generic path).
//!
//! ```text
//! cargo bench --bench ablations
//! ```

use criterion::{black_box, Criterion};
use std::sync::Arc;
use tangled_bench::criterion;
use tangled_crypto::modular::mod_pow;
use tangled_crypto::{SplitMix64, Uint};
use tangled_notary::ecosystem::EcosystemSpec;
use tangled_notary::{Ecosystem, ValidationIndex};
use tangled_pki::diff::{diff, diff_sorted_merge, distinct_count, IdentityMode};
use tangled_pki::factory::CaFactory;
use tangled_pki::store::RootStore;
use tangled_pki::stores::ReferenceStore;
use tangled_pki::trust::AnchorSource;
use tangled_x509::{ChainOptions, ChainVerifier};

fn main() {
    let mut c: Criterion = criterion();

    ablate_identity(&mut c);
    ablate_diff(&mut c);
    ablate_chain(&mut c);
    ablate_validation(&mut c);
    ablate_modpow(&mut c);

    c.final_summary();
}

/// Ablation 1 — identity granularity. The paper dedups 2.3 M collected
/// root certs to 314 by (subject, modulus); byte-hash identity would
/// overcount re-issued roots, modulus-only would under-count.
fn ablate_identity(c: &mut Criterion) {
    let mut factory = CaFactory::new();
    // A mixed pile: originals, re-issues, distinct CAs.
    let mut certs = Vec::new();
    for i in 0..60 {
        let name = format!("Identity Ablation CA {i}");
        certs.push(factory.root(&name).as_ref().clone());
        if i % 3 == 0 {
            certs.push(factory.reissued_root(&name).as_ref().clone());
        }
    }
    println!("ablation: identity granularity over {} certificates", certs.len());
    for mode in [
        IdentityMode::ByteHash,
        IdentityMode::SubjectAndModulus,
        IdentityMode::ModulusOnly,
    ] {
        println!("  {:?}: {} distinct", mode, distinct_count(certs.iter(), mode));
    }
    for (label, mode) in [
        ("byte_hash", IdentityMode::ByteHash),
        ("subject_modulus", IdentityMode::SubjectAndModulus),
        ("modulus_only", IdentityMode::ModulusOnly),
    ] {
        c.bench_function(&format!("ablation_identity/{label}"), |b| {
            b.iter(|| black_box(distinct_count(certs.iter(), mode)))
        });
    }
}

/// Ablation 2 — diff algorithm at reference-store scale and at 10× scale.
fn ablate_diff(c: &mut Criterion) {
    let aosp = ReferenceStore::Aosp44.cached();
    let mozilla = ReferenceStore::Mozilla.cached();

    // A pair of larger synthetic stores (~1,000 anchors, 70% overlap).
    let mut factory = CaFactory::new();
    let mut big_a = RootStore::new("big-a");
    let mut big_b = RootStore::new("big-b");
    for i in 0..1_000 {
        let cert = factory.root(&format!("Diff Scale CA {i}"));
        if i < 850 {
            big_a.add_cert(Arc::clone(&cert), AnchorSource::Aosp);
        }
        if i >= 150 {
            big_b.add_cert(cert, AnchorSource::Aosp);
        }
    }
    let d = diff(&big_a, &big_b);
    println!(
        "ablation: diff on 850/850 stores → +{} -{} ={}",
        d.added_count(),
        d.removed_count(),
        d.common.len()
    );

    c.bench_function("ablation_diff/hash_join_reference", |b| {
        b.iter(|| black_box(diff(&mozilla, &aosp).added_count()))
    });
    c.bench_function("ablation_diff/sorted_merge_reference", |b| {
        b.iter(|| black_box(diff_sorted_merge(&mozilla, &aosp).added_count()))
    });
    c.bench_function("ablation_diff/hash_join_1000", |b| {
        b.iter(|| black_box(diff(&big_a, &big_b).added_count()))
    });
    c.bench_function("ablation_diff/sorted_merge_1000", |b| {
        b.iter(|| black_box(diff_sorted_merge(&big_a, &big_b).added_count()))
    });
}

/// Ablation 3 — chain building with and without the subject index.
fn ablate_chain(c: &mut Criterion) {
    let eco = Ecosystem::generate(&EcosystemSpec::scaled(0.05));
    let mut verifier = ChainVerifier::new();
    for root in &eco.universe_roots {
        verifier.add_anchor(Arc::clone(root));
    }
    for inter in &eco.intermediates {
        verifier.add_intermediate(Arc::clone(inter));
    }
    let opts = ChainOptions::at(tangled_notary::ecosystem::study_time());
    let leaves: Vec<_> = eco
        .certs
        .iter()
        .filter(|cert| cert.leaf().is_valid_at(opts.at))
        .take(50)
        .map(|cert| Arc::clone(cert.leaf()))
        .collect();
    println!(
        "ablation: chain building over {} leaves against {} anchors",
        leaves.len(),
        verifier.anchor_count()
    );

    c.bench_function("ablation_chain/indexed", |b| {
        b.iter(|| {
            let ok = leaves
                .iter()
                .filter(|l| verifier.verify(l, opts).is_ok())
                .count();
            black_box(ok)
        })
    });
    c.bench_function("ablation_chain/naive_scan", |b| {
        b.iter(|| {
            let ok = leaves
                .iter()
                .filter(|l| verifier.verify_naive(l, opts).is_ok())
                .count();
            black_box(ok)
        })
    });
}

/// Ablation 4 — validation-index construction with and without the
/// issuer-memoisation shortcut.
fn ablate_validation(c: &mut Criterion) {
    let eco = Ecosystem::generate(&EcosystemSpec::scaled(0.05));
    println!(
        "ablation: validation over {} certificates ({} non-expired)",
        eco.len(),
        eco.non_expired()
    );
    c.bench_function("ablation_validation/memoised", |b| {
        b.iter(|| black_box(ValidationIndex::build(&eco).validated_total()))
    });
    c.bench_function("ablation_validation/full_reverify", |b| {
        b.iter(|| black_box(ValidationIndex::build_unmemoised(&eco).validated_total()))
    });
}

/// Ablation 5 — Montgomery vs generic modular exponentiation. RSA moduli
/// are odd (Montgomery path); an even modulus of the same size forces the
/// generic divrem-per-step path.
fn ablate_modpow(c: &mut Criterion) {
    let mut rng = SplitMix64::new(0xAB1A7E);
    let odd = {
        let mut m = rng.next_uint_exact_bits(512);
        if m.is_even() {
            m = m.add(&Uint::one());
        }
        m
    };
    let even = odd.add(&Uint::one());
    let base = rng.next_uint_exact_bits(500);
    let exp = rng.next_uint_exact_bits(512);

    c.bench_function("ablation_modpow/montgomery_odd_512", |b| {
        b.iter(|| black_box(mod_pow(&base, &exp, &odd).unwrap()))
    });
    c.bench_function("ablation_modpow/generic_even_512", |b| {
        b.iter(|| black_box(mod_pow(&base, &exp, &even).unwrap()))
    });

    // RSA operation costs: sign (private exponent) vs verify (e = 65537).
    let kp = tangled_crypto::rsa::RsaKeyPair::generate(512, &mut rng).unwrap();
    let sig = kp
        .sign(tangled_crypto::rsa::SignatureAlgorithm::Sha256WithRsa, b"bench")
        .unwrap();
    c.bench_function("ablation_modpow/rsa_sign_512", |b| {
        b.iter(|| {
            black_box(
                kp.sign(tangled_crypto::rsa::SignatureAlgorithm::Sha256WithRsa, b"bench")
                    .unwrap(),
            )
        })
    });
    c.bench_function("ablation_modpow/rsa_verify_512", |b| {
        b.iter(|| {
            kp.public_key()
                .verify(
                    tangled_crypto::rsa::SignatureAlgorithm::Sha256WithRsa,
                    b"bench",
                    &sig,
                )
                .unwrap()
        })
    });
}
