//! ASN.1 identifier octets: tag class, constructed bit, and tag number.

/// The four ASN.1 tag classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TagClass {
    /// Universal (built-in ASN.1 types).
    Universal,
    /// Application-specific.
    Application,
    /// Context-specific (the `[n]` tags in X.509 definitions).
    Context,
    /// Private.
    Private,
}

/// A decoded identifier octet. X.509 uses only low tag numbers (< 31), so a
/// single octet always suffices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tag {
    /// Class of the tag.
    pub class: TagClass,
    /// Whether the value is constructed (contains nested TLVs).
    pub constructed: bool,
    /// The tag number within its class.
    pub number: u8,
}

impl Tag {
    /// UNIVERSAL 1, BOOLEAN.
    pub const BOOLEAN: Tag = Tag::universal(1);
    /// UNIVERSAL 2, INTEGER.
    pub const INTEGER: Tag = Tag::universal(2);
    /// UNIVERSAL 3, BIT STRING.
    pub const BIT_STRING: Tag = Tag::universal(3);
    /// UNIVERSAL 4, OCTET STRING.
    pub const OCTET_STRING: Tag = Tag::universal(4);
    /// UNIVERSAL 5, NULL.
    pub const NULL: Tag = Tag::universal(5);
    /// UNIVERSAL 6, OBJECT IDENTIFIER.
    pub const OID: Tag = Tag::universal(6);
    /// UNIVERSAL 12, UTF8String.
    pub const UTF8_STRING: Tag = Tag::universal(12);
    /// UNIVERSAL 16, SEQUENCE (always constructed in DER).
    pub const SEQUENCE: Tag = Tag {
        class: TagClass::Universal,
        constructed: true,
        number: 16,
    };
    /// UNIVERSAL 17, SET (always constructed in DER).
    pub const SET: Tag = Tag {
        class: TagClass::Universal,
        constructed: true,
        number: 17,
    };
    /// UNIVERSAL 19, PrintableString.
    pub const PRINTABLE_STRING: Tag = Tag::universal(19);
    /// UNIVERSAL 22, IA5String.
    pub const IA5_STRING: Tag = Tag::universal(22);
    /// UNIVERSAL 23, UTCTime.
    pub const UTC_TIME: Tag = Tag::universal(23);
    /// UNIVERSAL 24, GeneralizedTime.
    pub const GENERALIZED_TIME: Tag = Tag::universal(24);

    /// A primitive universal tag.
    pub const fn universal(number: u8) -> Tag {
        Tag {
            class: TagClass::Universal,
            constructed: false,
            number,
        }
    }

    /// A constructed context-specific tag `[n]` (EXPLICIT wrapper).
    pub const fn context_constructed(number: u8) -> Tag {
        Tag {
            class: TagClass::Context,
            constructed: true,
            number,
        }
    }

    /// A primitive context-specific tag `[n]` (IMPLICIT primitive).
    pub const fn context_primitive(number: u8) -> Tag {
        Tag {
            class: TagClass::Context,
            constructed: false,
            number,
        }
    }

    /// Encode into a single identifier octet.
    ///
    /// # Panics
    /// Panics for tag numbers >= 31 (never constructed by this workspace).
    pub fn to_byte(self) -> u8 {
        assert!(self.number < 31, "high tag numbers unsupported");
        let class_bits = match self.class {
            TagClass::Universal => 0b0000_0000,
            TagClass::Application => 0b0100_0000,
            TagClass::Context => 0b1000_0000,
            TagClass::Private => 0b1100_0000,
        };
        class_bits | ((self.constructed as u8) << 5) | self.number
    }

    /// Decode from an identifier octet. Returns `None` for the high-tag-number
    /// form (number bits all set), which this codec does not support.
    pub fn from_byte(b: u8) -> Option<Tag> {
        let number = b & 0b0001_1111;
        if number == 31 {
            return None;
        }
        let class = match b >> 6 {
            0 => TagClass::Universal,
            1 => TagClass::Application,
            2 => TagClass::Context,
            _ => TagClass::Private,
        };
        Some(Tag {
            class,
            constructed: b & 0b0010_0000 != 0,
            number,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        for tag in [
            Tag::BOOLEAN,
            Tag::INTEGER,
            Tag::SEQUENCE,
            Tag::SET,
            Tag::OID,
            Tag::context_constructed(0),
            Tag::context_constructed(3),
            Tag::context_primitive(2),
        ] {
            assert_eq!(Tag::from_byte(tag.to_byte()), Some(tag));
        }
    }

    #[test]
    fn known_encodings() {
        assert_eq!(Tag::SEQUENCE.to_byte(), 0x30);
        assert_eq!(Tag::SET.to_byte(), 0x31);
        assert_eq!(Tag::INTEGER.to_byte(), 0x02);
        assert_eq!(Tag::context_constructed(0).to_byte(), 0xa0);
        assert_eq!(Tag::context_constructed(3).to_byte(), 0xa3);
    }

    #[test]
    fn high_tag_rejected() {
        assert_eq!(Tag::from_byte(0x1f), None);
        assert_eq!(Tag::from_byte(0xbf), None);
    }

    #[test]
    fn all_classes_decode() {
        assert_eq!(Tag::from_byte(0x41).unwrap().class, TagClass::Application);
        assert_eq!(Tag::from_byte(0xc1).unwrap().class, TagClass::Private);
    }
}
