//! The intercepting middlebox.
//!
//! [`MitmProxy`] owns a root CA and an issuing (intermediate) CA and, for
//! intercepted targets, mints a fresh leaf for the requested domain on the
//! fly — "intercepting and re-generating both root and intermediate
//! certificates on-the-fly for specific domains" (§7).
//!
//! Minting is fallible by design: every key-generation, date and issuance
//! step returns a classified [`MintError`] in the PR-1 quarantine
//! vocabulary (`stage` + `error` label) instead of panicking, so a hostile
//! policy or degenerate seed can never take the engine down.

use crate::origin::OriginServers;
use crate::policy::{ProxyAction, ProxyPolicy, Target};
use std::collections::HashMap;
use std::sync::Arc;
use tangled_asn1::Time;
use tangled_crypto::rsa::RsaKeyPair;
use tangled_crypto::{SplitMix64, Uint};
use tangled_x509::{Certificate, CertificateBuilder, DistinguishedName};

/// The proxy's name in certificates it mints (the paper's operator signs
/// as the marketing company).
pub const PROXY_CA_NAME: &str = "Reality Mine Research Proxy CA";

/// Host name of the proxy endpoint observed by Netalyzr.
pub const PROXY_HOST: &str = "v-us-49.analyzeme.me.uk";

/// A classified minting failure: which pipeline stage failed and a stable
/// error label, mirroring the quarantine ledger vocabulary so callers can
/// account for failed mints instead of unwinding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MintError {
    /// The stage that failed (`proxy-ca`, `mint`, ...).
    pub stage: &'static str,
    /// A stable, grep-able error label (`keygen`, `bad-date`, `issuance`).
    pub error: &'static str,
}

impl MintError {
    /// Construct a classified mint error.
    pub fn new(stage: &'static str, error: &'static str) -> MintError {
        MintError { stage, error }
    }
}

impl std::fmt::Display for MintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.stage, self.error)
    }
}

impl std::error::Error for MintError {}

fn date(stage: &'static str, y: i32, m: u8, d: u8) -> Result<Time, MintError> {
    Time::date(y, m, d).ok_or(MintError::new(stage, "bad-date"))
}

/// A re-signing CA hierarchy: root → issuing CA → on-demand leaves.
///
/// This is the reusable core of [`MitmProxy`], split out so scenario
/// engines can mint leaves with arbitrary windows, host names and serials
/// (expired leaves, hostname-mismatched leaves, ...) without the proxy's
/// per-target cache or policy attached.
pub struct ProxyHierarchy {
    root: Arc<Certificate>,
    issuing: Arc<Certificate>,
    issuing_key: RsaKeyPair,
    leaf_key: RsaKeyPair,
}

impl ProxyHierarchy {
    /// Generate a fresh two-level CA hierarchy, deterministic in `seed`.
    pub fn generate(
        seed: u64,
        ca_name: &str,
        org: &str,
        country: &str,
    ) -> Result<ProxyHierarchy, MintError> {
        let stage = "proxy-ca";
        let mut rng = SplitMix64::new(seed);
        let keygen = MintError::new(stage, "keygen");
        let root_key = RsaKeyPair::generate(512, &mut rng).map_err(|_| keygen.clone())?;
        let issuing_key = RsaKeyPair::generate(512, &mut rng).map_err(|_| keygen.clone())?;
        let leaf_key = RsaKeyPair::generate(512, &mut rng).map_err(|_| keygen)?;

        let nb = date(stage, 2013, 1, 1)?;
        let na = date(stage, 2023, 1, 1)?;
        let root_dn = DistinguishedName::builder()
            .common_name(ca_name)
            .organization(org)
            .country(country)
            .build();
        let root = Arc::new(
            CertificateBuilder::new(root_dn.clone(), root_dn.clone(), nb, na)
                .serial(Uint::one())
                .ca(None)
                .key_ids(root_key.public_key(), root_key.public_key())
                .sign(root_key.public_key(), &root_key)
                .map_err(|_| MintError::new(stage, "issuance"))?,
        );
        let issuing_dn = DistinguishedName::builder()
            .common_name(&format!("{ca_name} Issuing 01"))
            .organization(org)
            .country(country)
            .build();
        let issuing = Arc::new(
            CertificateBuilder::new(root_dn, issuing_dn, nb, na)
                .serial(Uint::from_u64(2))
                .ca(Some(0))
                .key_ids(issuing_key.public_key(), root_key.public_key())
                .sign(issuing_key.public_key(), &root_key)
                .map_err(|_| MintError::new(stage, "issuance"))?,
        );
        Ok(ProxyHierarchy {
            root,
            issuing,
            issuing_key,
            leaf_key,
        })
    }

    /// The Reality Mine hierarchy as the paper observed it.
    pub fn reality_mine(seed: u64) -> Result<ProxyHierarchy, MintError> {
        ProxyHierarchy::generate(seed, PROXY_CA_NAME, "RealityMine Ltd", "GB")
    }

    /// The self-signed root (never sent on the wire).
    pub fn root(&self) -> &Arc<Certificate> {
        &self.root
    }

    /// The issuing (intermediate) CA certificate.
    pub fn issuing(&self) -> &Arc<Certificate> {
        &self.issuing
    }

    /// Mint a leaf for `domain` under the issuing CA with an explicit
    /// validity window and serial. All mints share one leaf key — exactly
    /// what an on-path re-signer does, and what keeps minting cheap.
    pub fn mint_leaf(
        &self,
        domain: &str,
        dns_names: Vec<String>,
        serial: u64,
        not_before: Time,
        not_after: Time,
    ) -> Result<Arc<Certificate>, MintError> {
        CertificateBuilder::new(
            self.issuing.subject.clone(),
            DistinguishedName::common_name(domain),
            not_before,
            not_after,
        )
        .serial(Uint::from_u64(serial))
        .tls_server(dns_names)
        .key_ids(self.leaf_key.public_key(), self.issuing_key.public_key())
        .sign(self.leaf_key.public_key(), &self.issuing_key)
        .map(Arc::new)
        .map_err(|_| MintError::new("mint", "issuance"))
    }
}

/// An HTTPS-intercepting proxy.
pub struct MitmProxy {
    policy: ProxyPolicy,
    hierarchy: ProxyHierarchy,
    minted: HashMap<Target, Vec<Arc<Certificate>>>,
    serial: u64,
}

impl MitmProxy {
    /// Stand up a proxy with a fresh CA hierarchy (deterministic in
    /// `seed`) and the given policy.
    pub fn new(policy: ProxyPolicy, seed: u64) -> Result<MitmProxy, MintError> {
        let hierarchy = ProxyHierarchy::reality_mine(seed)?;
        Ok(MitmProxy {
            policy,
            hierarchy,
            minted: HashMap::new(),
            serial: 90_000,
        })
    }

    /// The Reality Mine proxy as the paper observed it.
    pub fn reality_mine() -> Result<MitmProxy, MintError> {
        MitmProxy::new(ProxyPolicy::reality_mine(), 0x5EA1)
    }

    /// The proxy's own root certificate (never installed on the victim
    /// device in the §7 case — which is exactly why Netalyzr could see the
    /// interception).
    pub fn root_cert(&self) -> &Arc<Certificate> {
        self.hierarchy.root()
    }

    /// The policy in force.
    pub fn policy(&self) -> &ProxyPolicy {
        &self.policy
    }

    /// Handle a connection: return the chain the client sees.
    ///
    /// Whitelisted / non-HTTPS targets get the origin chain verbatim;
    /// intercepted targets get a proxy-minted chain
    /// `leaf(domain) ← issuing CA ← (proxy root, not sent)`.
    pub fn serve(
        &mut self,
        target: &Target,
        origin: &OriginServers,
    ) -> Result<Vec<Arc<Certificate>>, MintError> {
        match self.policy.action(target) {
            ProxyAction::PassThrough => Ok(origin
                .chain(target)
                .map(|c| c.to_vec())
                .unwrap_or_default()),
            ProxyAction::Intercept => {
                if let Some(chain) = self.minted.get(target) {
                    return Ok(chain.clone());
                }
                self.serial += 1;
                let leaf = self.hierarchy.mint_leaf(
                    &target.domain,
                    vec![target.domain.clone()],
                    self.serial,
                    date("mint", 2013, 6, 1)?,
                    date("mint", 2016, 6, 1)?,
                )?;
                let chain = vec![leaf, Arc::clone(self.hierarchy.issuing())];
                self.minted.insert(target.clone(), chain.clone());
                Ok(chain)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intercepted_chain_is_proxy_signed() {
        let origin = OriginServers::for_table6();
        let mut proxy = MitmProxy::reality_mine().unwrap();
        let t = Target::parse("www.chase.com:443").unwrap();
        let chain = proxy.serve(&t, &origin).unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[0].subject.cn(), Some("www.chase.com"));
        // Leaf verifies under the proxy's issuing CA, which verifies under
        // the proxy root.
        chain[0].verify_issued_by(&chain[1]).unwrap();
        chain[1].verify_issued_by(proxy.root_cert()).unwrap();
        // And it is NOT the origin chain.
        assert_ne!(chain[0].to_der(), origin.chain(&t).unwrap()[0].to_der());
    }

    #[test]
    fn whitelisted_chain_is_untouched() {
        let origin = OriginServers::for_table6();
        let mut proxy = MitmProxy::reality_mine().unwrap();
        let t = Target::parse("www.facebook.com:443").unwrap();
        let chain = proxy.serve(&t, &origin).unwrap();
        assert_eq!(chain[0].to_der(), origin.chain(&t).unwrap()[0].to_der());
    }

    #[test]
    fn minted_leaves_are_cached_per_target() {
        let origin = OriginServers::for_table6();
        let mut proxy = MitmProxy::reality_mine().unwrap();
        let t = Target::parse("gmail.com:443").unwrap();
        let a = proxy.serve(&t, &origin).unwrap();
        let b = proxy.serve(&t, &origin).unwrap();
        assert_eq!(a[0].to_der(), b[0].to_der());
        // Different targets get different leaves.
        let c = proxy
            .serve(&Target::parse("www.yahoo.com:443").unwrap(), &origin)
            .unwrap();
        assert_ne!(a[0].to_der(), c[0].to_der());
    }

    #[test]
    fn proxy_is_deterministic_in_seed() {
        let a = MitmProxy::new(ProxyPolicy::reality_mine(), 7).unwrap();
        let b = MitmProxy::new(ProxyPolicy::reality_mine(), 7).unwrap();
        assert_eq!(a.root_cert().to_der(), b.root_cert().to_der());
        let c = MitmProxy::new(ProxyPolicy::reality_mine(), 8).unwrap();
        assert_ne!(a.root_cert().to_der(), c.root_cert().to_der());
    }

    #[test]
    fn mint_errors_display_in_quarantine_vocabulary() {
        let e = MintError::new("proxy-ca", "keygen");
        assert_eq!(e.to_string(), "proxy-ca/keygen");
    }

    #[test]
    fn hierarchy_mints_custom_windows_and_names() {
        let h = ProxyHierarchy::reality_mine(3).unwrap();
        let nb = Time::date(2012, 1, 1).unwrap();
        let na = Time::date(2013, 6, 1).unwrap();
        let leaf = h
            .mint_leaf("example.org", vec!["other.example".into()], 7, nb, na)
            .unwrap();
        assert_eq!(leaf.subject.cn(), Some("example.org"));
        assert_eq!(leaf.dns_names(), &["other.example".to_string()]);
        leaf.verify_issued_by(h.issuing()).unwrap();
    }
}
