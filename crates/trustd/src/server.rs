//! The TCP front-end: std-only listener plus worker thread pool.
//!
//! An accept thread feeds connections into an `mpsc` channel; N worker
//! threads drain it, each running the frame loop for one connection at a
//! time. Workers poll a stop flag between read-timeout ticks, so
//! [`TrustServer::shutdown`] converges without killing in-flight
//! requests.
//!
//! Protocol failures follow the quarantine discipline, not the
//! drop-the-connection one: an undecodable *message* gets an `error`
//! reply and the connection lives on; only an unrecoverable *framing*
//! fault (oversized header, mid-frame truncation) closes the stream,
//! after a best-effort error reply — either way the fault is recorded in
//! the service's health ledger first.

use crate::service::TrustService;
use crate::wire::{self, FrameError, Request};
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long a worker blocks in `read` before polling the stop flag.
const READ_TICK: Duration = Duration::from_millis(50);

/// A running trustd server.
pub struct TrustServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TrustServer {
    /// Bind `addr` and start `workers` worker threads (minimum 1).
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<TrustService>,
        workers: usize,
    ) -> io::Result<TrustServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let worker_handles = (0..workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || worker_loop(&rx, &service, &stop))
            })
            .collect();

        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // Dropping `tx` closes the channel; workers drain and exit.
        });

        Ok(TrustServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            workers: worker_handles,
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stop accepting, finish queued connections, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop: it blocks in `accept`, so poke it with a
        // throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    service: &Arc<TrustService>,
    stop: &Arc<AtomicBool>,
) {
    loop {
        let stream = {
            let guard = rx.lock().expect("receiver poisoned");
            match guard.recv_timeout(READ_TICK) {
                Ok(stream) => Some(stream),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        };
        match stream {
            Some(stream) => handle_connection(stream, service, stop),
            None if stop.load(Ordering::SeqCst) => break,
            None => continue,
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    service: &Arc<TrustService>,
    stop: &Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_nodelay(true);
    loop {
        match wire::read_frame(&mut stream) {
            Ok(None) => break,
            Ok(Some(body)) => {
                let reply = match Request::decode(&body) {
                    Ok(req) => service.handle(&req),
                    // Bad message, good framing: classify, reply, carry on.
                    Err(e) => service.record_wire_fault(&e),
                };
                if wire::write_frame(&mut stream, &reply.encode()).is_err() {
                    break;
                }
            }
            Err(FrameError::Io(e)) if wire::is_timeout(&e) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(FrameError::Io(_)) => break,
            Err(FrameError::Wire(e)) => {
                // Framing is gone; we cannot find the next frame boundary.
                let reply = service.record_wire_fault(&e);
                let _ = wire::write_frame(&mut stream, &reply.encode());
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TrustClient;
    use crate::wire::Response;

    #[test]
    fn server_round_trips_and_shuts_down() {
        let service = Arc::new(TrustService::new(16));
        let server =
            TrustServer::bind("127.0.0.1:0", Arc::clone(&service), 2).expect("bind");
        let addr = server.local_addr();

        let mut client = TrustClient::connect(addr).expect("connect");
        match client.call(&Request::Stats).expect("stats call") {
            Response::Stats(doc) => {
                assert!(doc["served"].as_object().is_some() || doc["served"].is_null());
            }
            other => panic!("unexpected {other:?}"),
        }
        drop(client);
        server.shutdown();
        assert_eq!(service.stats().served_total(), 1);
    }

    #[test]
    fn malformed_message_keeps_connection_alive() {
        let service = Arc::new(TrustService::new(16));
        let server =
            TrustServer::bind("127.0.0.1:0", Arc::clone(&service), 1).expect("bind");
        let mut client = TrustClient::connect(server.local_addr()).expect("connect");

        // Valid frame, invalid message → classified error, same socket.
        let resp = client.call_raw(b"this is not json").expect("raw call");
        assert_eq!(
            resp,
            Response::Error {
                stage: "wire".into(),
                error: "bad-json".into()
            }
        );
        // The connection still serves real requests afterwards.
        match client.call(&Request::Stats).expect("stats after fault") {
            Response::Stats(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
        assert_eq!(service.stats().quarantined_total(), 1);
    }
}
