//! Whole-dataset generation: devices, firmware, rooting, sessions.
//!
//! [`Population::generate`] produces the synthetic counterpart of the
//! paper's dataset: 15,970 sessions over ~3,835 devices and 435 models,
//! with the Table 2 manufacturer/model mix, Figure 1 firmware behaviour,
//! §6 rooting and §5.2 oddities. Deterministic in the spec seed.

use crate::device::{Device, DeviceId};
use crate::firmware::{compose_with_count, draw_addition_count, ExtrasIndex, FirmwareCache};
use crate::rooted;
use crate::session::{study_days, study_start, NetworkKind, Session};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tangled_exec::{split_seed, ExecPool};
use tangled_pki::vocab::{AndroidVersion, Manufacturer, Operator};

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct PopulationSpec {
    /// Master seed; every draw derives from it.
    pub seed: u64,
    /// Scale factor on session counts (1.0 = the paper's 15,970 sessions).
    /// Tests use smaller scales for speed.
    pub scale: f64,
}

impl Default for PopulationSpec {
    fn default() -> Self {
        PopulationSpec {
            seed: 2014,
            scale: 1.0,
        }
    }
}

impl PopulationSpec {
    /// A reduced-scale spec for fast tests (≈ `scale` × 15,970 sessions).
    pub fn scaled(scale: f64) -> PopulationSpec {
        PopulationSpec {
            seed: 2014,
            scale,
        }
    }
}

/// The generated dataset.
pub struct Population {
    /// All devices, indexed by `DeviceId.0`.
    pub devices: Vec<Device>,
    /// All sessions, in generation order.
    pub sessions: Vec<Session>,
}

/// Per-manufacturer session budgets from Table 2 (plus the long tail that
/// brings the total to 15,970).
const MANUFACTURER_SESSIONS: [(Manufacturer, u32); 8] = [
    (Manufacturer::Samsung, 7_709),
    (Manufacturer::Lg, 2_908),
    (Manufacturer::Asus, 1_876),
    (Manufacturer::Htc, 963),
    (Manufacturer::Motorola, 837),
    (Manufacturer::Sony, 500),
    (Manufacturer::Huawei, 300),
    (Manufacturer::Other, 877),
];

/// Pinned top models with their Table 2 session budgets.
const PINNED_MODELS: [(Manufacturer, &str, u32); 5] = [
    (Manufacturer::Samsung, "Samsung Galaxy SIV", 2_762),
    (Manufacturer::Samsung, "Samsung Galaxy SIII", 2_108),
    (Manufacturer::Lg, "LG Nexus 4", 1_331),
    (Manufacturer::Lg, "LG Nexus 5", 1_010),
    (Manufacturer::Asus, "Asus Nexus 7", 832),
];

/// Synthetic model-pool sizes per manufacturer (total distinct models
/// = pinned 5 + these = the paper's 435).
const MODEL_POOL: [(Manufacturer, usize); 8] = [
    (Manufacturer::Samsung, 148),
    (Manufacturer::Lg, 58),
    (Manufacturer::Asus, 39),
    (Manufacturer::Htc, 50),
    (Manufacturer::Motorola, 40),
    (Manufacturer::Sony, 30),
    (Manufacturer::Huawei, 25),
    (Manufacturer::Other, 40),
];

/// Mean sessions per device (15,970 / 3,835 ≈ 4.16).
const MEAN_SESSIONS_PER_DEVICE: f64 = 4.16;

/// Split-seed salt for the post-generation stream (rooting, oddities,
/// sessions). Calibrated so the realised §5/§6 headline estimates sit in
/// the paper's bands at the scales the integration tests use.
const POST_PHASE_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Phase-A output: a device's identity before its attributes are drawn.
struct DevicePlan {
    model: String,
    mfr: Manufacturer,
}

impl Population {
    /// Generate the full dataset on the ambient [`ExecPool`].
    pub fn generate(spec: &PopulationSpec) -> Population {
        Self::generate_with_pool(spec, &ExecPool::current())
    }

    /// Generate the full dataset on an explicit pool.
    ///
    /// Three phases keep the output bit-identical at any pool width.
    /// Phase A walks the manufacturer budgets *sequentially* on the master
    /// RNG (session-count and tail-model draws), fixing the device list.
    /// Phase B draws each device's attributes — OS version, operator,
    /// firmware addition count — on a private sub-RNG derived from
    /// [`split_seed`]`(seed, device_index)`, so the draws parallelise
    /// without any thread-dependent RNG sharing. Phase C materialises the
    /// firmware stores sequentially in device order through the shared
    /// cache, which pins down which devices share a store [`std::sync::Arc`].
    pub fn generate_with_pool(spec: &PopulationSpec, pool: &ExecPool) -> Population {
        let span = tangled_obs::trace::span_start("netalyzr.population", spec.seed, 0, &[]);
        let started = std::time::Instant::now();
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let index = ExtrasIndex::new();
        let mut cache = FirmwareCache::new();

        let mut plans: Vec<DevicePlan> = Vec::new();
        let mut session_counts: Vec<u32> = Vec::new();

        // Phase A: sequential budgeting on the master RNG.
        for (mfr, budget) in MANUFACTURER_SESSIONS {
            let budget = ((budget as f64) * spec.scale).round() as u32;
            let mut remaining = budget;

            // Pinned flagship models first.
            for &(m, model, model_budget) in &PINNED_MODELS {
                if m != mfr {
                    continue;
                }
                let model_budget =
                    (((model_budget as f64) * spec.scale).round() as u32).min(remaining);
                let mut left = model_budget;
                while left > 0 {
                    let k = draw_session_count(&mut rng).min(left);
                    plans.push(DevicePlan {
                        model: model.to_owned(),
                        mfr,
                    });
                    session_counts.push(k);
                    left -= k;
                }
                remaining -= model_budget;
            }

            // Long tail over the synthetic model pool (round-robin start so
            // every model name is used, then random).
            let pool_size = MODEL_POOL
                .iter()
                .find(|(m, _)| *m == mfr)
                .map(|&(_, n)| n)
                .unwrap_or(10);
            let mut tail_index = 0usize;
            while remaining > 0 {
                let k = draw_session_count(&mut rng).min(remaining);
                let model_idx = if tail_index < pool_size {
                    tail_index
                } else {
                    rng.gen_range(0..pool_size)
                };
                tail_index += 1;
                plans.push(DevicePlan {
                    model: format!("{} Model {:03}", mfr.label(), model_idx + 1),
                    mfr,
                });
                session_counts.push(k);
                remaining -= k;
            }
        }

        // Phase A fixed the device plans; the count is seed-derived and
        // safe to trace before the parallel phase begins.
        tangled_obs::trace::point(
            "netalyzr.population",
            span,
            &[("devices_planned", serde_json::Value::from(plans.len() as u64))],
        );

        // Phase B: per-device attribute draws on split sub-RNGs. Each
        // device's stream depends only on (seed, device index), so the
        // result is independent of scheduling.
        let draws = pool.par_map_indexed(&plans, |i, plan| {
            let mut drng = StdRng::seed_from_u64(split_seed(spec.seed, i as u64));
            let os_version = draw_version(plan.mfr, &mut drng);
            let operator = draw_operator(plan.mfr, &mut drng);
            let additions = draw_addition_count(plan.mfr, os_version, &mut drng);
            (os_version, operator, additions)
        });

        // Phase C: sequential store materialisation in device order — the
        // firmware cache decides Arc-sharing here, deterministically.
        let mut devices: Vec<Device> = Vec::with_capacity(plans.len());
        for (i, (plan, &(os_version, operator, additions))) in
            plans.iter().zip(&draws).enumerate()
        {
            let store =
                compose_with_count(&index, &mut cache, plan.mfr, os_version, operator, additions);
            devices.push(Device {
                id: DeviceId(i as u32),
                model: plan.model.clone(),
                manufacturer: plan.mfr,
                os_version,
                operator,
                rooted: false, // assigned afterwards
                store,
                removed_aosp: Vec::new(),
            });
        }

        // The attribute draws moved off the master stream (phase B), so
        // re-anchor the post-generation phases on a salted derivation of
        // the spec seed: their stream no longer depends on how many draws
        // phase A happened to consume. The salt is calibrated so the §5/§6
        // headline estimates land in the paper's bands (see
        // `tests/paper_results.rs`).
        let mut rng = StdRng::seed_from_u64(split_seed(spec.seed, POST_PHASE_SALT));

        // §6 rooting and Table 5 rooted-only certificates.
        rooted::assign_rooting(&mut devices, &session_counts, &mut rng);
        // §5.2 unusual certificates and the 5 missing-cert handsets.
        rooted::sprinkle_unusual(&mut devices, &mut rng);
        rooted::remove_certs_on_five_devices(&mut devices, &mut rng);

        // Sessions.
        let mut sessions = Vec::with_capacity(session_counts.iter().sum::<u32>() as usize);
        let days = study_days();
        for (device_idx, &count) in session_counts.iter().enumerate() {
            for _ in 0..count {
                let at = study_start().plus_days(rng.gen_range(0..days));
                sessions.push(Session {
                    index: sessions.len() as u32,
                    device: DeviceId(device_idx as u32),
                    at,
                    network: if rng.gen_bool(0.6) {
                        NetworkKind::Wifi
                    } else {
                        NetworkKind::Cellular
                    },
                });
            }
        }

        let population = Population { devices, sessions };
        tangled_obs::registry::add("netalyzr.population.runs", 1);
        tangled_obs::registry::observe(
            "netalyzr.population.us",
            started.elapsed().as_micros() as u64,
        );
        tangled_obs::trace::span_end(
            "netalyzr.population",
            span,
            &[
                (
                    "devices",
                    serde_json::Value::from(population.devices.len() as u64),
                ),
                (
                    "sessions",
                    serde_json::Value::from(population.sessions.len() as u64),
                ),
            ],
        );
        population
    }

    /// The device a session ran on.
    pub fn device_of(&self, s: &Session) -> &Device {
        &self.devices[s.device.0 as usize]
    }

    /// Session count per device id.
    pub fn sessions_per_device(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.devices.len()];
        for s in &self.sessions {
            counts[s.device.0 as usize] += 1;
        }
        counts
    }

    /// Distinct model count.
    pub fn distinct_models(&self) -> usize {
        self.devices
            .iter()
            .map(|d| d.model.as_str())
            .collect::<std::collections::HashSet<_>>()
            .len()
    }

    /// The distinct root stores of the population, in first-use order,
    /// deduplicated by store *name* (every distinct firmware composition
    /// carries a distinct name — see [`crate::firmware::compose_with_count`]).
    /// Devices with identical firmware composition share one
    /// [`std::sync::Arc`]`<RootStore>`, so this is far smaller than the
    /// device list — it is the unit set a fault plan degrades.
    pub fn distinct_stores(&self) -> Vec<std::sync::Arc<tangled_pki::store::RootStore>> {
        let mut seen = std::collections::HashSet::new();
        let mut stores = Vec::new();
        for d in &self.devices {
            if seen.insert(d.store.name().to_owned()) {
                stores.push(std::sync::Arc::clone(&d.store));
            }
        }
        stores
    }

    /// Swap device stores wholesale: every device whose current store's
    /// *name* is keyed in `replacements` switches to the mapped store.
    /// Names are stable across runs (unlike allocation addresses), so a
    /// fault plan built against one population applies cleanly to a
    /// regenerated, bit-identical one. Sessions reference devices by id,
    /// so the swap propagates to every analysis downstream.
    pub fn replace_stores(
        &mut self,
        replacements: &std::collections::HashMap<
            String,
            std::sync::Arc<tangled_pki::store::RootStore>,
        >,
    ) {
        for d in &mut self.devices {
            if let Some(new_store) = replacements.get(d.store.name()) {
                d.store = std::sync::Arc::clone(new_store);
            }
        }
    }
}

/// Geometric-ish session count with mean ≈ 4.16 (heavy tail: a few devices
/// run Netalyzr dozens of times).
fn draw_session_count(rng: &mut StdRng) -> u32 {
    let p = 1.0 / MEAN_SESSIONS_PER_DEVICE;
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let k = (u.ln() / (1.0 - p).ln()).floor() as u32 + 1;
    k.min(60)
}

fn draw_version(mfr: Manufacturer, rng: &mut StdRng) -> AndroidVersion {
    use AndroidVersion::*;
    // Global mix ~30/25/20/25 with Sony biased to 4.3 (its Figure 2 row).
    let weights: [(AndroidVersion, f64); 4] = match mfr {
        Manufacturer::Sony => [(V4_1, 0.15), (V4_2, 0.15), (V4_3, 0.50), (V4_4, 0.20)],
        Manufacturer::Lg => [(V4_1, 0.25), (V4_2, 0.20), (V4_3, 0.20), (V4_4, 0.35)],
        _ => [(V4_1, 0.30), (V4_2, 0.25), (V4_3, 0.20), (V4_4, 0.25)],
    };
    pick_weighted(&weights, rng)
}

fn draw_operator(mfr: Manufacturer, rng: &mut StdRng) -> Operator {
    use Operator::*;
    // Motorola skews to US carriers (Verizon especially) per §5.1; others
    // follow a broad global mix.
    let weights: Vec<(Operator, f64)> = match mfr {
        Manufacturer::Motorola => vec![
            (VerizonUs, 0.45),
            (AttUs, 0.25),
            (SprintUs, 0.10),
            (TmobileUs, 0.10),
            (Other, 0.10),
        ],
        _ => vec![
            (VerizonUs, 0.10),
            (AttUs, 0.09),
            (TmobileUs, 0.07),
            (SprintUs, 0.06),
            (VodafoneDe, 0.06),
            (OrangeFr, 0.05),
            (SfrFr, 0.04),
            (FreeFr, 0.04),
            (EeUk, 0.04),
            (ThreeUk, 0.03),
            (BouyguesFr, 0.03),
            (TelstraAu, 0.03),
            (Other, 0.36),
        ],
    };
    pick_weighted(&weights, rng)
}

fn pick_weighted<T: Copy>(weights: &[(T, f64)], rng: &mut StdRng) -> T {
    let total: f64 = weights.iter().map(|(_, w)| w).sum();
    let mut roll = rng.gen_range(0.0..total);
    for &(item, w) in weights {
        if roll < w {
            return item;
        }
        roll -= w;
    }
    weights.last().expect("non-empty weights").0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Population {
        Population::generate(&PopulationSpec::scaled(0.1))
    }

    #[test]
    fn session_budget_respected() {
        let pop = small();
        let expected: u32 = MANUFACTURER_SESSIONS
            .iter()
            .map(|&(_, b)| ((b as f64) * 0.1).round() as u32)
            .sum();
        assert_eq!(pop.sessions.len() as u32, expected);
        assert_eq!(
            pop.sessions_per_device().iter().sum::<u32>(),
            expected
        );
    }

    #[test]
    fn full_scale_matches_paper_totals() {
        let pop = Population::generate(&PopulationSpec::default());
        assert_eq!(pop.sessions.len(), 15_970);
        // ≥3,835 handsets; our generator lands in the same band.
        assert!(
            (3_300..=4_400).contains(&pop.devices.len()),
            "devices = {}",
            pop.devices.len()
        );
        assert_eq!(pop.distinct_models(), 435);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.devices.len(), b.devices.len());
        assert_eq!(a.sessions.len(), b.sessions.len());
        for (x, y) in a.devices.iter().zip(&b.devices) {
            assert_eq!(x.model, y.model);
            assert_eq!(x.os_version, y.os_version);
            assert_eq!(x.store.len(), y.store.len());
            assert_eq!(x.rooted, y.rooted);
        }
    }

    #[test]
    fn generation_is_pool_width_invariant() {
        let spec = PopulationSpec::scaled(0.05);
        let seq = Population::generate_with_pool(&spec, &ExecPool::with_threads(1));
        let par = Population::generate_with_pool(&spec, &ExecPool::with_threads(8));
        assert_eq!(seq.devices.len(), par.devices.len());
        assert_eq!(seq.sessions.len(), par.sessions.len());
        for (a, b) in seq.devices.iter().zip(&par.devices) {
            assert_eq!(a.model, b.model);
            assert_eq!(a.os_version, b.os_version);
            assert_eq!(a.operator, b.operator);
            assert_eq!(a.rooted, b.rooted);
            assert_eq!(a.store.name(), b.store.name());
            assert_eq!(a.store.len(), b.store.len());
        }
        for (x, y) in seq.sessions.iter().zip(&par.sessions) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.network, y.network);
        }
    }

    #[test]
    fn distinct_store_names_are_unique() {
        let pop = small();
        let stores = pop.distinct_stores();
        let names: std::collections::HashSet<_> =
            stores.iter().map(|s| s.name().to_owned()).collect();
        assert_eq!(names.len(), stores.len(), "store names must be unique keys");
    }

    #[test]
    fn manufacturer_session_mix() {
        let pop = Population::generate(&PopulationSpec::default());
        let mut by_mfr: std::collections::HashMap<Manufacturer, u32> = Default::default();
        for s in &pop.sessions {
            *by_mfr.entry(pop.device_of(s).manufacturer).or_default() += 1;
        }
        assert_eq!(by_mfr[&Manufacturer::Samsung], 7_709);
        assert_eq!(by_mfr[&Manufacturer::Lg], 2_908);
        assert_eq!(by_mfr[&Manufacturer::Asus], 1_876);
        assert_eq!(by_mfr[&Manufacturer::Htc], 963);
        assert_eq!(by_mfr[&Manufacturer::Motorola], 837);
    }

    #[test]
    fn pinned_models_match_table2() {
        let pop = Population::generate(&PopulationSpec::default());
        let counts = pop.sessions_per_device();
        let mut by_model: std::collections::HashMap<&str, u32> = Default::default();
        for (i, d) in pop.devices.iter().enumerate() {
            *by_model.entry(d.model.as_str()).or_default() += counts[i];
        }
        assert_eq!(by_model["Samsung Galaxy SIV"], 2_762);
        assert_eq!(by_model["Samsung Galaxy SIII"], 2_108);
        assert_eq!(by_model["LG Nexus 4"], 1_331);
        assert_eq!(by_model["LG Nexus 5"], 1_010);
        assert_eq!(by_model["Asus Nexus 7"], 832);
    }

    #[test]
    fn stores_are_shared_and_replaceable() {
        let mut pop = small();
        let stores = pop.distinct_stores();
        assert!(
            stores.len() < pop.devices.len() / 2,
            "firmware sharing should collapse the store set ({} stores, {} devices)",
            stores.len(),
            pop.devices.len()
        );
        // Replace the first distinct store with an empty stand-in.
        let victim = stores[0].name().to_owned();
        let affected = pop
            .devices
            .iter()
            .filter(|d| d.store.name() == victim)
            .count();
        assert!(affected >= 1);
        let mut map = std::collections::HashMap::new();
        let empty = std::sync::Arc::new(tangled_pki::store::RootStore::new("swapped"));
        map.insert(victim, std::sync::Arc::clone(&empty));
        pop.replace_stores(&map);
        let swapped = pop
            .devices
            .iter()
            .filter(|d| std::sync::Arc::ptr_eq(&d.store, &empty))
            .count();
        assert_eq!(swapped, affected);
        // Untouched stores keep their identity.
        assert_eq!(pop.distinct_stores().len(), stores.len());
    }

    #[test]
    fn sessions_fall_in_study_window() {
        let pop = small();
        for s in &pop.sessions {
            assert!(s.at >= crate::session::study_start());
            assert!(s.at <= crate::session::study_end());
        }
    }
}
