//! JSON export of the full result set.
//!
//! [`export_study`] serializes every table, figure series and headline
//! statistic into one `serde_json::Value`, so external tooling (plotting
//! scripts, dashboards, regression trackers) can consume a run without
//! linking Rust. The schema is stable and documented field by field below.

use crate::classify::{addition_class_distribution, headline_stats};
use crate::figures;
use crate::study::Study;
use crate::tables;
use serde_json::{json, Value};

/// Schema version of the exported document. v2 added the `health`
/// section (fault-injection and quarantine accounting).
pub const EXPORT_SCHEMA_VERSION: u32 = 2;

/// Export the complete result set of a study.
pub fn export_study(study: &Study) -> Value {
    let stats = headline_stats(&study.population);
    let classes = addition_class_distribution(&study.population);
    let t2 = tables::table2_data(&study.population);
    let t6 = tables::table6_data();

    json!({
        "schema_version": EXPORT_SCHEMA_VERSION,
        "paper": "A Tangled Mass: The Android Root Certificate Stores (CoNEXT 2014)",
        "dataset": {
            "sessions": study.population.sessions.len(),
            "devices": study.population.devices.len(),
            "models": study.population.distinct_models(),
            "notary_certs": study.ecosystem.len(),
            "notary_non_expired": study.ecosystem.non_expired(),
            "notary_sessions": study.db.total_sessions(),
        },
        "table1": tables::table1_data()
            .into_iter()
            .map(|(store, n)| json!({"store": store, "certificates": n}))
            .collect::<Vec<_>>(),
        "table2": {
            "top_models": t2.top_models
                .iter()
                .map(|(m, n)| json!({"model": m, "sessions": n}))
                .collect::<Vec<_>>(),
            "top_manufacturers": t2.top_manufacturers
                .iter()
                .map(|(m, n)| json!({"manufacturer": m, "sessions": n}))
                .collect::<Vec<_>>(),
        },
        "table3": tables::table3_data(&study.validation)
            .into_iter()
            .map(|(store, n)| json!({"store": store, "validated": n}))
            .collect::<Vec<_>>(),
        "table4": tables::table4_data(&study.validation)
            .into_iter()
            .map(|row| json!({
                "category": row.category,
                "total": row.total,
                "dead_fraction": row.dead_fraction,
            }))
            .collect::<Vec<_>>(),
        "table5": tables::table5_data(&study.population)
            .into_iter()
            .map(|(authority, devices)| json!({
                "authority": authority,
                "devices": devices,
            }))
            .collect::<Vec<_>>(),
        "table6": {
            "intercepted": t6.intercepted,
            "whitelisted": t6.whitelisted,
        },
        "figure1": figures::figure1(&study.population)
            .into_iter()
            .map(|p| json!({
                "manufacturer": p.manufacturer.label(),
                "version": p.version.label(),
                "aosp_certs": p.aosp_certs,
                "additional": p.additional,
                "sessions": p.sessions,
            }))
            .collect::<Vec<_>>(),
        "figure2": figures::figure2(&study.population)
            .into_iter()
            .map(|c| json!({
                "row": c.row.label(),
                "cert": c.cert,
                "class": c.class.label(),
                "frequency": c.frequency,
            }))
            .collect::<Vec<_>>(),
        "figure3": figures::figure3(&study.validation)
            .into_iter()
            .map(|s| json!({
                "label": s.label,
                "roots": s.counts.len(),
                "dead_fraction": s.dead_fraction,
                "ecdf": s.ecdf
                    .iter()
                    .map(|&(x, y)| json!([x, y]))
                    .collect::<Vec<_>>(),
            }))
            .collect::<Vec<_>>(),
        "health": study.health.to_json(),
        "headlines": {
            "extended_session_fraction": stats.extended_session_fraction,
            "devices_missing_certs": stats.devices_missing_certs,
            "rooted_session_fraction": stats.rooted_session_fraction,
            "rooted_only_share_of_rooted": stats.rooted_only_share_of_rooted,
            "distinct_additions": stats.distinct_additions,
            "addition_classes": classes
                .into_iter()
                .map(|(c, f)| (c.label().to_owned(), f))
                .collect::<std::collections::BTreeMap<String, f64>>(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn doc() -> &'static Value {
        static DOC: OnceLock<Value> = OnceLock::new();
        DOC.get_or_init(|| export_study(&Study::quick()))
    }

    #[test]
    fn schema_fields_present() {
        let d = doc();
        for key in [
            "schema_version",
            "dataset",
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "figure1",
            "figure2",
            "figure3",
            "health",
            "headlines",
        ] {
            assert!(d.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(d["schema_version"], EXPORT_SCHEMA_VERSION);
        // A clean study exports an empty, balanced health section.
        assert_eq!(d["health"]["injected_total"], 0u32);
        assert_eq!(d["health"]["balanced"], true);
    }

    #[test]
    fn table1_contents() {
        let t1 = doc()["table1"].as_array().unwrap();
        assert_eq!(t1.len(), 6);
        assert_eq!(t1[3]["store"], "AOSP 4.4");
        assert_eq!(t1[3]["certificates"], 150);
    }

    #[test]
    fn json_serializes_and_reparses() {
        let text = serde_json::to_string(doc()).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(&back, doc());
        // A figure3 series carries a monotone ECDF.
        let ecdf = back["figure3"][0]["ecdf"].as_array().unwrap();
        assert!(!ecdf.is_empty());
        let ys: Vec<f64> = ecdf.iter().map(|p| p[1].as_f64().unwrap()).collect();
        assert!(ys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn headline_values_in_range() {
        let h = &doc()["headlines"];
        let ext = h["extended_session_fraction"].as_f64().unwrap();
        assert!((0.0..=1.0).contains(&ext));
        assert_eq!(h["devices_missing_certs"], 5);
        let classes = h["addition_classes"].as_object().unwrap();
        let total: f64 = classes.values().map(|v| v.as_f64().unwrap()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
