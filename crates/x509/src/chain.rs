//! Certificate chain building and verification.
//!
//! This is the operation behind the paper's Notary validation numbers
//! (Tables 3–4, Figure 3): given a leaf certificate, a pool of candidate
//! intermediates, and a root store, find a signature path from the leaf to
//! a trust anchor. [`ChainVerifier`] indexes issuers by subject so lookups
//! are O(1) per step; a naive quadratic builder is kept alongside for the
//! ablation benchmark (DESIGN.md §5.2).

use crate::cert::Certificate;
use crate::verify::{check_cert, CertCheckError, CertRole};
use std::collections::HashMap;
use std::sync::Arc;
use tangled_asn1::Time;
use tangled_crypto::sha256::sha256;

/// Memoisation key for chain-validation results.
///
/// Two granularities share this one type so every cache in the workspace
/// keys verification work the same way:
///
/// * [`ChainKey::exact`] fingerprints a *presented chain* — leaf plus
///   intermediates, order-sensitive, byte-exact. Two requests carrying the
///   same certificates produce the same key, so a verification memo keyed
///   on it may replay the earlier outcome without re-running signatures.
/// * [`ChainKey::issuer_class`] collapses all leaves that share an issuer
///   and presented-chain length into one key — the Notary validation
///   shortcut: every leaf of one CA anchors identically, so one
///   verification answers for the whole class.
///
/// The two constructors are domain-separated; an exact key never collides
/// with an issuer-class key.
///
/// Keys are totally ordered (byte-lexicographic on the digest), so maps
/// keyed on `ChainKey` — the disparity engine's per-chain verdict
/// vectors in particular — can be sorted into one canonical order that
/// is stable across runs, platforms, and exec-pool widths.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChainKey([u8; 32]);

impl ChainKey {
    /// Byte-exact fingerprint of a presented chain (leaf first).
    pub fn exact<'a, I>(certs: I) -> ChainKey
    where
        I: IntoIterator<Item = &'a Certificate>,
    {
        let mut data = Vec::with_capacity(16 + 32 * 4);
        data.extend_from_slice(b"chain-key/exact\0");
        for cert in certs {
            data.extend_from_slice(&cert.fingerprint_sha256());
        }
        ChainKey(sha256(&data))
    }

    /// Issuer-class fingerprint: one key per (leaf issuer, presented-chain
    /// length) equivalence class.
    pub fn issuer_class(leaf: &Certificate, presented_len: usize) -> ChainKey {
        let mut data = Vec::with_capacity(64);
        data.extend_from_slice(b"chain-key/issuer\0");
        data.extend_from_slice(leaf.issuer.to_string().as_bytes());
        data.push(0);
        data.extend_from_slice(&(presented_len as u64).to_be_bytes());
        ChainKey(sha256(&data))
    }

    /// The raw 32-byte digest.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase-hex rendering (stable across runs — suitable for logs
    /// and wire stats).
    pub fn to_hex(&self) -> String {
        tangled_crypto::sha256::hex(&self.0)
    }
}

impl std::fmt::Debug for ChainKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ChainKey({})", &self.to_hex()[..16])
    }
}

/// Why chain building failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// No path from the leaf to any trust anchor exists.
    NoPathToTrustAnchor,
    /// A certificate along the only candidate path failed validation.
    CertCheck(CertCheckError),
    /// A signature along the path failed to verify.
    BadSignature,
    /// The path exceeded the maximum permitted length.
    PathTooLong,
    /// A certificate on the path carries a platform-blacklisted key
    /// (Android 4.4's fraudulent-certificate protection, §2).
    Blacklisted,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::NoPathToTrustAnchor => write!(f, "no path to a trust anchor"),
            ChainError::CertCheck(e) => write!(f, "certificate check failed: {e}"),
            ChainError::BadSignature => write!(f, "signature verification failed on path"),
            ChainError::PathTooLong => write!(f, "path exceeds maximum depth"),
            ChainError::Blacklisted => {
                write!(f, "path contains a platform-blacklisted key")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// Options controlling path validation.
#[derive(Debug, Clone, Copy)]
pub struct ChainOptions {
    /// Verification time (validity windows are checked against this).
    pub at: Time,
    /// Maximum number of certificates in a path, including leaf and root.
    pub max_depth: usize,
    /// When false, expiry of the *trust anchor itself* is ignored — this is
    /// what Android does in practice (the expired Firmaprofesional root in
    /// AOSP §2 still anchors chains); when true the anchor's window is
    /// enforced too.
    pub check_anchor_expiry: bool,
}

impl ChainOptions {
    /// Defaults used across the workspace: depth ≤ 8, anchor expiry not
    /// enforced (Android semantics).
    pub fn at(at: Time) -> Self {
        ChainOptions {
            at,
            max_depth: 8,
            check_anchor_expiry: false,
        }
    }
}

/// A certificate path that is non-empty *by construction*: the leaf is a
/// dedicated field, not element zero of a vector, so `last()`/`leaf()`
/// are total functions and no "chains are non-empty" invariant has to be
/// asserted at runtime.
#[derive(Debug, Clone)]
pub struct ChainPath {
    head: Arc<Certificate>,
    tail: Vec<Arc<Certificate>>,
}

impl ChainPath {
    /// A path holding just the leaf.
    pub fn new(leaf: Arc<Certificate>) -> ChainPath {
        ChainPath {
            head: leaf,
            tail: Vec::new(),
        }
    }

    /// The leaf the path starts from.
    pub fn leaf(&self) -> &Arc<Certificate> {
        &self.head
    }

    /// The certificate furthest from the leaf. Total — there is always at
    /// least the leaf.
    pub fn last(&self) -> &Arc<Certificate> {
        self.tail.last().unwrap_or(&self.head)
    }

    /// Extend the path away from the leaf.
    pub fn push(&mut self, cert: Arc<Certificate>) {
        self.tail.push(cert);
    }

    /// Retract the most recent extension. The leaf itself cannot be
    /// popped: a path never becomes empty.
    pub fn pop(&mut self) -> Option<Arc<Certificate>> {
        self.tail.pop()
    }

    /// Number of certificates on the path (≥ 1).
    pub fn len(&self) -> usize {
        1 + self.tail.len()
    }

    /// Paths are never empty; provided for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterate leaf first.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Certificate>> {
        std::iter::once(&self.head).chain(self.tail.iter())
    }

    /// Indexed access (0 = leaf).
    pub fn get(&self, index: usize) -> Option<&Arc<Certificate>> {
        if index == 0 {
            Some(&self.head)
        } else {
            self.tail.get(index - 1)
        }
    }
}

impl std::ops::Index<usize> for ChainPath {
    type Output = Arc<Certificate>;

    fn index(&self, index: usize) -> &Arc<Certificate> {
        self.get(index).expect("chain path index out of bounds")
    }
}

/// A successfully validated chain, leaf first, trust anchor last.
#[derive(Debug, Clone)]
pub struct VerifiedChain {
    /// Path from leaf (index 0) to the trust anchor (last).
    pub path: ChainPath,
}

impl VerifiedChain {
    /// The trust anchor this chain terminates in.
    pub fn anchor(&self) -> &Certificate {
        self.path.last()
    }

    /// Number of certificates in the chain.
    pub fn len(&self) -> usize {
        self.path.len()
    }

    /// Chains are never empty; provided for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// A chain builder holding trust anchors and an intermediate pool.
#[derive(Debug, Clone, Default)]
pub struct ChainVerifier {
    anchors_by_subject: HashMap<String, Vec<Arc<Certificate>>>,
    intermediates_by_subject: HashMap<String, Vec<Arc<Certificate>>>,
    blacklisted_keys: std::collections::HashSet<Vec<u8>>,
    n_anchors: usize,
    n_intermediates: usize,
}

impl ChainVerifier {
    /// An empty verifier (no trust anchors — everything fails).
    pub fn new() -> Self {
        ChainVerifier::default()
    }

    /// Add a trust anchor (root-store member).
    pub fn add_anchor(&mut self, cert: Arc<Certificate>) {
        self.anchors_by_subject
            .entry(cert.subject.to_string())
            .or_default()
            .push(cert);
        self.n_anchors += 1;
    }

    /// Add a candidate intermediate certificate.
    pub fn add_intermediate(&mut self, cert: Arc<Certificate>) {
        self.intermediates_by_subject
            .entry(cert.subject.to_string())
            .or_default()
            .push(cert);
        self.n_intermediates += 1;
    }

    /// Blacklist a public key by its modulus bytes — the platform-level
    /// protection Android 4.4 introduced against known-fraudulent
    /// certificates (§2 of the paper). Any certificate carrying the key is
    /// rejected wherever it appears in a path, even when a store anchor
    /// would otherwise trust it.
    pub fn blacklist_key(&mut self, key: &tangled_crypto::rsa::RsaPublicKey) {
        self.blacklisted_keys.insert(key.modulus.to_be_bytes());
    }

    /// Number of blacklisted keys.
    pub fn blacklist_len(&self) -> usize {
        self.blacklisted_keys.len()
    }

    fn is_blacklisted(&self, cert: &Certificate) -> bool {
        !self.blacklisted_keys.is_empty()
            && self
                .blacklisted_keys
                .contains(&cert.public_key.modulus.to_be_bytes())
    }

    /// Number of trust anchors installed.
    pub fn anchor_count(&self) -> usize {
        self.n_anchors
    }

    /// Number of intermediates in the pool.
    pub fn intermediate_count(&self) -> usize {
        self.n_intermediates
    }

    /// Build and verify a chain from `leaf` to any trust anchor.
    ///
    /// Depth-first search over issuer candidates; the first fully valid
    /// path wins. The returned error is the most specific failure seen
    /// (a signature/validity failure beats [`ChainError::NoPathToTrustAnchor`]).
    pub fn verify(
        &self,
        leaf: &Arc<Certificate>,
        opts: ChainOptions,
    ) -> Result<VerifiedChain, ChainError> {
        check_cert(leaf, opts.at, CertRole::Leaf).map_err(ChainError::CertCheck)?;
        if self.is_blacklisted(leaf) {
            return Err(ChainError::Blacklisted);
        }
        let mut best_err = ChainError::NoPathToTrustAnchor;
        let mut path = ChainPath::new(Arc::clone(leaf));
        if let Some(chain) = self.search(&mut path, opts, &mut best_err) {
            Ok(chain)
        } else {
            Err(best_err)
        }
    }

    fn search(
        &self,
        path: &mut ChainPath,
        opts: ChainOptions,
        best_err: &mut ChainError,
    ) -> Option<VerifiedChain> {
        let current = Arc::clone(path.last());
        if path.len() >= opts.max_depth {
            *best_err = ChainError::PathTooLong;
            return None;
        }
        let issuer_subject = current.issuer.to_string();
        // CA certs between a candidate issuer and the leaf = number of
        // non-leaf certs already on the path.
        let ca_below = (path.len() - 1) as u32;

        // Try anchors first: shortest chains win and anchors terminate.
        for anchor in self
            .anchors_by_subject
            .get(&issuer_subject)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
        {
            if self.is_blacklisted(anchor) {
                *best_err = ChainError::Blacklisted;
                continue;
            }
            // Self-signed leaf that IS an anchor: accept [leaf] if identical.
            if current.verify_issued_by(anchor).is_err() {
                *best_err = ChainError::BadSignature;
                continue;
            }
            if opts.check_anchor_expiry {
                if let Err(e) = check_cert(anchor, opts.at, CertRole::Leaf) {
                    *best_err = ChainError::CertCheck(e);
                    continue;
                }
            }
            // Anchors are trusted as CAs by configuration; pathLen still
            // applies when the anchor carries basicConstraints.
            if let Some(bc) = anchor.basic_constraints() {
                if let Some(max) = bc.path_len {
                    if ca_below > max {
                        *best_err = ChainError::CertCheck(CertCheckError::PathLenExceeded);
                        continue;
                    }
                }
            }
            let mut full = path.clone();
            full.push(Arc::clone(anchor));
            return Some(VerifiedChain { path: full });
        }

        // Then intermediates.
        if let Some(candidates) = self.intermediates_by_subject.get(&issuer_subject) {
            for cand in candidates {
                // Avoid loops: an intermediate may appear once per path.
                if path.iter().any(|c| Arc::ptr_eq(c, cand) || **c == **cand) {
                    continue;
                }
                if self.is_blacklisted(cand) {
                    *best_err = ChainError::Blacklisted;
                    continue;
                }
                if let Err(e) = check_cert(cand, opts.at, CertRole::Issuer { ca_certs_below: ca_below }) {
                    *best_err = ChainError::CertCheck(e);
                    continue;
                }
                if current.verify_issued_by(cand).is_err() {
                    *best_err = ChainError::BadSignature;
                    continue;
                }
                path.push(Arc::clone(cand));
                if let Some(found) = self.search(path, opts, best_err) {
                    return Some(found);
                }
                path.pop();
            }
        }
        None
    }

    /// Naive quadratic chain builder retained for the ablation benchmark:
    /// scans every anchor and intermediate at each step instead of using
    /// the subject index. Semantics match [`ChainVerifier::verify`].
    pub fn verify_naive(
        &self,
        leaf: &Arc<Certificate>,
        opts: ChainOptions,
    ) -> Result<VerifiedChain, ChainError> {
        check_cert(leaf, opts.at, CertRole::Leaf).map_err(ChainError::CertCheck)?;
        let anchors: Vec<&Arc<Certificate>> =
            self.anchors_by_subject.values().flatten().collect();
        let intermediates: Vec<&Arc<Certificate>> =
            self.intermediates_by_subject.values().flatten().collect();

        fn go(
            path: &mut ChainPath,
            anchors: &[&Arc<Certificate>],
            intermediates: &[&Arc<Certificate>],
            opts: ChainOptions,
        ) -> Option<VerifiedChain> {
            let current = Arc::clone(path.last());
            if path.len() >= opts.max_depth {
                return None;
            }
            let ca_below = (path.len() - 1) as u32;
            for anchor in anchors {
                if current.issuer != anchor.subject {
                    continue;
                }
                if current.verify_issued_by(anchor).is_err() {
                    continue;
                }
                if opts.check_anchor_expiry
                    && check_cert(anchor, opts.at, CertRole::Leaf).is_err()
                {
                    continue;
                }
                let mut full = path.clone();
                full.push(Arc::clone(anchor));
                return Some(VerifiedChain { path: full });
            }
            for cand in intermediates {
                if current.issuer != cand.subject {
                    continue;
                }
                if path.iter().any(|c| **c == ***cand) {
                    continue;
                }
                if check_cert(cand, opts.at, CertRole::Issuer { ca_certs_below: ca_below })
                    .is_err()
                    || current.verify_issued_by(cand).is_err()
                {
                    continue;
                }
                path.push(Arc::clone(cand));
                if let Some(found) = go(path, anchors, intermediates, opts) {
                    return Some(found);
                }
                path.pop();
            }
            None
        }

        let mut path = ChainPath::new(Arc::clone(leaf));
        go(&mut path, &anchors, &intermediates, opts).ok_or(ChainError::NoPathToTrustAnchor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CertificateBuilder;
    use crate::name::DistinguishedName;
    use tangled_crypto::rsa::RsaKeyPair;
    use tangled_crypto::{SplitMix64, Uint};

    struct Fixture {
        root: Arc<Certificate>,
        intermediate: Arc<Certificate>,
        leaf: Arc<Certificate>,
        other_root: Arc<Certificate>,
    }

    fn nb() -> Time {
        Time::date(2012, 1, 1).unwrap()
    }
    fn na() -> Time {
        Time::date(2020, 1, 1).unwrap()
    }
    fn at() -> Time {
        Time::date(2014, 2, 1).unwrap()
    }

    fn fixture() -> Fixture {
        let root_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(100)).unwrap();
        let int_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(101)).unwrap();
        let leaf_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(102)).unwrap();
        let other_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(103)).unwrap();

        let root = CertificateBuilder::self_signed_root(
            DistinguishedName::common_name("Fixture Root"),
            nb(),
            na(),
            &root_kp,
            Uint::one(),
        )
        .unwrap();
        let intermediate = CertificateBuilder::new(
            root.subject.clone(),
            DistinguishedName::common_name("Fixture Intermediate"),
            nb(),
            na(),
        )
        .serial(Uint::from_u64(2))
        .ca(Some(0))
        .sign(int_kp.public_key(), &root_kp)
        .unwrap();
        let leaf = CertificateBuilder::new(
            intermediate.subject.clone(),
            DistinguishedName::common_name("www.example.com"),
            nb(),
            na(),
        )
        .serial(Uint::from_u64(3))
        .tls_server(vec!["www.example.com".into()])
        .sign(leaf_kp.public_key(), &int_kp)
        .unwrap();
        let other_root = CertificateBuilder::self_signed_root(
            DistinguishedName::common_name("Unrelated Root"),
            nb(),
            na(),
            &other_kp,
            Uint::one(),
        )
        .unwrap();
        Fixture {
            root: Arc::new(root),
            intermediate: Arc::new(intermediate),
            leaf: Arc::new(leaf),
            other_root: Arc::new(other_root),
        }
    }

    fn verifier(f: &Fixture) -> ChainVerifier {
        let mut v = ChainVerifier::new();
        v.add_anchor(Arc::clone(&f.root));
        v.add_intermediate(Arc::clone(&f.intermediate));
        v
    }

    #[test]
    fn three_cert_chain_verifies() {
        let f = fixture();
        let v = verifier(&f);
        let chain = v.verify(&f.leaf, ChainOptions::at(at())).unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.anchor().subject, f.root.subject);
        assert_eq!(chain.path[0].subject, f.leaf.subject);
    }

    #[test]
    fn direct_anchor_chain() {
        let f = fixture();
        let v = verifier(&f);
        // The intermediate itself chains straight to the root.
        let chain = v.verify(&f.intermediate, ChainOptions::at(at())).unwrap();
        assert_eq!(chain.len(), 2);
    }

    #[test]
    fn untrusted_root_fails() {
        let f = fixture();
        let mut v = ChainVerifier::new();
        v.add_anchor(Arc::clone(&f.other_root));
        v.add_intermediate(Arc::clone(&f.intermediate));
        assert_eq!(
            v.verify(&f.leaf, ChainOptions::at(at())).unwrap_err(),
            ChainError::NoPathToTrustAnchor
        );
    }

    #[test]
    fn missing_intermediate_fails() {
        let f = fixture();
        let mut v = ChainVerifier::new();
        v.add_anchor(Arc::clone(&f.root));
        assert!(v.verify(&f.leaf, ChainOptions::at(at())).is_err());
    }

    #[test]
    fn expired_leaf_fails() {
        let f = fixture();
        let v = verifier(&f);
        let late = Time::date(2021, 1, 1).unwrap();
        assert_eq!(
            v.verify(&f.leaf, ChainOptions::at(late)).unwrap_err(),
            ChainError::CertCheck(CertCheckError::Expired)
        );
    }

    #[test]
    fn expired_intermediate_fails_with_specific_error() {
        let root_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(200)).unwrap();
        let int_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(201)).unwrap();
        let leaf_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(202)).unwrap();
        let root = Arc::new(
            CertificateBuilder::self_signed_root(
                DistinguishedName::common_name("R"),
                nb(),
                na(),
                &root_kp,
                Uint::one(),
            )
            .unwrap(),
        );
        // Intermediate already expired at verification time.
        let inter = Arc::new(
            CertificateBuilder::new(
                root.subject.clone(),
                DistinguishedName::common_name("I"),
                nb(),
                Time::date(2013, 1, 1).unwrap(),
            )
            .ca(None)
            .sign(int_kp.public_key(), &root_kp)
            .unwrap(),
        );
        let leaf = Arc::new(
            CertificateBuilder::new(
                inter.subject.clone(),
                DistinguishedName::common_name("L"),
                nb(),
                na(),
            )
            .tls_server(vec!["l".into()])
            .sign(leaf_kp.public_key(), &int_kp)
            .unwrap(),
        );
        let mut v = ChainVerifier::new();
        v.add_anchor(root);
        v.add_intermediate(inter);
        assert_eq!(
            v.verify(&leaf, ChainOptions::at(at())).unwrap_err(),
            ChainError::CertCheck(CertCheckError::Expired)
        );
    }

    #[test]
    fn expired_anchor_android_vs_strict() {
        // Android semantics: expired trust anchors still anchor chains.
        let root_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(210)).unwrap();
        let leaf_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(211)).unwrap();
        let root = Arc::new(
            CertificateBuilder::self_signed_root(
                DistinguishedName::common_name("Firmaprofesional-like"),
                Time::date(2001, 1, 1).unwrap(),
                Time::date(2013, 10, 24).unwrap(),
                &root_kp,
                Uint::one(),
            )
            .unwrap(),
        );
        let leaf = Arc::new(
            CertificateBuilder::new(
                root.subject.clone(),
                DistinguishedName::common_name("child"),
                nb(),
                na(),
            )
            .tls_server(vec!["child".into()])
            .sign(leaf_kp.public_key(), &root_kp)
            .unwrap(),
        );
        let mut v = ChainVerifier::new();
        v.add_anchor(root);

        let android = ChainOptions::at(at());
        assert!(v.verify(&leaf, android).is_ok());

        let strict = ChainOptions {
            check_anchor_expiry: true,
            ..android
        };
        assert!(v.verify(&leaf, strict).is_err());
    }

    #[test]
    fn path_len_zero_blocks_sub_ca() {
        // Root → intermediate(pathLen=0) → sub-CA → leaf must fail.
        let root_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(220)).unwrap();
        let int_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(221)).unwrap();
        let sub_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(222)).unwrap();
        let leaf_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(223)).unwrap();
        let root = Arc::new(
            CertificateBuilder::self_signed_root(
                DistinguishedName::common_name("R0"),
                nb(),
                na(),
                &root_kp,
                Uint::one(),
            )
            .unwrap(),
        );
        let inter = Arc::new(
            CertificateBuilder::new(root.subject.clone(), DistinguishedName::common_name("I0"), nb(), na())
                .ca(Some(0))
                .sign(int_kp.public_key(), &root_kp)
                .unwrap(),
        );
        let sub = Arc::new(
            CertificateBuilder::new(inter.subject.clone(), DistinguishedName::common_name("S0"), nb(), na())
                .ca(None)
                .sign(sub_kp.public_key(), &int_kp)
                .unwrap(),
        );
        let leaf = Arc::new(
            CertificateBuilder::new(sub.subject.clone(), DistinguishedName::common_name("L0"), nb(), na())
                .tls_server(vec!["l0".into()])
                .sign(leaf_kp.public_key(), &sub_kp)
                .unwrap(),
        );
        let mut v = ChainVerifier::new();
        v.add_anchor(root);
        v.add_intermediate(inter);
        v.add_intermediate(sub);
        let err = v.verify(&leaf, ChainOptions::at(at())).unwrap_err();
        assert_eq!(err, ChainError::CertCheck(CertCheckError::PathLenExceeded));
    }

    #[test]
    fn issuer_cycle_terminates() {
        // Two CAs that cross-sign each other but never reach an anchor.
        let a_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(230)).unwrap();
        let b_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(231)).unwrap();
        let a_by_b = Arc::new(
            CertificateBuilder::new(
                DistinguishedName::common_name("B"),
                DistinguishedName::common_name("A"),
                nb(),
                na(),
            )
            .ca(None)
            .sign(a_kp.public_key(), &b_kp)
            .unwrap(),
        );
        let b_by_a = Arc::new(
            CertificateBuilder::new(
                DistinguishedName::common_name("A"),
                DistinguishedName::common_name("B"),
                nb(),
                na(),
            )
            .ca(None)
            .sign(b_kp.public_key(), &a_kp)
            .unwrap(),
        );
        let leaf_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(232)).unwrap();
        let leaf = Arc::new(
            CertificateBuilder::new(
                DistinguishedName::common_name("A"),
                DistinguishedName::common_name("leaf"),
                nb(),
                na(),
            )
            .tls_server(vec!["leaf".into()])
            .sign(leaf_kp.public_key(), &a_kp)
            .unwrap(),
        );
        let mut v = ChainVerifier::new();
        v.add_intermediate(a_by_b);
        v.add_intermediate(b_by_a);
        // Must terminate (loop detection) with a failure, not hang.
        assert!(v.verify(&leaf, ChainOptions::at(at())).is_err());
    }

    #[test]
    fn naive_agrees_with_indexed() {
        let f = fixture();
        let v = verifier(&f);
        let opts = ChainOptions::at(at());
        let fast = v.verify(&f.leaf, opts).unwrap();
        let slow = v.verify_naive(&f.leaf, opts).unwrap();
        assert_eq!(fast.len(), slow.len());
        assert_eq!(fast.anchor().subject, slow.anchor().subject);
        assert!(v.verify_naive(&f.other_root, opts).is_err());
    }

    #[test]
    fn blacklisted_leaf_key_rejected() {
        let f = fixture();
        let mut v = verifier(&f);
        // Before blacklisting: verifies.
        assert!(v.verify(&f.leaf, ChainOptions::at(at())).is_ok());
        v.blacklist_key(&f.leaf.public_key);
        assert_eq!(v.blacklist_len(), 1);
        assert_eq!(
            v.verify(&f.leaf, ChainOptions::at(at())).unwrap_err(),
            ChainError::Blacklisted
        );
    }

    #[test]
    fn blacklisted_intermediate_breaks_path() {
        let f = fixture();
        let mut v = verifier(&f);
        v.blacklist_key(&f.intermediate.public_key);
        let err = v.verify(&f.leaf, ChainOptions::at(at())).unwrap_err();
        assert_eq!(err, ChainError::Blacklisted);
        // The intermediate itself (as leaf) is also rejected.
        assert_eq!(
            v.verify(&f.intermediate, ChainOptions::at(at())).unwrap_err(),
            ChainError::Blacklisted
        );
    }

    #[test]
    fn blacklisted_anchor_rejected_even_if_installed() {
        // The Android 4.4 scenario (§2): a fraudulent CA is in the store
        // (e.g. injected by a root app) but its key is platform-blacklisted
        // — chains through it must fail anyway.
        let rogue_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(240)).unwrap();
        let leaf_kp = RsaKeyPair::generate(512, &mut SplitMix64::new(241)).unwrap();
        let rogue = Arc::new(
            CertificateBuilder::self_signed_root(
                DistinguishedName::common_name("Fraudulent Google CA"),
                nb(),
                na(),
                &rogue_kp,
                Uint::one(),
            )
            .unwrap(),
        );
        let forged = Arc::new(
            CertificateBuilder::new(
                rogue.subject.clone(),
                DistinguishedName::common_name("www.google.com"),
                nb(),
                na(),
            )
            .tls_server(vec!["www.google.com".into()])
            .sign(leaf_kp.public_key(), &rogue_kp)
            .unwrap(),
        );
        let mut v = ChainVerifier::new();
        v.add_anchor(Arc::clone(&rogue));
        // Without the blacklist the forged chain anchors.
        assert!(v.verify(&forged, ChainOptions::at(at())).is_ok());
        // With it, rejected.
        v.blacklist_key(&rogue.public_key);
        assert_eq!(
            v.verify(&forged, ChainOptions::at(at())).unwrap_err(),
            ChainError::Blacklisted
        );
    }

    #[test]
    fn chain_path_is_never_empty() {
        let f = fixture();
        let mut p = ChainPath::new(Arc::clone(&f.leaf));
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
        assert!(Arc::ptr_eq(p.last(), &f.leaf));
        assert!(p.pop().is_none(), "the leaf must not be poppable");
        p.push(Arc::clone(&f.intermediate));
        p.push(Arc::clone(&f.root));
        assert_eq!(p.len(), 3);
        assert!(Arc::ptr_eq(p.last(), &f.root));
        assert!(Arc::ptr_eq(&p[0], &f.leaf));
        assert!(Arc::ptr_eq(&p[2], &f.root));
        assert!(p.get(3).is_none());
        let subjects: Vec<_> = p.iter().map(|c| c.subject.to_string()).collect();
        assert_eq!(subjects.len(), 3);
        assert!(subjects[0].contains("www.example.com"));
        assert!(p.pop().is_some());
        assert!(p.pop().is_some());
        assert!(p.pop().is_none());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn chain_key_distinguishes_chains_and_constructors() {
        let f = fixture();
        let full = [&*f.leaf, &*f.intermediate];
        let k1 = ChainKey::exact(full);
        let k2 = ChainKey::exact(full);
        assert_eq!(k1, k2, "same chain, same key");
        assert_ne!(
            k1,
            ChainKey::exact([&*f.leaf]),
            "dropping the intermediate changes the key"
        );
        assert_ne!(
            k1,
            ChainKey::exact([&*f.intermediate, &*f.leaf]),
            "order matters"
        );
        // Domain separation between the two constructors.
        assert_ne!(k1, ChainKey::issuer_class(&f.leaf, 2));
        // Issuer-class keys collapse same-issuer leaves…
        assert_eq!(
            ChainKey::issuer_class(&f.leaf, 2),
            ChainKey::issuer_class(&f.leaf, 2)
        );
        // …but separate by presented length and by issuer.
        assert_ne!(
            ChainKey::issuer_class(&f.leaf, 2),
            ChainKey::issuer_class(&f.leaf, 3)
        );
        assert_ne!(
            ChainKey::issuer_class(&f.leaf, 2),
            ChainKey::issuer_class(&f.intermediate, 2)
        );
        assert_eq!(k1.to_hex().len(), 64);
        assert_eq!(format!("{k1:?}").len(), "ChainKey(".len() + 16 + 1);
    }

    #[test]
    fn max_depth_enforced() {
        let f = fixture();
        let v = verifier(&f);
        let opts = ChainOptions {
            max_depth: 2, // leaf + 1 more — the 3-cert chain can't fit
            ..ChainOptions::at(at())
        };
        let err = v.verify(&f.leaf, opts).unwrap_err();
        assert_eq!(err, ChainError::PathTooLong);
    }
}
