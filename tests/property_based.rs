//! Property-based tests (proptest) over the workspace's core data
//! structures and invariants.

use proptest::prelude::*;
use tangled_mass::asn1::{DerReader, DerWriter, Oid, Time};
use tangled_mass::crypto::modular::{lcm, mod_inv, mod_mul, mod_pow};
use tangled_mass::crypto::Uint;
use tangled_mass::notary::coverage::{dead_fraction, ecdf, progressive_coverage, roots_needed_for};
use tangled_mass::pki::diff::{apply, diff, diff_sorted_merge};
use tangled_mass::pki::factory::CaFactory;
use tangled_mass::pki::store::RootStore;
use tangled_mass::pki::trust::AnchorSource;
use tangled_mass::x509::{Certificate, DistinguishedName};

// ---------------------------------------------------------------------------
// Big integers: ring axioms and codec round trips.
// ---------------------------------------------------------------------------

fn arb_uint() -> impl Strategy<Value = Uint> {
    proptest::collection::vec(any::<u8>(), 0..48).prop_map(|b| Uint::from_be_bytes(&b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn uint_add_commutes(a in arb_uint(), b in arb_uint()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn uint_mul_distributes(a in arb_uint(), b in arb_uint(), c in arb_uint()) {
        let left = a.mul(&b.add(&c));
        let right = a.mul(&b).add(&a.mul(&c));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn uint_div_rem_invariant(a in arb_uint(), b in arb_uint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b).unwrap();
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn uint_bytes_round_trip(a in arb_uint()) {
        prop_assert_eq!(Uint::from_be_bytes(&a.to_be_bytes()), a.clone());
        prop_assert_eq!(Uint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn uint_shift_round_trip(a in arb_uint(), n in 0usize..130) {
        prop_assert_eq!(a.shl(n).shr(n), a);
    }

    #[test]
    fn gcd_divides_both(a in arb_uint(), b in arb_uint()) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = a.gcd(&b);
        prop_assert!(!g.is_zero());
        prop_assert!(a.rem(&g).unwrap().is_zero());
        prop_assert!(b.rem(&g).unwrap().is_zero());
        // lcm * gcd == a * b
        prop_assert_eq!(lcm(&a, &b).mul(&g), a.mul(&b));
    }

    #[test]
    fn montgomery_agrees_with_fermat(a in 2u64..1_000_000) {
        // a^(p-1) ≡ 1 (mod p) for prime p not dividing a.
        let p = Uint::from_u64(1_000_000_007);
        let a = Uint::from_u64(a);
        let r = mod_pow(&a, &Uint::from_u64(1_000_000_006), &p).unwrap();
        prop_assert!(r.is_one());
    }

    #[test]
    fn mod_inv_round_trip(a in arb_uint()) {
        let m = Uint::from_hex("ffffffffffffffffffffffffffffff61").unwrap(); // prime
        let a = a.rem(&m).unwrap();
        prop_assume!(!a.is_zero());
        let inv = mod_inv(&a, &m).unwrap();
        prop_assert!(mod_mul(&a, &inv, &m).unwrap().is_one());
    }
}

// ---------------------------------------------------------------------------
// DER: encode → decode identity for arbitrary payloads.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn der_octet_string_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..600)) {
        let mut w = DerWriter::new();
        w.octet_string(&payload);
        let bytes = w.into_bytes();
        let mut r = DerReader::new(&bytes);
        prop_assert_eq!(r.read_octet_string().unwrap(), &payload[..]);
        r.finish().unwrap();
    }

    #[test]
    fn der_integer_round_trip(magnitude in proptest::collection::vec(any::<u8>(), 0..40)) {
        let mut w = DerWriter::new();
        w.integer_bytes(&magnitude);
        let bytes = w.into_bytes();
        let mut r = DerReader::new(&bytes);
        let got = r.read_integer_bytes().unwrap();
        // Compare as numbers: leading zeros are stripped by the codec.
        prop_assert_eq!(Uint::from_be_bytes(&got), Uint::from_be_bytes(&magnitude));
    }

    #[test]
    fn der_utf8_round_trip(s in "[a-zA-Z0-9 .,=@-]{0,80}") {
        let mut w = DerWriter::new();
        w.utf8_string(&s);
        let bytes = w.into_bytes();
        let mut r = DerReader::new(&bytes);
        prop_assert_eq!(r.read_string().unwrap(), s);
    }

    #[test]
    fn oid_round_trip(arcs in proptest::collection::vec(0u64..100_000, 1..8)) {
        let mut full = vec![1u64, 3];
        full.extend(arcs);
        let oid = Oid::new(&full);
        prop_assert_eq!(Oid::from_der_content(&oid.to_der_content()).unwrap(), oid);
    }

    #[test]
    fn time_round_trip(secs in 0i64..4_000_000_000) {
        let t = Time::from_unix(secs);
        prop_assert_eq!(t.to_unix(), secs);
        if (1950..2050).contains(&t.year) {
            let s = t.to_utc_time_string();
            prop_assert_eq!(Time::parse_utc_time(s.as_bytes()).unwrap(), t);
        }
        let s = t.to_generalized_time_string();
        prop_assert_eq!(Time::parse_generalized_time(s.as_bytes()).unwrap(), t);
    }

    #[test]
    fn dn_round_trip(cn in "[a-zA-Z0-9 ]{1,40}", org in "[a-zA-Z0-9 ]{0,20}") {
        let mut b = DistinguishedName::builder().common_name(&cn);
        if !org.is_empty() {
            b = b.organization(&org);
        }
        let dn = b.build();
        prop_assert_eq!(DistinguishedName::from_der(&dn.to_der()).unwrap(), dn);
    }

    #[test]
    fn corrupted_der_never_panics(mut der in proptest::collection::vec(any::<u8>(), 1..200)) {
        // Whatever the bytes, parsing must fail cleanly or succeed — never panic.
        let _ = Certificate::parse(&der);
        der.insert(0, 0x30);
        let _ = Certificate::parse(&der);
    }
}

// ---------------------------------------------------------------------------
// Store diff algebra.
// ---------------------------------------------------------------------------

fn store_from_indices(name: &str, idx: &[u8]) -> RootStore {
    let mut f = CaFactory::with_seed(0xD1FF, 512);
    let mut s = RootStore::new(name);
    for &i in idx {
        // Small universe (16 CAs) so stores overlap frequently.
        s.add_cert(f.root(&format!("Prop CA {}", i % 16)), AnchorSource::Aosp);
    }
    s
}

proptest! {
    // Store construction costs keygen; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn diff_algebra(a in proptest::collection::vec(any::<u8>(), 0..12),
                    b in proptest::collection::vec(any::<u8>(), 0..12)) {
        let sa = store_from_indices("a", &a);
        let sb = store_from_indices("b", &b);

        // diff(x, x) is the identity.
        prop_assert!(diff(&sa, &sa).is_identity());

        let d = diff(&sa, &sb);
        // Partition: every identity of b is either common or added.
        prop_assert_eq!(d.common.len() + d.added.len(), sb.len());
        // Every identity of a is either common or removed.
        prop_assert_eq!(d.common.len() + d.removed.len(), sa.len());

        // apply(a, diff(a,b)) reconstructs b's identity set.
        let rebuilt = apply(&sa, &d, &sb);
        prop_assert!(diff(&sb, &rebuilt).is_identity());

        // Hash-join and sorted-merge agree as sets.
        let m = diff_sorted_merge(&sa, &sb);
        let set = |v: &[tangled_mass::x509::CertIdentity]| {
            v.iter().cloned().collect::<std::collections::BTreeSet<_>>()
        };
        prop_assert_eq!(set(&d.added), set(&m.added));
        prop_assert_eq!(set(&d.removed), set(&m.removed));
        prop_assert_eq!(set(&d.common), set(&m.common));

        // Antisymmetry: swapping stores swaps added/removed.
        let rev = diff(&sb, &sa);
        prop_assert_eq!(set(&rev.added), set(&d.removed));
        prop_assert_eq!(set(&rev.removed), set(&d.added));
    }
}

// ---------------------------------------------------------------------------
// Coverage math.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ecdf_invariants(counts in proptest::collection::vec(0u32..10_000, 0..200)) {
        let points = ecdf(&counts);
        for w in points.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
        if !counts.is_empty() {
            prop_assert!((points.last().unwrap().1 - 1.0).abs() < 1e-9);
            // The y-offset at zero equals the dead fraction.
            let zero_frac = points.first().filter(|p| p.0 == 0).map_or(0.0, |p| p.1);
            prop_assert!((zero_frac - dead_fraction(&counts)).abs() < 1e-9);
        }
    }

    #[test]
    fn progressive_coverage_invariants(counts in proptest::collection::vec(0u32..10_000, 0..200)) {
        let curve = progressive_coverage(&counts);
        prop_assert_eq!(curve.len(), counts.len());
        // Non-decreasing with diminishing increments.
        let mut last_gain = u64::MAX;
        let mut prev = 0u64;
        for &(_, c) in &curve {
            let gain = c - prev;
            prop_assert!(gain <= last_gain);
            last_gain = gain;
            prev = c;
        }
        // Total equals the plain sum.
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        prop_assert_eq!(curve.last().map_or(0, |&(_, c)| c), total);
    }

    #[test]
    fn roots_needed_is_monotone(counts in proptest::collection::vec(0u32..1_000, 1..100)) {
        let n50 = roots_needed_for(&counts, 0.5);
        let n90 = roots_needed_for(&counts, 0.9);
        let n100 = roots_needed_for(&counts, 1.0);
        prop_assert!(n50 <= n90 && n90 <= n100);
        prop_assert!(n100 <= counts.len());
    }
}
