//! The trustd swap journal: an append-only write-ahead log.
//!
//! File layout: the 8-byte magic `TNGLJRN1`, then zero or more frames.
//! Each frame is
//!
//! ```text
//! | body len u32 LE | fnv1a(body) u64 LE | body (JSON)  |
//! ```
//!
//! where the body is one serialized [`SwapRecord`] — the profile name,
//! the epoch the swap produced, and the full [`StoreSnapshot`] that was
//! installed. [`Journal::append`] writes the frame and then `fsync`s
//! before returning, and trustd only publishes the new store *after*
//! append returns — write-ahead order, so every epoch the live index
//! ever served is on disk.
//!
//! Recovery distinguishes two kinds of damage:
//!
//! * a **torn tail** — the file ends mid-frame (a crash between write
//!   and sync, or a frame header that is garbage/implausibly long). The
//!   incomplete bytes are truncated away and replay proceeds with every
//!   frame before them; [`Recovery`] reports what was dropped.
//! * a **corrupt interior** — a complete frame whose body fails its
//!   checksum or does not parse. That is not a crash artifact, it is
//!   data loss; recovery hard-fails with a classified [`SnapError`].

use crate::SnapError;
use std::io::{Read, Write};
use tangled_crypto::hash::fnv1a;
use tangled_pki::store::StoreSnapshot;

/// The journal file magic.
pub const JOURNAL_MAGIC: [u8; 8] = *b"TNGLJRN1";

/// Frame header size: body length (u32) plus checksum (u64).
const FRAME_HEADER: usize = 12;

/// Upper bound on a frame body. Real swap bodies are a few KiB of JSON;
/// a declared length beyond this is a garbage header, treated as a torn
/// tail rather than an allocation request.
pub const MAX_FRAME: u32 = 1 << 20;

/// One journalled swap: what was installed and the epoch it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapRecord {
    /// The profile the store was installed under.
    pub profile: String,
    /// The index epoch the install produced.
    pub epoch: u64,
    /// The full store content that was installed.
    pub store: StoreSnapshot,
}

impl serde_json::Serialize for SwapRecord {
    fn to_json_value(&self) -> serde_json::Value {
        serde_json::json!({
            "profile": self.profile.as_str(),
            "epoch": self.epoch,
            "store": self.store.to_json_value(),
        })
    }
}

impl serde_json::Deserialize for SwapRecord {
    fn from_json_value(value: &serde_json::Value) -> Result<Self, serde_json::Error> {
        let profile = value["profile"]
            .as_str()
            .ok_or_else(|| serde_json::Error::msg("missing string field `profile`"))?
            .to_owned();
        let epoch = value["epoch"]
            .as_u64()
            .ok_or_else(|| serde_json::Error::msg("missing integer field `epoch`"))?;
        let store = StoreSnapshot::from_json_value(&value["store"])?;
        Ok(SwapRecord {
            profile,
            epoch,
            store,
        })
    }
}

/// What [`Journal::open`] had to do to make the file consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Recovery {
    /// A torn final frame was truncated away.
    pub truncated: bool,
    /// Bytes dropped by the truncation.
    pub dropped_bytes: u64,
}

/// An open journal, positioned for appends.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
    /// Current file length, tracked across appends so the compaction
    /// threshold check never stats the file.
    len: u64,
}

/// Fill `buf` from `r`, tolerating EOF: returns how many bytes were
/// actually read (less than `buf.len()` only at end of file).
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

impl Journal {
    /// Open (creating if absent) a journal, returning the replayable
    /// records and what recovery did.
    ///
    /// A new or empty file gets the magic written and synced. An
    /// existing file is scanned frame by frame *through a bounded
    /// buffer* — peak memory is one frame ([`MAX_FRAME`]), not the
    /// journal size, so recovery cost does not scale with how much
    /// history the file holds. A torn tail is truncated (crash
    /// recovery); a complete-but-corrupt frame is a hard error. A file
    /// shorter than the magic whose bytes are a prefix of it is the
    /// torn tail of an *empty* journal (a crash mid-initial-magic
    /// write): it is truncated, the magic is rewritten, and the repair
    /// is reported through [`Recovery`] — not [`SnapError::BadJournalMagic`].
    pub fn open(path: &str) -> Result<(Journal, Vec<SwapRecord>, Recovery), SnapError> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let file_len = file.metadata()?.len();

        let mut magic = [0u8; 8];
        let got = read_full(&mut file, &mut magic)?;
        if got < JOURNAL_MAGIC.len() {
            if magic[..got] != JOURNAL_MAGIC[..got] {
                return Err(SnapError::BadJournalMagic);
            }
            // Empty file, or a crash mid-initial-magic-write: truncate
            // the partial magic away and write a whole one.
            file.set_len(0)?;
            file.write_all(&JOURNAL_MAGIC)?;
            file.sync_data()?;
            let recovery = Recovery {
                truncated: got > 0,
                dropped_bytes: got as u64,
            };
            if recovery.truncated {
                tangled_obs::registry::add("journal.torn_tails", 1);
            }
            let len = JOURNAL_MAGIC.len() as u64;
            return Ok((Journal { file, len }, Vec::new(), recovery));
        }
        if magic != JOURNAL_MAGIC {
            return Err(SnapError::BadJournalMagic);
        }

        let mut records = Vec::new();
        let mut pos = JOURNAL_MAGIC.len() as u64;
        let mut recovery = Recovery::default();
        let mut header = [0u8; FRAME_HEADER];
        let mut body = Vec::new();
        loop {
            let got = read_full(&mut file, &mut header)?;
            if got == 0 {
                break;
            }
            let torn = 'frame: {
                if got < FRAME_HEADER {
                    break 'frame true;
                }
                let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
                if len > MAX_FRAME {
                    // Garbage header: an implausible length is a crash
                    // artifact, not an allocation request.
                    break 'frame true;
                }
                let checksum = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
                body.resize(len as usize, 0);
                if read_full(&mut file, &mut body)? < len as usize {
                    break 'frame true;
                }
                records.push(parse_body(checksum, &body)?);
                pos += (FRAME_HEADER + len as usize) as u64;
                false
            };
            if torn {
                // A crash mid-append: drop the incomplete tail and keep
                // everything before it.
                recovery.truncated = true;
                recovery.dropped_bytes = file_len - pos;
                file.set_len(pos)?;
                file.sync_data()?;
                tangled_obs::registry::add("journal.torn_tails", 1);
                break;
            }
        }
        Ok((Journal { file, len: pos }, records, recovery))
    }

    /// Frame, append and fsync one swap. Returns only after the bytes
    /// are durable — callers install the store *after* this returns.
    pub fn append(&mut self, record: &SwapRecord) -> Result<(), SnapError> {
        let body = serde_json::to_string(record)
            .expect("swap record serializes")
            .into_bytes();
        let mut frame = Vec::with_capacity(FRAME_HEADER + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.len += frame.len() as u64;
        tangled_obs::registry::add("journal.appends", 1);
        Ok(())
    }

    /// Current journal size in bytes (magic plus every appended frame).
    pub fn size(&self) -> u64 {
        self.len
    }

    /// Truncate the journal back to an empty file (magic only), after
    /// its contents were folded into a durable checkpoint. The caller
    /// must have made the checkpoint durable *first* — this is the
    /// discard half of compaction.
    pub fn reset(&mut self) -> Result<(), SnapError> {
        self.file.set_len(JOURNAL_MAGIC.len() as u64)?;
        self.file.sync_data()?;
        self.len = JOURNAL_MAGIC.len() as u64;
        Ok(())
    }
}

/// Check and parse one complete frame body.
fn parse_body(checksum: u64, body: &[u8]) -> Result<SwapRecord, SnapError> {
    if fnv1a(body) != checksum {
        return Err(SnapError::ChecksumMismatch {
            section: "journal",
        });
    }
    let text = std::str::from_utf8(body).map_err(|_| SnapError::Malformed {
        section: "journal",
        detail: "frame body is not utf-8",
    })?;
    serde_json::from_str(text).map_err(|_| SnapError::Malformed {
        section: "journal",
        detail: "frame body is not a swap record",
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangled_pki::factory::CaFactory;
    use tangled_pki::store::RootStore;
    use tangled_pki::trust::AnchorSource;

    fn sample_record(epoch: u64) -> SwapRecord {
        let mut f = CaFactory::new();
        let mut store = RootStore::new(&format!("journal test {epoch}"));
        store.add_cert(f.root(&format!("Journal CA {epoch}")), AnchorSource::User);
        SwapRecord {
            profile: "user".into(),
            epoch,
            store: store.snapshot(),
        }
    }

    /// A per-run unique scratch directory, removed on drop. Uniqueness
    /// comes from pid *and* a wall-clock nanosecond stamp: a bare
    /// `{tag}-{pid}` name under a shared dir survives the run and is
    /// replayed as stale journal state when the OS reuses the pid.
    struct TestDir(std::path::PathBuf);

    impl TestDir {
        fn new(tag: &str) -> TestDir {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .expect("clock after epoch")
                .as_nanos();
            let dir = std::env::temp_dir().join(format!(
                "tangled-journal-{tag}-{}-{nanos}",
                std::process::id()
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TestDir(dir)
        }

        fn path(&self, name: &str) -> String {
            self.0.join(name).to_string_lossy().into_owned()
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = TestDir::new("replay");
        let path = dir.path("replay.jrn");
        {
            let (mut j, records, rec) = Journal::open(&path).unwrap();
            assert!(records.is_empty());
            assert!(!rec.truncated);
            for epoch in 7..10 {
                j.append(&sample_record(epoch)).unwrap();
            }
        }
        let (_, records, rec) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert!(!rec.truncated);
        assert_eq!(
            records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(records[0].store.name, "journal test 7");
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_replay() {
        let dir = TestDir::new("torn");
        let path = dir.path("torn.jrn");
        {
            let (mut j, _, _) = Journal::open(&path).unwrap();
            j.append(&sample_record(7)).unwrap();
            j.append(&sample_record(8)).unwrap();
        }
        // Tear the final frame: chop bytes off the end of the file.
        let data = std::fs::read(&path).unwrap();
        let full = data.len();
        std::fs::write(&path, &data[..full - 20]).unwrap();

        let (_, records, rec) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 1, "only the intact frame survives");
        assert_eq!(records[0].epoch, 7);
        assert!(rec.truncated);
        assert!(rec.dropped_bytes > 0);
        // The truncation is durable: a second open sees a clean file.
        let (_, records, rec) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(!rec.truncated);
    }

    #[test]
    fn garbage_header_counts_as_torn() {
        let dir = TestDir::new("garbage-header");
        let path = dir.path("garbage.jrn");
        {
            let (mut j, _, _) = Journal::open(&path).unwrap();
            j.append(&sample_record(7)).unwrap();
        }
        // Append a frame header declaring an implausible length.
        let mut data = std::fs::read(&path).unwrap();
        let clean = data.len();
        data.extend_from_slice(&u32::MAX.to_le_bytes());
        data.extend_from_slice(&[0xAB; 30]);
        std::fs::write(&path, &data).unwrap();

        let (_, records, rec) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(rec.truncated);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean as u64);
    }

    #[test]
    fn interior_corruption_is_fatal_not_truncated() {
        let dir = TestDir::new("interior");
        let path = dir.path("interior.jrn");
        {
            let (mut j, _, _) = Journal::open(&path).unwrap();
            j.append(&sample_record(7)).unwrap();
            j.append(&sample_record(8)).unwrap();
        }
        // Flip a byte inside the *first* frame's body.
        let mut data = std::fs::read(&path).unwrap();
        data[8 + FRAME_HEADER + 5] ^= 0xff;
        std::fs::write(&path, &data).unwrap();

        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.label(), "checksum-mismatch");
    }

    #[test]
    fn wrong_magic_is_classified() {
        let dir = TestDir::new("magic");
        let path = dir.path("magic.jrn");
        std::fs::write(&path, b"NOTAJRNL extra bytes").unwrap();
        assert_eq!(
            Journal::open(&path).unwrap_err(),
            SnapError::BadJournalMagic
        );
    }

    /// Regression: a file of 1–7 bytes that are a prefix of the magic is
    /// the torn tail of an empty journal (a crash mid-initial-magic
    /// write), not a foreign file — recovery truncates, rewrites the
    /// magic, reports the repair, and the journal is fully usable.
    #[test]
    fn short_magic_prefix_recovers_as_torn_empty_journal() {
        for cut in 1..JOURNAL_MAGIC.len() {
            let dir = TestDir::new("short-magic");
            let path = dir.path("short.jrn");
            std::fs::write(&path, &JOURNAL_MAGIC[..cut]).unwrap();

            let (mut j, records, rec) = Journal::open(&path)
                .unwrap_or_else(|e| panic!("{cut}-byte magic prefix must recover: {e}"));
            assert!(records.is_empty());
            assert!(rec.truncated, "repair is reported at cut {cut}");
            assert_eq!(rec.dropped_bytes, cut as u64);
            assert_eq!(j.size(), JOURNAL_MAGIC.len() as u64);

            // The repaired journal takes appends and replays them.
            j.append(&sample_record(7)).unwrap();
            drop(j);
            let (_, records, rec) = Journal::open(&path).unwrap();
            assert_eq!(records.len(), 1);
            assert!(!rec.truncated);
        }
    }

    /// A short file that is *not* a magic prefix is a foreign file, not
    /// a crash artifact: still classified, never silently rewritten.
    #[test]
    fn short_non_prefix_is_still_bad_magic() {
        let dir = TestDir::new("short-foreign");
        let path = dir.path("foreign.jrn");
        std::fs::write(&path, b"TNX").unwrap();
        assert_eq!(
            Journal::open(&path).unwrap_err(),
            SnapError::BadJournalMagic
        );
        // And the foreign bytes are left untouched.
        assert_eq!(std::fs::read(&path).unwrap(), b"TNX");
    }

    #[test]
    fn reset_truncates_to_magic_and_appends_continue() {
        let dir = TestDir::new("reset");
        let path = dir.path("reset.jrn");
        let (mut j, _, _) = Journal::open(&path).unwrap();
        j.append(&sample_record(7)).unwrap();
        j.append(&sample_record(8)).unwrap();
        assert!(j.size() > JOURNAL_MAGIC.len() as u64);

        j.reset().unwrap();
        assert_eq!(j.size(), JOURNAL_MAGIC.len() as u64);
        j.append(&sample_record(9)).unwrap();
        drop(j);

        let (_, records, rec) = Journal::open(&path).unwrap();
        assert!(!rec.truncated);
        assert_eq!(
            records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![9],
            "only post-reset appends survive"
        );
    }
}
