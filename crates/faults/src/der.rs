//! Byte-level DER surgery.
//!
//! These helpers damage a certificate's DER encoding in ways that are
//! *guaranteed detectable* by the staged ingest checks: truncation and
//! tag mangling always break parsing; TBS bit flips either break parsing
//! or invalidate the signature (the flipped bit is inside the signed
//! region); signature corruption leaves parsing intact and fails
//! verification; validity inversion swaps the two `Time` TLVs in place so
//! the certificate still parses but carries `notBefore > notAfter`.
//!
//! The walker understands exactly the DER subset [`tangled_x509`] emits:
//! low-tag-number form, definite lengths. Anything else makes the
//! structure-dependent injectors decline (return `None`/`false`) rather
//! than guess.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Parse one TLV header at `at`: `(header_len, content_len)`.
fn header(der: &[u8], at: usize) -> Option<(usize, usize)> {
    let tag = *der.get(at)?;
    if tag & 0x1F == 0x1F {
        return None; // high tag numbers never occur in our encodings
    }
    let first = *der.get(at + 1)?;
    if first < 0x80 {
        return Some((2, first as usize));
    }
    let n = (first & 0x7F) as usize;
    if n == 0 || n > 4 {
        return None; // indefinite or absurd
    }
    let mut len = 0usize;
    for i in 0..n {
        len = (len << 8) | *der.get(at + 2 + i)? as usize;
    }
    Some((2 + n, len))
}

/// Full byte range of the TLV starting at `at`.
fn tlv_range(der: &[u8], at: usize) -> Option<Range<usize>> {
    let (h, c) = header(der, at)?;
    let end = at.checked_add(h)?.checked_add(c)?;
    if end > der.len() {
        return None;
    }
    Some(at..end)
}

/// Byte range of the `tbsCertificate` TLV (the signed region).
pub fn tbs_range(der: &[u8]) -> Option<Range<usize>> {
    if der.first() != Some(&0x30) {
        return None;
    }
    let (outer_header, _) = header(der, 0)?;
    let tbs = tlv_range(der, outer_header)?;
    if der.get(tbs.start) != Some(&0x30) {
        return None;
    }
    Some(tbs)
}

/// Byte ranges of the two `Time` TLVs inside the validity SEQUENCE.
pub fn validity_ranges(der: &[u8]) -> Option<(Range<usize>, Range<usize>)> {
    let tbs = tbs_range(der)?;
    let (tbs_header, _) = header(der, tbs.start)?;
    let mut at = tbs.start + tbs_header;

    // Optional [0] EXPLICIT version.
    if der.get(at) == Some(&0xA0) {
        at = tlv_range(der, at)?.end;
    }
    // serialNumber INTEGER, signature AlgorithmIdentifier, issuer Name.
    for expected in [0x02u8, 0x30, 0x30] {
        if der.get(at) != Some(&expected) {
            return None;
        }
        at = tlv_range(der, at)?.end;
    }
    // validity SEQUENCE { notBefore, notAfter }.
    if der.get(at) != Some(&0x30) {
        return None;
    }
    let validity = tlv_range(der, at)?;
    let (vh, _) = header(der, validity.start)?;
    let not_before = tlv_range(der, validity.start + vh)?;
    let not_after = tlv_range(der, not_before.end)?;
    if not_after.end > validity.end {
        return None;
    }
    Some((not_before, not_after))
}

/// Truncate to a random strict, non-empty prefix. Always breaks parsing:
/// the outer SEQUENCE's declared length exceeds the remaining input.
pub fn truncate(der: &mut Vec<u8>, rng: &mut StdRng) {
    if der.len() > 1 {
        let keep = rng.gen_range(1..der.len());
        der.truncate(keep);
    } else {
        der.clear();
    }
}

/// Smash a structural tag byte — the outer SEQUENCE or the TBS SEQUENCE,
/// chosen at random. Either way the certificate no longer parses.
pub fn mangle_tag(der: &mut [u8], rng: &mut StdRng) {
    let at = if rng.gen_bool(0.5) {
        0
    } else {
        tbs_range(der).map(|r| r.start).unwrap_or(0)
    };
    if let Some(b) = der.get_mut(at) {
        // SEQUENCE (0x30) → SET (0x31): still a valid TLV, wrong type.
        *b = if *b == 0x30 { 0x31 } else { 0x30 };
    }
}

/// Flip one random bit inside the signed TBS region. The result either
/// fails to parse or parses to a certificate whose signature no longer
/// verifies (the signature covers every TBS byte). Returns `false` when
/// the TBS region cannot be located.
pub fn flip_tbs_bit(der: &mut [u8], rng: &mut StdRng) -> bool {
    let Some(range) = tbs_range(der) else {
        return false;
    };
    let pos = rng.gen_range(range.start..range.end);
    let bit = rng.gen_range(0u32..8);
    der[pos] ^= 1 << bit;
    true
}

/// Corrupt a byte near the end of the encoding — inside the signature
/// BIT STRING content. Parsing survives; verification cannot.
pub fn break_signature(der: &mut [u8], rng: &mut StdRng) {
    if der.is_empty() {
        return;
    }
    let tail = der.len().min(8);
    let pos = der.len() - 1 - rng.gen_range(0..tail);
    der[pos] ^= 0xFF;
}

/// Swap the notBefore/notAfter TLVs in place. For any certificate with a
/// proper (non-degenerate) window this yields `notBefore > notAfter`
/// while remaining structurally valid DER. Returns `false` when the
/// validity SEQUENCE cannot be located.
pub fn invert_validity(der: &mut Vec<u8>) -> bool {
    let Some((nb, na)) = validity_ranges(der) else {
        return false;
    };
    let mut swapped = Vec::with_capacity(der.len());
    swapped.extend_from_slice(&der[..nb.start]);
    swapped.extend_from_slice(&der[na.clone()]);
    swapped.extend_from_slice(&der[nb.end..na.start]);
    swapped.extend_from_slice(&der[nb]);
    swapped.extend_from_slice(&der[na.end..]);
    *der = swapped;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tangled_pki::factory::CaFactory;
    use tangled_x509::Certificate;

    fn sample() -> Vec<u8> {
        let mut f = CaFactory::new();
        f.root("DER Surgery CA").to_der().to_vec()
    }

    #[test]
    fn ranges_locate_real_structures() {
        let der = sample();
        let tbs = tbs_range(&der).unwrap();
        assert_eq!(tbs.start, header(&der, 0).unwrap().0);
        let cert = Certificate::parse(&der).unwrap();
        assert_eq!(&der[tbs.clone()], cert.tbs_bytes());
        let (nb, na) = validity_ranges(&der).unwrap();
        assert!(tbs.contains(&nb.start) && tbs.contains(&na.start));
        assert!(nb.end <= na.start);
    }

    #[test]
    fn truncation_always_breaks_parse() {
        let der = sample();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let mut cut = der.clone();
            truncate(&mut cut, &mut rng);
            assert!(cut.len() < der.len());
            assert!(Certificate::parse(&cut).is_err());
        }
    }

    #[test]
    fn tag_mangle_always_breaks_parse() {
        let der = sample();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let mut bad = der.clone();
            mangle_tag(&mut bad, &mut rng);
            assert!(Certificate::parse(&bad).is_err());
        }
    }

    #[test]
    fn tbs_flip_breaks_parse_or_signature() {
        let der = sample();
        let cert = Certificate::parse(&der).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..80 {
            let mut bad = der.clone();
            assert!(flip_tbs_bit(&mut bad, &mut rng));
            match Certificate::parse(&bad) {
                Err(_) => {}
                Ok(parsed) => {
                    // Self-signed sample: verify against the (possibly
                    // also corrupted) embedded key must fail.
                    assert!(
                        parsed.verify_issued_by(&cert).is_err(),
                        "flipped TBS still verified"
                    );
                }
            }
        }
    }

    #[test]
    fn signature_break_parses_but_never_verifies() {
        let der = sample();
        let cert = Certificate::parse(&der).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let mut bad = der.clone();
            break_signature(&mut bad, &mut rng);
            let parsed = Certificate::parse(&bad).unwrap();
            assert!(parsed.verify_issued_by(&cert).is_err());
        }
    }

    #[test]
    fn validity_inversion_swaps_window() {
        let mut der = sample();
        let before = Certificate::parse(&der).unwrap();
        assert!(invert_validity(&mut der));
        let after = Certificate::parse(&der).unwrap();
        assert_eq!(after.not_before, before.not_after);
        assert_eq!(after.not_after, before.not_before);
        assert!(after.not_before > after.not_after);
    }

    #[test]
    fn surgery_declines_on_garbage() {
        assert!(tbs_range(&[]).is_none());
        assert!(tbs_range(&[0x04, 0x01, 0xFF]).is_none());
        assert!(validity_ranges(&[0x30, 0x00]).is_none());
        let mut junk = vec![0xAAu8; 6];
        assert!(!invert_validity(&mut junk));
        assert!(!flip_tbs_bit(&mut junk, &mut StdRng::seed_from_u64(0)));
    }
}
