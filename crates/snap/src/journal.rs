//! The trustd swap journal: an append-only write-ahead log.
//!
//! File layout: the 8-byte magic `TNGLJRN1`, then zero or more frames.
//! Each frame is
//!
//! ```text
//! | body len u32 LE | fnv1a(body) u64 LE | body (JSON)  |
//! ```
//!
//! where the body is one serialized [`SwapRecord`] — the profile name,
//! the epoch the swap produced, and the full [`StoreSnapshot`] that was
//! installed. [`Journal::append`] writes the frame and then `fsync`s
//! before returning, and trustd only publishes the new store *after*
//! append returns — write-ahead order, so every epoch the live index
//! ever served is on disk.
//!
//! Recovery distinguishes two kinds of damage:
//!
//! * a **torn tail** — the file ends mid-frame (a crash between write
//!   and sync, or a frame header that is garbage/implausibly long). The
//!   incomplete bytes are truncated away and replay proceeds with every
//!   frame before them; [`Recovery`] reports what was dropped.
//! * a **corrupt interior** — a complete frame whose body fails its
//!   checksum or does not parse. That is not a crash artifact, it is
//!   data loss; recovery hard-fails with a classified [`SnapError`].

use crate::SnapError;
use std::io::{Read, Write};
use tangled_crypto::hash::fnv1a;
use tangled_pki::store::StoreSnapshot;

/// The journal file magic.
pub const JOURNAL_MAGIC: [u8; 8] = *b"TNGLJRN1";

/// Frame header size: body length (u32) plus checksum (u64).
const FRAME_HEADER: usize = 12;

/// Upper bound on a frame body. Real swap bodies are a few KiB of JSON;
/// a declared length beyond this is a garbage header, treated as a torn
/// tail rather than an allocation request.
pub const MAX_FRAME: u32 = 1 << 20;

/// One journalled swap: what was installed and the epoch it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapRecord {
    /// The profile the store was installed under.
    pub profile: String,
    /// The index epoch the install produced.
    pub epoch: u64,
    /// The full store content that was installed.
    pub store: StoreSnapshot,
}

impl serde_json::Serialize for SwapRecord {
    fn to_json_value(&self) -> serde_json::Value {
        serde_json::json!({
            "profile": self.profile.as_str(),
            "epoch": self.epoch,
            "store": self.store.to_json_value(),
        })
    }
}

impl serde_json::Deserialize for SwapRecord {
    fn from_json_value(value: &serde_json::Value) -> Result<Self, serde_json::Error> {
        let profile = value["profile"]
            .as_str()
            .ok_or_else(|| serde_json::Error::msg("missing string field `profile`"))?
            .to_owned();
        let epoch = value["epoch"]
            .as_u64()
            .ok_or_else(|| serde_json::Error::msg("missing integer field `epoch`"))?;
        let store = StoreSnapshot::from_json_value(&value["store"])?;
        Ok(SwapRecord {
            profile,
            epoch,
            store,
        })
    }
}

/// What [`Journal::open`] had to do to make the file consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Recovery {
    /// A torn final frame was truncated away.
    pub truncated: bool,
    /// Bytes dropped by the truncation.
    pub dropped_bytes: u64,
}

/// An open journal, positioned for appends.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// Open (creating if absent) a journal, returning the replayable
    /// records and what recovery did.
    ///
    /// A new or empty file gets the magic written and synced. An
    /// existing file is scanned frame by frame: a torn tail is truncated
    /// (crash recovery), a complete-but-corrupt frame is a hard error.
    pub fn open(path: &str) -> Result<(Journal, Vec<SwapRecord>, Recovery), SnapError> {
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;

        if data.is_empty() {
            file.write_all(&JOURNAL_MAGIC)?;
            file.sync_data()?;
            return Ok((Journal { file }, Vec::new(), Recovery::default()));
        }
        if data.len() < JOURNAL_MAGIC.len() || data[..8] != JOURNAL_MAGIC {
            return Err(SnapError::BadJournalMagic);
        }

        let mut records = Vec::new();
        let mut pos = JOURNAL_MAGIC.len();
        let mut recovery = Recovery::default();
        while pos < data.len() {
            let remaining = data.len() - pos;
            let frame = parse_frame(&data[pos..]);
            match frame {
                Ok((record, consumed)) => {
                    records.push(record);
                    pos += consumed;
                }
                Err(FrameError::Torn) => {
                    // A crash mid-append: drop the incomplete tail and
                    // keep everything before it.
                    recovery.truncated = true;
                    recovery.dropped_bytes = remaining as u64;
                    file.set_len(pos as u64)?;
                    file.sync_data()?;
                    tangled_obs::registry::add("journal.torn_tails", 1);
                    break;
                }
                Err(FrameError::Fatal(e)) => return Err(e),
            }
        }
        Ok((Journal { file }, records, recovery))
    }

    /// Frame, append and fsync one swap. Returns only after the bytes
    /// are durable — callers install the store *after* this returns.
    pub fn append(&mut self, record: &SwapRecord) -> Result<(), SnapError> {
        let body = serde_json::to_string(record)
            .expect("swap record serializes")
            .into_bytes();
        let mut frame = Vec::with_capacity(FRAME_HEADER + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        tangled_obs::registry::add("journal.appends", 1);
        Ok(())
    }
}

enum FrameError {
    /// The bytes end mid-frame (or the header is garbage): crash tail.
    Torn,
    /// A complete frame is corrupt: unrecoverable.
    Fatal(SnapError),
}

/// Parse one frame from the front of `buf`, returning the record and
/// the bytes consumed.
fn parse_frame(buf: &[u8]) -> Result<(SwapRecord, usize), FrameError> {
    if buf.len() < FRAME_HEADER {
        return Err(FrameError::Torn);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(FrameError::Torn);
    }
    let checksum = u64::from_le_bytes(buf[4..12].try_into().expect("8 bytes"));
    let end = FRAME_HEADER + len as usize;
    if buf.len() < end {
        return Err(FrameError::Torn);
    }
    let body = &buf[FRAME_HEADER..end];
    if fnv1a(body) != checksum {
        return Err(FrameError::Fatal(SnapError::ChecksumMismatch {
            section: "journal",
        }));
    }
    let text = std::str::from_utf8(body).map_err(|_| {
        FrameError::Fatal(SnapError::Malformed {
            section: "journal",
            detail: "frame body is not utf-8",
        })
    })?;
    let record: SwapRecord = serde_json::from_str(text).map_err(|_| {
        FrameError::Fatal(SnapError::Malformed {
            section: "journal",
            detail: "frame body is not a swap record",
        })
    })?;
    Ok((record, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangled_pki::factory::CaFactory;
    use tangled_pki::store::RootStore;
    use tangled_pki::trust::AnchorSource;

    fn sample_record(epoch: u64) -> SwapRecord {
        let mut f = CaFactory::new();
        let mut store = RootStore::new(&format!("journal test {epoch}"));
        store.add_cert(f.root(&format!("Journal CA {epoch}")), AnchorSource::User);
        SwapRecord {
            profile: "user".into(),
            epoch,
            store: store.snapshot(),
        }
    }

    fn temp_path(tag: &str) -> String {
        let dir = std::env::temp_dir().join("tangled-snap-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}-{}.jrn", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let path = temp_path("replay");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, records, rec) = Journal::open(&path).unwrap();
            assert!(records.is_empty());
            assert!(!rec.truncated);
            for epoch in 7..10 {
                j.append(&sample_record(epoch)).unwrap();
            }
        }
        let (_, records, rec) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 3);
        assert!(!rec.truncated);
        assert_eq!(
            records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![7, 8, 9]
        );
        assert_eq!(records[0].store.name, "journal test 7");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_survivors_replay() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _, _) = Journal::open(&path).unwrap();
            j.append(&sample_record(7)).unwrap();
            j.append(&sample_record(8)).unwrap();
        }
        // Tear the final frame: chop bytes off the end of the file.
        let data = std::fs::read(&path).unwrap();
        let full = data.len();
        std::fs::write(&path, &data[..full - 20]).unwrap();

        let (_, records, rec) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 1, "only the intact frame survives");
        assert_eq!(records[0].epoch, 7);
        assert!(rec.truncated);
        assert!(rec.dropped_bytes > 0);
        // The truncation is durable: a second open sees a clean file.
        let (_, records, rec) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(!rec.truncated);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn garbage_header_counts_as_torn() {
        let path = temp_path("garbage-header");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _, _) = Journal::open(&path).unwrap();
            j.append(&sample_record(7)).unwrap();
        }
        // Append a frame header declaring an implausible length.
        let mut data = std::fs::read(&path).unwrap();
        let clean = data.len();
        data.extend_from_slice(&u32::MAX.to_le_bytes());
        data.extend_from_slice(&[0xAB; 30]);
        std::fs::write(&path, &data).unwrap();

        let (_, records, rec) = Journal::open(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert!(rec.truncated);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean as u64);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn interior_corruption_is_fatal_not_truncated() {
        let path = temp_path("interior");
        let _ = std::fs::remove_file(&path);
        {
            let (mut j, _, _) = Journal::open(&path).unwrap();
            j.append(&sample_record(7)).unwrap();
            j.append(&sample_record(8)).unwrap();
        }
        // Flip a byte inside the *first* frame's body.
        let mut data = std::fs::read(&path).unwrap();
        data[8 + FRAME_HEADER + 5] ^= 0xff;
        std::fs::write(&path, &data).unwrap();

        let err = Journal::open(&path).unwrap_err();
        assert_eq!(err.label(), "checksum-mismatch");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_magic_is_classified() {
        let path = temp_path("magic");
        std::fs::write(&path, b"NOTAJRNL extra bytes").unwrap();
        assert_eq!(
            Journal::open(&path).unwrap_err(),
            SnapError::BadJournalMagic
        );
        std::fs::remove_file(&path).unwrap();
    }
}
