//! A bounded LRU memo cache for verification verdicts.
//!
//! Hand-rolled intrusive doubly-linked list over a slot arena — no
//! external crate, O(1) get/insert/evict, and fully deterministic (the
//! eviction order is a pure function of the access sequence, which the
//! determinism tests rely on).

use std::collections::HashMap;
use std::hash::Hash;

/// One arena slot: the entry plus its list links.
struct Slot<K, V> {
    key: K,
    value: V,
    prev: Option<usize>,
    next: Option<usize>,
}

/// A bounded least-recently-used cache.
///
/// Capacity 0 disables the cache entirely: `insert` is a no-op and every
/// `get` is a miss — the configuration the uncached serving benchmark
/// runs under.
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: Option<usize>,
    tail: Option<usize>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<K: Clone + Eq + Hash, V: Clone> LruCache<K, V> {
    /// An empty cache bounded at `capacity` entries.
    pub fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: None,
            tail: None,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Look up `key`, promoting it to most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.hits += 1;
                self.detach(idx);
                self.attach_front(idx);
                Some(self.slots[idx].value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert (or refresh) an entry, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(idx) = self.map.get(&key).copied() {
            self.slots[idx].value = value;
            self.detach(idx);
            self.attach_front(idx);
            return;
        }
        if self.map.len() >= self.capacity {
            let victim = self.tail.expect("non-empty cache has a tail");
            self.detach(victim);
            let old = &self.slots[victim];
            self.map.remove(&old.key);
            self.free.push(victim);
            self.evictions += 1;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key: key.clone(),
                    value,
                    prev: None,
                    next: None,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: None,
                    next: None,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime eviction count.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Keys in most-recently-used-first order (test introspection).
    pub fn keys_mru(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.map.len());
        let mut cur = self.head;
        while let Some(idx) = cur {
            out.push(self.slots[idx].key.clone());
            cur = self.slots[idx].next;
        }
        out
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        match prev {
            Some(p) => self.slots[p].next = next,
            None if self.head == Some(idx) => self.head = next,
            None => {}
        }
        match next {
            Some(n) => self.slots[n].prev = prev,
            None if self.tail == Some(idx) => self.tail = prev,
            None => {}
        }
        self.slots[idx].prev = None;
        self.slots[idx].next = None;
    }

    fn attach_front(&mut self, idx: usize) {
        self.slots[idx].next = self.head;
        self.slots[idx].prev = None;
        if let Some(h) = self.head {
            self.slots[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_order_is_lru() {
        let mut c: LruCache<u32, &'static str> = LruCache::new(3);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c");
        assert_eq!(c.keys_mru(), vec![3, 2, 1]);
        // Touch 1 → it becomes MRU, 2 is now LRU.
        assert_eq!(c.get(&1), Some("a"));
        c.insert(4, "d");
        assert_eq!(c.get(&2), None, "2 was evicted");
        assert_eq!(c.len(), 3);
        assert_eq!(c.keys_mru(), vec![4, 1, 3]);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn refresh_promotes_without_eviction() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        c.insert(1, 11);
        assert_eq!(c.len(), 2);
        assert_eq!(c.keys_mru(), vec![1, 2]);
        assert_eq!(c.get(&1), Some(11));
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c: LruCache<u32, u32> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn hit_miss_counters_track_lookups() {
        let mut c: LruCache<u32, u32> = LruCache::new(2);
        c.insert(7, 70);
        assert_eq!(c.get(&7), Some(70));
        assert_eq!(c.get(&8), None);
        assert_eq!(c.get(&7), Some(70));
        assert_eq!((c.hits(), c.misses()), (2, 1));
    }

    #[test]
    fn single_entry_cache_cycles() {
        let mut c: LruCache<u32, u32> = LruCache::new(1);
        for i in 0..10 {
            c.insert(i, i * 10);
            assert_eq!(c.get(&i), Some(i * 10));
            assert_eq!(c.len(), 1);
        }
        assert_eq!(c.evictions(), 9);
    }
}
