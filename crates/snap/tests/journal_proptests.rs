//! Property tests for journal-frame recovery: arbitrary damage to a
//! journal file must never panic [`Journal::open`] — every outcome is
//! either a successful replay (possibly after torn-tail truncation) or
//! a *classified* [`SnapError`].

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use tangled_crypto::hash::fnv1a;
use tangled_pki::store::RootStore;
use tangled_snap::{Journal, SwapRecord};

/// A per-case unique scratch directory, removed on drop — including
/// when a `prop_assert!` fails (early return) or the case panics, so no
/// run ever leaks journal files into a shared directory. Uniqueness
/// comes from pid, a wall-clock nanosecond stamp, and a per-process
/// counter (cases within one run share the pid and can share a stamp).
struct CaseDir(std::path::PathBuf);

impl CaseDir {
    fn new(tag: &str) -> CaseDir {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos();
        let dir = std::env::temp_dir().join(format!(
            "tangled-journal-prop-{tag}-{}-{nanos}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("temp dir");
        CaseDir(dir)
    }

    fn path(&self, name: &str) -> String {
        self.0.join(name).to_string_lossy().into_owned()
    }
}

impl Drop for CaseDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A cheap record: empty store, so the frame is small and the proptest
/// loop stays fast.
fn record(epoch: u64) -> SwapRecord {
    SwapRecord {
        profile: "device".into(),
        epoch,
        store: RootStore::new("proptest store").snapshot(),
    }
}

/// Write a two-record journal and return its bytes.
fn journal_bytes(path: &str) -> Vec<u8> {
    let _ = std::fs::remove_file(path);
    let (mut journal, _, _) = Journal::open(path).expect("fresh journal");
    journal.append(&record(7)).expect("append 7");
    journal.append(&record(8)).expect("append 8");
    drop(journal);
    std::fs::read(path).expect("journal bytes")
}

/// Frame header layout constants, mirroring the journal format: 8-byte
/// magic, then per frame a u32 LE length and u64 LE checksum.
const MAGIC_LEN: usize = 8;
const FRAME_HEADER: usize = 12;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the file at *any* byte offset never panics: the result
    /// is a fresh journal (cut inside the magic), a classified magic
    /// error, or a replay of the surviving whole frames with the torn
    /// tail truncated away — and the truncation is durable, so a second
    /// open is clean.
    #[test]
    fn truncation_anywhere_is_recovered_or_classified(frac in any::<u16>()) {
        let dir = CaseDir::new("truncate");
        let path = dir.path("case.jrn");
        let data = journal_bytes(&path);
        let cut = frac as usize % (data.len() + 1);
        std::fs::write(&path, &data[..cut]).expect("truncate");

        match Journal::open(&path) {
            Ok((_, records, recovery)) => {
                prop_assert!(records.len() <= 2);
                for (i, r) in records.iter().enumerate() {
                    prop_assert_eq!(r.epoch, 7 + i as u64);
                }
                // A clean (non-truncating) open is only possible when the
                // cut landed exactly on a frame boundary or produced an
                // empty file that was re-initialised.
                if !recovery.truncated {
                    let frame1_len = u32::from_le_bytes(
                        data[MAGIC_LEN..MAGIC_LEN + 4].try_into().expect("4 bytes"),
                    ) as usize;
                    let boundary1 = MAGIC_LEN + FRAME_HEADER + frame1_len;
                    prop_assert!(
                        cut == 0 || cut == MAGIC_LEN || cut == boundary1 || cut == data.len(),
                        "clean open from a mid-frame cut at {}",
                        cut
                    );
                }
                let (_, again, recovery2) = Journal::open(&path).expect("second open");
                prop_assert_eq!(again.len(), records.len());
                prop_assert!(!recovery2.truncated, "truncation must be durable");
            }
            Err(e) => {
                // Only a cut inside the magic itself is unrecoverable.
                prop_assert!(cut > 0 && cut < MAGIC_LEN, "unexpected error at cut {}: {}", cut, e);
                prop_assert_eq!(e.label(), "bad-journal-magic");
            }
        }
    }

    /// Corrupting the first frame's length field never panics: either
    /// the declared length is implausible/overruns the file (torn tail,
    /// zero records survive), it accidentally matches the real length
    /// (clean replay), or the checksum is computed over the wrong span
    /// and fails as a classified error.
    #[test]
    fn length_field_corruption_is_classified(len in any::<u32>()) {
        let dir = CaseDir::new("length");
        let path = dir.path("case.jrn");
        let mut data = journal_bytes(&path);
        let original = u32::from_le_bytes(
            data[MAGIC_LEN..MAGIC_LEN + 4].try_into().expect("4 bytes"),
        );
        data[MAGIC_LEN..MAGIC_LEN + 4].copy_from_slice(&len.to_le_bytes());
        std::fs::write(&path, &data).expect("rewrite");

        match Journal::open(&path) {
            Ok((_, records, recovery)) => {
                if len == original {
                    prop_assert_eq!(records.len(), 2);
                    prop_assert!(!recovery.truncated);
                } else {
                    // The garbage header was treated as a torn tail at
                    // frame 0: nothing replays, the file is truncated
                    // back to the bare magic.
                    prop_assert_eq!(records.len(), 0);
                    prop_assert!(recovery.truncated);
                }
            }
            Err(e) => {
                // A plausible-but-wrong length makes the checksum read a
                // wrong span: complete-frame corruption, hard classified.
                prop_assert_ne!(len, original);
                prop_assert!(
                    e.label() == "checksum-mismatch" || e.label() == "malformed-record",
                    "unexpected label {}",
                    e.label()
                );
            }
        }
    }

    /// A frame whose checksum is *valid* but whose body is not a swap
    /// record (random bytes, checksummed correctly) is a classified
    /// malformed-record rejection — checksum validity must not be
    /// mistaken for semantic validity.
    #[test]
    fn checksum_valid_garbage_body_is_rejected(body in proptest::collection::vec(any::<u8>(), 0..48)) {
        let dir = CaseDir::new("garbage-body");
        let path = dir.path("case.jrn");
        let data = journal_bytes(&path);

        // Replace everything after the magic with one forged frame whose
        // checksum genuinely matches its garbage body.
        let mut forged = data[..MAGIC_LEN].to_vec();
        forged.extend_from_slice(&(body.len() as u32).to_le_bytes());
        forged.extend_from_slice(&fnv1a(&body).to_le_bytes());
        forged.extend_from_slice(&body);
        std::fs::write(&path, &forged).expect("forge");

        let err = Journal::open(&path).expect_err("garbage body must not replay");
        prop_assert_eq!(err.label(), "malformed-record");
    }

    /// Flipping any single byte of a complete frame body (checksum left
    /// alone) never panics and never silently replays: it is either the
    /// fatal checksum mismatch, or — when the flip lands in the length
    /// field or checksum and desyncs framing — a torn-tail recovery or
    /// another classified error.
    #[test]
    fn body_bit_flips_never_replay_silently(offset in any::<u16>(), bit in 0u8..8) {
        let dir = CaseDir::new("bitflip");
        let path = dir.path("case.jrn");
        let mut data = journal_bytes(&path);
        let span = data.len() - MAGIC_LEN;
        let target = MAGIC_LEN + (offset as usize % span);
        data[target] ^= 1 << bit;
        std::fs::write(&path, &data).expect("rewrite");

        match Journal::open(&path) {
            Ok((_, records, recovery)) => {
                // The flip must have been detected somewhere: either a
                // record was dropped via torn-tail truncation, or the
                // parse failed earlier. A full, clean 2-record replay of
                // damaged bytes would be silent corruption.
                prop_assert!(
                    records.len() < 2 || recovery.truncated,
                    "flipped byte {} replayed silently",
                    target
                );
                for (i, r) in records.iter().enumerate() {
                    prop_assert_eq!(r.epoch, 7 + i as u64);
                }
            }
            Err(e) => prop_assert!(!e.label().is_empty()),
        }
    }
}
