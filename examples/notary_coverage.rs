//! Notary coverage: which roots in a store actually validate traffic —
//! and which are dead weight you could disable (§5.3, and the Perl et al.
//! trimming the paper confirms).
//!
//! ```text
//! cargo run --release --example notary_coverage [scale]
//! ```

use tangled_mass::analysis::figures::figure3_render;
use tangled_mass::analysis::tables::{table3, table4};
use tangled_mass::notary::coverage::{progressive_coverage, roots_needed_for};
use tangled_mass::notary::ecosystem::EcosystemSpec;
use tangled_mass::notary::{Ecosystem, ValidationIndex};
use tangled_mass::pki::stores::ReferenceStore;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    eprintln!("generating certificate ecosystem at scale {scale}…");
    let eco = Ecosystem::generate(&EcosystemSpec::scaled(scale));
    eprintln!(
        "{} certificates ({} non-expired), validating…",
        eco.len(),
        eco.non_expired()
    );
    let idx = ValidationIndex::build(&eco);

    // The §4.2 "any port" service mix.
    print!("service mix:");
    for (svc, n) in eco.service_histogram() {
        print!("  {} {}", svc.label(), n);
    }
    println!("\n");

    println!("{}", table3(&idx).render());
    println!("{}", table4(&idx).render());
    println!("{}", figure3_render(&idx));

    // The trimming question: how few roots cover almost everything?
    let aosp44 = ReferenceStore::Aosp44.cached();
    let counts = idx.counts_for(aosp44.identities().iter());
    let total_cov = progressive_coverage(&counts)
        .last()
        .map(|&(_, c)| c)
        .unwrap_or(0);
    println!("AOSP 4.4 trimming analysis ({} anchors):", aosp44.len());
    for target in [0.50, 0.90, 0.99, 1.0] {
        let needed = roots_needed_for(&counts, target);
        println!(
            "  {:>4.0}% of validated traffic needs only {:>3} roots",
            target * 100.0,
            needed
        );
    }
    let dead = counts.iter().filter(|&&c| c == 0).count();
    println!(
        "  {} of {} anchors validate nothing at all ({} certs covered in total)",
        dead,
        counts.len(),
        total_cov
    );
    println!(
        "\n\"One could seemingly disable these certificates with little negative \
         effect on the user experience or TLS functionality.\" — §5.3"
    );
}
