//! Generator-based [`Strategy`] trait and combinators.
//!
//! Unlike upstream proptest there is no shrinking: a strategy is just a
//! deterministic value generator driven by the runner's RNG. That is the
//! subset this workspace's property tests rely on.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use rand::Rng;

/// The RNG handed to strategies by the test runner.
pub type TestRng = rand::rngs::StdRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy: 'static {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Build a recursive strategy: `f` receives a strategy for the inner
    /// levels and returns the composite level. `depth` bounds nesting;
    /// the size/branch hints are accepted for API compatibility.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        // Unroll the recursion bottom-up: the leaf strategy is level 0 and
        // each application of `f` adds one level of nesting.
        let mut strat = self.boxed();
        for _ in 0..depth {
            strat = f(strat).boxed();
        }
        strat
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        BoxedStrategy {
            generate: Arc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased, clonable strategy.
pub struct BoxedStrategy<V> {
    generate: Arc<dyn Fn(&mut TestRng) -> V>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Arc::clone(&self.generate),
        }
    }
}

impl<V: 'static> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.generate)(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + 'static>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized + 'static {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),+) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                use rand::RngCore;
                rng.next_u64() as $ty
            }
        }
    )+};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64, f64);

/// Uniform choice among weighted, type-erased arms (see `prop_oneof!`).
pub struct OneOf<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
}

impl<V> Clone for OneOf<V> {
    fn clone(&self) -> Self {
        OneOf {
            arms: self.arms.clone(),
        }
    }
}

impl<V: 'static> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u32 = self.arms.iter().map(|(w, _)| *w).sum();
        let mut pick = rng.gen_range(0..total);
        for (weight, strat) in &self.arms {
            if pick < *weight {
                return strat.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weights sum to total")
    }
}

/// Build a [`OneOf`] from weighted arms; used by the `prop_oneof!` macro.
pub fn one_of<V>(arms: Vec<(u32, BoxedStrategy<V>)>) -> OneOf<V> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { arms }
}

// `&'static str` acts as a character-class pattern strategy: the supported
// grammar is `[class]{n}` / `[class]{m,n}`, which covers every pattern in
// this workspace's tests.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (pool, min, max) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string pattern: {self:?}"));
        let len = if min == max {
            min
        } else {
            rng.gen_range(min..=max)
        };
        (0..len)
            .map(|_| pool[rng.gen_range(0..pool.len())])
            .collect()
    }
}

/// Parse `[class]{m}` / `[class]{m,n}` into (char pool, min len, max len).
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut pool = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` is a range unless the dash is first or last in the class.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
            if lo > hi {
                return None;
            }
            pool.extend((lo..=hi).filter_map(char::from_u32));
            i += 3;
        } else {
            pool.push(class[i]);
            i += 1;
        }
    }
    if pool.is_empty() {
        return None;
    }
    let counts = rest[close + 1..]
        .strip_prefix('{')?
        .strip_suffix('}')?
        .to_string();
    let (min, max) = match counts.split_once(',') {
        Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
        None => {
            let n = counts.trim().parse().ok()?;
            (n, n)
        }
    };
    (min <= max).then_some((pool, min, max))
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
