//! Degradation of Android `cacerts` directory images.
//!
//! The unit here is one [`CacertsFile`] — a PEM-armored certificate named
//! `<subject-hash>.<n>`, exactly what a rooted device's
//! `/system/etc/security/cacerts/` holds. Each injector maps onto a
//! distinct loader failure so quarantine reports attribute damage
//! precisely:
//!
//! * [`FaultKind::PemArmor`] mangles the BEGIN/END *label* while keeping
//!   the `-----BEGIN` prefix intact, so the loader still takes its PEM
//!   path and reports a missing header/footer rather than bad DER.
//! * [`FaultKind::Base64Corruption`] injects an illegal character or
//!   deletes one, breaking the alphabet or the padding arithmetic.
//! * [`FaultKind::DerTruncation`] removes one whole body line — the
//!   armor and Base64 stay valid, but the decoded DER is short.
//! * [`FaultKind::EmptyEntry`] empties the file.
//! * [`FaultKind::DuplicateEntry`] appends a verbatim copy under a fresh
//!   `.9<n>` collision counter.

use crate::{Corruptor, FaultKind, InjectedFault};
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;
use tangled_pki::cacerts::CacertsFile;

fn is_pem(bytes: &[u8]) -> bool {
    bytes.starts_with(b"-----BEGIN")
}

fn find(hay: &[u8], needle: &[u8]) -> Option<usize> {
    hay.windows(needle.len()).position(|w| w == needle)
}

/// Byte ranges (newline included) of the Base64 body lines: everything
/// strictly between the BEGIN line and the END line.
fn body_lines(bytes: &[u8]) -> Vec<Range<usize>> {
    let mut spans = Vec::new();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            spans.push(start..i + 1);
            start = i + 1;
        }
    }
    if start < bytes.len() {
        spans.push(start..bytes.len());
    }
    spans
        .into_iter()
        .filter(|s| !bytes[s.clone()].starts_with(b"-----"))
        .collect()
}

impl Corruptor for Vec<CacertsFile> {
    fn unit_count(&self) -> usize {
        self.len()
    }

    fn supported(&self, index: usize) -> Vec<FaultKind> {
        let file = &self[index];
        if file.der.is_empty() {
            return Vec::new();
        }
        let mut kinds = vec![FaultKind::EmptyEntry];
        if file.name.len() >= 10 {
            kinds.push(FaultKind::DuplicateEntry);
        }
        if is_pem(&file.der) {
            kinds.push(FaultKind::PemArmor);
            kinds.push(FaultKind::Base64Corruption);
            if body_lines(&file.der).len() >= 2 {
                kinds.push(FaultKind::DerTruncation);
            }
        }
        kinds
    }

    fn inject(&mut self, index: usize, kind: FaultKind, rng: &mut StdRng) -> Option<InjectedFault> {
        let target = self[index].name.clone();
        match kind {
            FaultKind::EmptyEntry => self[index].der.clear(),
            FaultKind::DuplicateEntry => {
                let copy = self[index].der.clone();
                let name = format!("{}.9{index}", &target[..8]);
                self.push(CacertsFile { name, der: copy });
            }
            FaultKind::PemArmor => {
                let der = &mut self[index].der;
                // Mangle the first label byte of the header or the footer;
                // the `-----BEGIN` prefix survives so the loader still
                // routes the file through its PEM decoder.
                let pos = if rng.gen_bool(0.5) {
                    find(der, b"-----BEGIN ")? + b"-----BEGIN ".len()
                } else {
                    find(der, b"-----END ")? + b"-----END ".len()
                };
                let b = der.get_mut(pos)?;
                *b = if *b == b'X' { b'Y' } else { b'X' };
            }
            FaultKind::Base64Corruption => {
                let der = &mut self[index].der;
                let body: Vec<usize> = body_lines(der)
                    .into_iter()
                    .flat_map(|s| s.clone().filter(|&i| der[i] != b'\n'))
                    .collect();
                if body.is_empty() {
                    return None;
                }
                let pos = body[rng.gen_range(0..body.len())];
                if rng.gen_bool(0.5) {
                    // Outside the alphabet and not whitespace.
                    der[pos] = b'!';
                } else {
                    // Deleting one character breaks the length-multiple-of-4
                    // padding invariant.
                    der.remove(pos);
                }
            }
            FaultKind::DerTruncation => {
                let der = &mut self[index].der;
                let lines = body_lines(der);
                if lines.len() < 2 {
                    return None;
                }
                // Drop one whole body line: Base64 stays well-formed (every
                // line is a multiple of four characters) but the decoded
                // DER is missing 48 bytes and cannot parse.
                let victim = lines[rng.gen_range(0..lines.len())].clone();
                der.drain(victim);
            }
            _ => return None,
        }
        Some(InjectedFault { kind, target })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;
    use tangled_pki::cacerts::{from_cacerts, to_cacerts_pem};
    use tangled_pki::factory::CaFactory;
    use tangled_pki::store::RootStore;
    use tangled_pki::trust::AnchorSource;

    fn sample() -> Vec<CacertsFile> {
        let mut f = CaFactory::new();
        let mut store = RootStore::new("sample");
        for cn in ["Alpha Fault CA", "Beta Fault CA", "Gamma Fault CA", "Delta Fault CA"] {
            store.add_cert(f.root(cn), AnchorSource::Aosp);
        }
        to_cacerts_pem(&store)
    }

    fn degrade_all(kind: FaultKind, seed: u64) -> (Vec<CacertsFile>, Vec<InjectedFault>) {
        let mut files = sample();
        let ledger = FaultPlan::new(seed)
            .with_rate(1.0)
            .only(&[kind])
            .degrade(&mut files, 0);
        (files, ledger)
    }

    #[test]
    fn armor_damage_keeps_pem_routing_but_breaks_decode() {
        let (files, ledger) = degrade_all(FaultKind::PemArmor, 1);
        assert_eq!(ledger.len(), 4);
        for f in &files {
            assert!(f.der.starts_with(b"-----BEGIN"), "PEM routing lost");
            let text = std::str::from_utf8(&f.der).unwrap();
            assert!(tangled_x509::pem::decode_certificate(text).is_err());
        }
        assert!(from_cacerts("x", &files, AnchorSource::Aosp).is_err());
    }

    #[test]
    fn base64_damage_breaks_decode() {
        let (files, ledger) = degrade_all(FaultKind::Base64Corruption, 2);
        assert_eq!(ledger.len(), 4);
        for f in &files {
            let text = std::str::from_utf8(&f.der).unwrap();
            assert!(tangled_x509::pem::decode_certificate(text).is_err());
        }
    }

    #[test]
    fn line_removal_truncates_der() {
        let (files, ledger) = degrade_all(FaultKind::DerTruncation, 3);
        assert_eq!(ledger.len(), 4);
        for f in &files {
            let text = std::str::from_utf8(&f.der).unwrap();
            // The armor itself still scans; the DER inside does not parse.
            assert!(tangled_x509::pem::decode("CERTIFICATE", text).is_ok());
            assert!(tangled_x509::pem::decode_certificate(text).is_err());
        }
    }

    #[test]
    fn emptied_entries_are_empty() {
        let (files, ledger) = degrade_all(FaultKind::EmptyEntry, 4);
        assert_eq!(ledger.len(), 4);
        assert!(files.iter().all(|f| f.der.is_empty()));
    }

    #[test]
    fn duplicates_append_under_fresh_names() {
        let (files, ledger) = degrade_all(FaultKind::DuplicateEntry, 5);
        assert_eq!(ledger.len(), 4);
        assert_eq!(files.len(), 8);
        let names: std::collections::HashSet<_> = files.iter().map(|f| &f.name).collect();
        assert_eq!(names.len(), 8, "duplicate names must stay unique");
        for copy in &files[4..] {
            assert!(copy.name[9..].starts_with('9'));
            assert!(files[..4].iter().any(|orig| orig.der == copy.der));
        }
    }

    #[test]
    fn degradation_is_deterministic() {
        let run = || {
            let mut files = sample();
            let ledger = FaultPlan::new(99).with_rate(0.5).degrade(&mut files, 7);
            (files, ledger)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_files_are_not_revisited() {
        let mut files = sample();
        files[0].der.clear();
        assert!(files.supported(0).is_empty());
    }
}
