//! The root store: a mutable, identity-keyed set of trust anchors.
//!
//! Mirrors Android's model (§2 of the paper): a system-wide store that is
//! read-only to apps, user-editable through settings (add / disable /
//! delete), and fully writable to anything with root permissions.

use crate::trust::{AnchorSource, TrustAnchor, TrustBits};
use std::collections::HashMap;
use std::sync::Arc;
use tangled_x509::{CertIdentity, Certificate};

/// A named collection of trust anchors keyed by certificate identity.
///
/// Iteration order is insertion order (stable across runs), which keeps
/// reports and serialized snapshots deterministic.
#[derive(Debug, Clone, Default)]
pub struct RootStore {
    name: String,
    order: Vec<CertIdentity>,
    anchors: HashMap<CertIdentity, TrustAnchor>,
}

impl RootStore {
    /// An empty store with a display name.
    pub fn new(name: &str) -> RootStore {
        RootStore {
            name: name.to_owned(),
            order: Vec::new(),
            anchors: HashMap::new(),
        }
    }

    /// The store's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of anchors (enabled or not).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when the store holds no anchors.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Add an anchor. Returns `false` (and leaves the store unchanged) when
    /// an anchor with the same identity is already present — matching
    /// Android, where installing an equivalent certificate is a no-op.
    pub fn add(&mut self, anchor: TrustAnchor) -> bool {
        let id = anchor.identity();
        if self.anchors.contains_key(&id) {
            return false;
        }
        self.order.push(id.clone());
        self.anchors.insert(id, anchor);
        true
    }

    /// Convenience: add a certificate with the given provenance and full
    /// Android trust.
    pub fn add_cert(&mut self, cert: Arc<Certificate>, source: AnchorSource) -> bool {
        self.add(TrustAnchor::new(cert, source))
    }

    /// Remove an anchor by identity. Returns the removed anchor.
    pub fn remove(&mut self, id: &CertIdentity) -> Option<TrustAnchor> {
        let removed = self.anchors.remove(id)?;
        self.order.retain(|o| o != id);
        Some(removed)
    }

    /// Disable (but keep) an anchor — Android settings' "disable"
    /// operation. Returns `true` if the anchor existed.
    pub fn disable(&mut self, id: &CertIdentity) -> bool {
        match self.anchors.get_mut(id) {
            Some(anchor) => {
                anchor.enabled = false;
                true
            }
            None => false,
        }
    }

    /// Re-enable a disabled anchor.
    pub fn enable(&mut self, id: &CertIdentity) -> bool {
        match self.anchors.get_mut(id) {
            Some(anchor) => {
                anchor.enabled = true;
                true
            }
            None => false,
        }
    }

    /// Restrict an anchor's trust bits (the paper's §8 recommendation).
    pub fn set_trust(&mut self, id: &CertIdentity, trust: TrustBits) -> bool {
        match self.anchors.get_mut(id) {
            Some(anchor) => {
                anchor.trust = trust;
                true
            }
            None => false,
        }
    }

    /// Does the store contain an anchor with this identity?
    pub fn contains(&self, id: &CertIdentity) -> bool {
        self.anchors.contains_key(id)
    }

    /// Look up an anchor by identity.
    pub fn get(&self, id: &CertIdentity) -> Option<&TrustAnchor> {
        self.anchors.get(id)
    }

    /// Iterate anchors in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &TrustAnchor> {
        self.order.iter().map(|id| &self.anchors[id])
    }

    /// Iterate only enabled anchors.
    pub fn iter_enabled(&self) -> impl Iterator<Item = &TrustAnchor> {
        self.iter().filter(|a| a.enabled)
    }

    /// Identities in insertion order.
    pub fn identities(&self) -> &[CertIdentity] {
        &self.order
    }

    /// Anchors coming from a given provenance.
    pub fn by_source(&self, source: AnchorSource) -> Vec<&TrustAnchor> {
        self.iter().filter(|a| a.source == source).collect()
    }

    /// Count of anchors per provenance, in [`AnchorSource`] order.
    pub fn source_histogram(&self) -> Vec<(AnchorSource, usize)> {
        use crate::trust::AnchorSource::*;
        [Aosp, Manufacturer, Operator, User, RootApp, Unknown]
            .into_iter()
            .map(|s| (s, self.iter().filter(|a| a.source == s).count()))
            .collect()
    }

    /// A deep copy under a new name (firmware images start as copies of an
    /// AOSP store).
    pub fn cloned_as(&self, name: &str) -> RootStore {
        let mut out = self.clone();
        out.name = name.to_owned();
        out
    }

    /// Certificates of all enabled anchors, for feeding a chain verifier.
    pub fn enabled_certificates(&self) -> Vec<Arc<Certificate>> {
        self.iter_enabled().map(|a| Arc::clone(&a.cert)).collect()
    }
}

/// Serializable snapshot entry (hex DER keeps snapshots self-contained).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSnapshotEntry {
    /// Subject string.
    pub subject: String,
    /// Provenance label.
    pub source: String,
    /// Enabled flag.
    pub enabled: bool,
    /// Full certificate DER, lowercase hex.
    pub der_hex: String,
}

/// Serializable snapshot of a whole store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSnapshot {
    /// Store display name.
    pub name: String,
    /// Anchors in insertion order.
    pub anchors: Vec<StoreSnapshotEntry>,
}

impl serde_json::Serialize for StoreSnapshotEntry {
    fn to_json_value(&self) -> serde_json::Value {
        serde_json::json!({
            "subject": self.subject.as_str(),
            "source": self.source.as_str(),
            "enabled": self.enabled,
            "der_hex": self.der_hex.as_str(),
        })
    }
}

impl serde_json::Deserialize for StoreSnapshotEntry {
    fn from_json_value(value: &serde_json::Value) -> Result<Self, serde_json::Error> {
        Ok(StoreSnapshotEntry {
            subject: snapshot_field(value, "subject")?,
            source: snapshot_field(value, "source")?,
            enabled: value["enabled"]
                .as_bool()
                .ok_or_else(|| serde_json::Error::msg("missing boolean field `enabled`"))?,
            der_hex: snapshot_field(value, "der_hex")?,
        })
    }
}

impl serde_json::Serialize for StoreSnapshot {
    fn to_json_value(&self) -> serde_json::Value {
        serde_json::json!({
            "name": self.name.as_str(),
            "anchors": self
                .anchors
                .iter()
                .map(serde_json::Serialize::to_json_value)
                .collect::<Vec<_>>(),
        })
    }
}

impl serde_json::Deserialize for StoreSnapshot {
    fn from_json_value(value: &serde_json::Value) -> Result<Self, serde_json::Error> {
        let anchors = value["anchors"]
            .as_array()
            .ok_or_else(|| serde_json::Error::msg("missing array field `anchors`"))?
            .iter()
            .map(serde_json::Deserialize::from_json_value)
            .collect::<Result<Vec<StoreSnapshotEntry>, _>>()?;
        Ok(StoreSnapshot {
            name: snapshot_field(value, "name")?,
            anchors,
        })
    }
}

/// Required string field of a snapshot object.
fn snapshot_field(value: &serde_json::Value, key: &str) -> Result<String, serde_json::Error> {
    value[key]
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| serde_json::Error::msg(format!("missing string field `{key}`")))
}

/// Errors reconstructing a store from a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// An entry's `der_hex` is not valid hex.
    BadHex {
        /// Subject of the offending entry.
        subject: String,
    },
    /// An entry's bytes failed to parse as a certificate.
    BadCertificate {
        /// Subject of the offending entry.
        subject: String,
    },
    /// An entry's `source` label is unknown.
    BadSource {
        /// The unrecognized label.
        label: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadHex { subject } => write!(f, "{subject}: invalid hex"),
            SnapshotError::BadCertificate { subject } => {
                write!(f, "{subject}: invalid certificate")
            }
            SnapshotError::BadSource { label } => write!(f, "unknown source '{label}'"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn parse_source(label: &str) -> Option<AnchorSource> {
    Some(match label {
        "AOSP" => AnchorSource::Aosp,
        "manufacturer" => AnchorSource::Manufacturer,
        "operator" => AnchorSource::Operator,
        "user" => AnchorSource::User,
        "root-app" => AnchorSource::RootApp,
        "unknown" => AnchorSource::Unknown,
        _ => return None,
    })
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let nibble = |c: u8| -> Option<u8> {
        match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            b'A'..=b'F' => Some(c - b'A' + 10),
            _ => None,
        }
    };
    s.as_bytes()
        .chunks(2)
        .map(|p| Some(nibble(p[0])? << 4 | nibble(p[1])?))
        .collect()
}

impl RootStore {
    /// Export a serializable snapshot.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            name: self.name.clone(),
            anchors: self
                .iter()
                .map(|a| StoreSnapshotEntry {
                    subject: a.cert.subject.to_string(),
                    source: a.source.label().to_owned(),
                    enabled: a.enabled,
                    der_hex: tangled_crypto::sha256::hex(a.cert.to_der()),
                })
                .collect(),
        }
    }

    /// Reconstruct a store from a snapshot (inverse of
    /// [`RootStore::snapshot`] up to trust bits, which snapshots do not
    /// carry — reconstructed anchors get Android's all-purpose default).
    pub fn from_snapshot(snap: &StoreSnapshot) -> Result<RootStore, SnapshotError> {
        let mut store = RootStore::new(&snap.name);
        for entry in &snap.anchors {
            let der = hex_decode(&entry.der_hex).ok_or_else(|| SnapshotError::BadHex {
                subject: entry.subject.clone(),
            })?;
            let cert = Certificate::parse(&der).map_err(|_| SnapshotError::BadCertificate {
                subject: entry.subject.clone(),
            })?;
            let source = parse_source(&entry.source).ok_or_else(|| SnapshotError::BadSource {
                label: entry.source.clone(),
            })?;
            let mut anchor = TrustAnchor::new(Arc::new(cert), source);
            anchor.enabled = entry.enabled;
            store.add(anchor);
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::CaFactory;

    fn store_with(n: usize) -> (RootStore, Vec<CertIdentity>) {
        let mut f = CaFactory::new();
        let mut s = RootStore::new("test");
        let mut ids = Vec::new();
        for i in 0..n {
            let cert = f.root(&format!("Store Test CA {i}"));
            ids.push(cert.identity());
            assert!(s.add_cert(cert, AnchorSource::Aosp));
        }
        (s, ids)
    }

    #[test]
    fn add_remove_contains() {
        let (mut s, ids) = store_with(3);
        assert_eq!(s.len(), 3);
        assert!(s.contains(&ids[1]));
        let removed = s.remove(&ids[1]).unwrap();
        assert_eq!(removed.identity(), ids[1]);
        assert_eq!(s.len(), 2);
        assert!(!s.contains(&ids[1]));
        assert!(s.remove(&ids[1]).is_none());
    }

    #[test]
    fn duplicate_identity_rejected() {
        let mut f = CaFactory::new();
        let mut s = RootStore::new("dup");
        let a = f.root("Dup CA");
        let b = f.reissued_root("Dup CA"); // equivalent identity, new DER
        assert!(s.add_cert(a, AnchorSource::Aosp));
        assert!(!s.add_cert(b, AnchorSource::Manufacturer));
        assert_eq!(s.len(), 1);
        // Original provenance is kept.
        assert_eq!(s.iter().next().unwrap().source, AnchorSource::Aosp);
    }

    #[test]
    fn disable_enable_cycle() {
        let (mut s, ids) = store_with(2);
        assert!(s.disable(&ids[0]));
        assert_eq!(s.iter_enabled().count(), 1);
        assert_eq!(s.len(), 2, "disable keeps the anchor");
        assert!(s.enable(&ids[0]));
        assert_eq!(s.iter_enabled().count(), 2);
        // Unknown identity.
        let (_, other_ids) = store_with(3);
        assert!(!s.disable(&other_ids[2]));
    }

    #[test]
    fn insertion_order_is_stable() {
        let (s, ids) = store_with(5);
        let got: Vec<_> = s.iter().map(|a| a.identity()).collect();
        assert_eq!(got, ids);
        assert_eq!(s.identities(), &ids[..]);
    }

    #[test]
    fn trust_bits_update() {
        let (mut s, ids) = store_with(1);
        assert!(s.set_trust(&ids[0], TrustBits::tls_only()));
        let a = s.get(&ids[0]).unwrap();
        assert!(a.trust.tls_server && !a.trust.code_signing);
    }

    #[test]
    fn source_histogram_counts() {
        let mut f = CaFactory::new();
        let mut s = RootStore::new("hist");
        s.add_cert(f.root("H1"), AnchorSource::Aosp);
        s.add_cert(f.root("H2"), AnchorSource::Aosp);
        s.add_cert(f.root("H3"), AnchorSource::Operator);
        let hist: HashMap<_, _> = s.source_histogram().into_iter().collect();
        assert_eq!(hist[&AnchorSource::Aosp], 2);
        assert_eq!(hist[&AnchorSource::Operator], 1);
        assert_eq!(hist[&AnchorSource::RootApp], 0);
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let (s, _) = store_with(2);
        let snap = s.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: StoreSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, "test");
        assert_eq!(back.anchors.len(), 2);
        assert_eq!(back.anchors[0].source, "AOSP");
    }

    #[test]
    fn snapshot_full_round_trip() {
        let mut f = CaFactory::new();
        let mut s = RootStore::new("snap");
        s.add_cert(f.root("Snap CA 1"), AnchorSource::Aosp);
        s.add_cert(f.root("Snap CA 2"), AnchorSource::Operator);
        s.add_cert(f.root("Snap CA 3"), AnchorSource::RootApp);
        let disabled = s.identities()[1].clone();
        s.disable(&disabled);

        let json = serde_json::to_string(&s.snapshot()).unwrap();
        let snap: StoreSnapshot = serde_json::from_str(&json).unwrap();
        let back = RootStore::from_snapshot(&snap).unwrap();

        assert_eq!(back.name(), "snap");
        assert_eq!(back.identities(), s.identities());
        for (a, b) in s.iter().zip(back.iter()) {
            assert_eq!(a.cert.to_der(), b.cert.to_der());
            assert_eq!(a.source, b.source);
            assert_eq!(a.enabled, b.enabled);
        }
    }

    #[test]
    fn snapshot_rejects_corruption() {
        let mut f = CaFactory::new();
        let mut s = RootStore::new("snap");
        s.add_cert(f.root("Snap CA"), AnchorSource::Aosp);
        let mut snap = s.snapshot();
        snap.anchors[0].der_hex.push('x');
        assert!(matches!(
            RootStore::from_snapshot(&snap),
            Err(SnapshotError::BadHex { .. })
        ));
        let mut snap = s.snapshot();
        snap.anchors[0].der_hex = "00ff".into();
        assert!(matches!(
            RootStore::from_snapshot(&snap),
            Err(SnapshotError::BadCertificate { .. })
        ));
        let mut snap = s.snapshot();
        snap.anchors[0].source = "martian".into();
        assert!(matches!(
            RootStore::from_snapshot(&snap),
            Err(SnapshotError::BadSource { .. })
        ));
    }

    #[test]
    fn cloned_as_is_independent() {
        let (s, ids) = store_with(2);
        let mut c = s.cloned_as("firmware");
        c.remove(&ids[0]);
        assert_eq!(s.len(), 2);
        assert_eq!(c.len(), 1);
        assert_eq!(c.name(), "firmware");
    }
}
