//! Emulation of Android's on-disk root store layout.
//!
//! Android keeps its system root store as one file per anchor under
//! `/system/etc/security/cacerts/`, named `<subject-hash>.<n>` (footnote 2
//! of the paper). This module renders a [`RootStore`] into that layout and
//! parses it back — the format third-party apps with root permissions
//! manipulate directly in §6.

use crate::store::RootStore;
use crate::trust::AnchorSource;
use std::collections::BTreeMap;
use std::sync::Arc;
use tangled_crypto::sha1::sha1;
use tangled_x509::Certificate;

/// One file of the cacerts directory: name and contents. Android's real
/// files are PEM-armored; this emulation accepts both PEM and raw DER
/// contents and can write either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacertsFile {
    /// File name, `xxxxxxxx.n` (8 hex digits of the subject hash, then a
    /// collision counter).
    pub name: String,
    /// Certificate bytes: PEM text or raw DER.
    pub der: Vec<u8>,
}

/// The subject-hash prefix used in the file name (first 4 bytes of the
/// SHA-1 of the DER-encoded subject, rendered as 8 hex digits — a stand-in
/// for OpenSSL's `X509_NAME_hash`).
pub fn subject_hash(cert: &Certificate) -> String {
    let h = sha1(&cert.subject.to_der());
    format!("{:02x}{:02x}{:02x}{:02x}", h[0], h[1], h[2], h[3])
}

/// Render a store into the cacerts directory layout with raw DER
/// contents. Output is sorted by file name; hash collisions get increasing
/// `.n` suffixes, as on Android.
pub fn to_cacerts(store: &RootStore) -> Vec<CacertsFile> {
    let mut by_hash: BTreeMap<String, Vec<&Arc<Certificate>>> = BTreeMap::new();
    for anchor in store.iter() {
        by_hash
            .entry(subject_hash(&anchor.cert))
            .or_default()
            .push(&anchor.cert);
    }
    let mut files = Vec::with_capacity(store.len());
    for (hash, certs) in by_hash {
        for (n, cert) in certs.iter().enumerate() {
            files.push(CacertsFile {
                name: format!("{hash}.{n}"),
                der: cert.to_der().to_vec(),
            });
        }
    }
    files
}

/// Render a store into the cacerts layout with PEM-armored contents — the
/// format Android actually ships.
pub fn to_cacerts_pem(store: &RootStore) -> Vec<CacertsFile> {
    to_cacerts(store)
        .into_iter()
        .map(|f| {
            let cert = Certificate::parse(&f.der).expect("just serialized");
            CacertsFile {
                name: f.name,
                der: tangled_x509::pem::encode_certificate(&cert).into_bytes(),
            }
        })
        .collect()
}

/// Errors from reading a cacerts directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacertsError {
    /// A file's contents failed to parse as a certificate.
    BadCertificate {
        /// Offending file name.
        file: String,
    },
    /// A file name does not match the `xxxxxxxx.n` convention.
    BadFileName {
        /// Offending file name.
        file: String,
    },
    /// A file's name hash does not match its certificate's subject.
    HashMismatch {
        /// Offending file name.
        file: String,
    },
}

impl std::fmt::Display for CacertsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacertsError::BadCertificate { file } => {
                write!(f, "{file}: not a valid certificate")
            }
            CacertsError::BadFileName { file } => {
                write!(f, "{file}: invalid cacerts file name")
            }
            CacertsError::HashMismatch { file } => {
                write!(f, "{file}: name does not match subject hash")
            }
        }
    }
}

impl std::error::Error for CacertsError {}

/// Parse a cacerts directory back into a store. Every anchor is tagged with
/// the given provenance (a reader cannot tell who wrote a file).
pub fn from_cacerts(
    name: &str,
    files: &[CacertsFile],
    source: AnchorSource,
) -> Result<RootStore, CacertsError> {
    let mut store = RootStore::new(name);
    for file in files {
        let valid_name = file.name.len() >= 10
            && file.name.as_bytes()[8] == b'.'
            && file.name[..8].bytes().all(|b| b.is_ascii_hexdigit())
            && file.name[9..].bytes().all(|b| b.is_ascii_digit());
        if !valid_name {
            return Err(CacertsError::BadFileName {
                file: file.name.clone(),
            });
        }
        // Auto-detect PEM armor vs raw DER, like Android's cert loader.
        let cert = if file.der.starts_with(b"-----BEGIN") {
            std::str::from_utf8(&file.der)
                .ok()
                .and_then(|text| tangled_x509::pem::decode_certificate(text).ok())
                .ok_or(CacertsError::BadCertificate {
                    file: file.name.clone(),
                })?
        } else {
            Certificate::parse(&file.der).map_err(|_| CacertsError::BadCertificate {
                file: file.name.clone(),
            })?
        };
        if subject_hash(&cert) != file.name[..8] {
            return Err(CacertsError::HashMismatch {
                file: file.name.clone(),
            });
        }
        store.add_cert(Arc::new(cert), source);
    }
    Ok(store)
}

/// How one cacerts file failed to load. Unlike [`CacertsError`], which
/// aborts a strict read, these are *quarantine* classifications: the
/// lenient loader records one per damaged file and keeps going.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreLoadError {
    /// File name violates the `xxxxxxxx.n` convention.
    BadName,
    /// The file has no contents at all.
    EmptyFile,
    /// PEM armor or Base64 body damage (the file routed through the PEM
    /// decoder and failed there).
    Pem(tangled_x509::pem::PemError),
    /// Armor was fine (or absent) but the DER inside does not parse.
    MalformedDer,
    /// Parsed, but the file name's hash prefix does not match the
    /// certificate's subject.
    HashMismatch,
    /// Byte-identical certificate already loaded from an earlier file.
    DuplicateDer,
}

impl StoreLoadError {
    /// Stable label for health-report keys.
    pub fn label(&self) -> &'static str {
        use tangled_x509::pem::PemError;
        match self {
            StoreLoadError::BadName => "bad-name",
            StoreLoadError::EmptyFile => "empty-file",
            StoreLoadError::Pem(PemError::MissingHeader | PemError::MissingFooter) => "pem-armor",
            StoreLoadError::Pem(_) => "bad-base64",
            StoreLoadError::MalformedDer => "malformed-der",
            StoreLoadError::HashMismatch => "hash-mismatch",
            StoreLoadError::DuplicateDer => "duplicate-der",
        }
    }
}

impl std::fmt::Display for StoreLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreLoadError::Pem(e) => write!(f, "pem damage: {e}"),
            other => f.write_str(other.label()),
        }
    }
}

impl std::error::Error for StoreLoadError {}

/// One file the lenient loader refused, and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedFile {
    /// The offending file's name.
    pub file: String,
    /// The classification it was quarantined under.
    pub error: StoreLoadError,
}

/// Classify a single cacerts file, returning the parsed certificate or
/// the quarantine reason. Never panics, whatever the bytes.
fn load_file(file: &CacertsFile) -> Result<Certificate, StoreLoadError> {
    let valid_name = file.name.len() >= 10
        && file.name.as_bytes()[8] == b'.'
        && file.name[..8].bytes().all(|b| b.is_ascii_hexdigit())
        && file.name[9..].bytes().all(|b| b.is_ascii_digit());
    if !valid_name {
        return Err(StoreLoadError::BadName);
    }
    if file.der.is_empty() {
        return Err(StoreLoadError::EmptyFile);
    }
    let cert = if file.der.starts_with(b"-----BEGIN") {
        // Non-UTF-8 armor cannot contain a findable header.
        let text = std::str::from_utf8(&file.der)
            .map_err(|_| StoreLoadError::Pem(tangled_x509::pem::PemError::MissingHeader))?;
        let der =
            tangled_x509::pem::decode("CERTIFICATE", text).map_err(StoreLoadError::Pem)?;
        Certificate::parse(&der).map_err(|_| StoreLoadError::MalformedDer)?
    } else {
        Certificate::parse(&file.der).map_err(|_| StoreLoadError::MalformedDer)?
    };
    if subject_hash(&cert) != file.name[..8] {
        return Err(StoreLoadError::HashMismatch);
    }
    Ok(cert)
}

/// Parse a cacerts directory, skipping and recording every file that
/// fails instead of aborting. Returns the store built from the healthy
/// files plus the quarantine ledger, in file order.
pub fn from_cacerts_lenient(
    name: &str,
    files: &[CacertsFile],
    source: AnchorSource,
) -> (RootStore, Vec<QuarantinedFile>) {
    let mut store = RootStore::new(name);
    let mut quarantined = Vec::new();
    let mut seen_der: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
    for file in files {
        match load_file(file) {
            Ok(cert) => {
                if !seen_der.insert(cert.to_der().to_vec()) {
                    quarantined.push(QuarantinedFile {
                        file: file.name.clone(),
                        error: StoreLoadError::DuplicateDer,
                    });
                    continue;
                }
                store.add_cert(Arc::new(cert), source);
            }
            Err(error) => quarantined.push(QuarantinedFile {
                file: file.name.clone(),
                error,
            }),
        }
    }
    (store, quarantined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::CaFactory;
    use crate::stores::ReferenceStore;

    #[test]
    fn round_trip_aosp_store() {
        let store = ReferenceStore::Aosp41.cached();
        let files = to_cacerts(&store);
        assert_eq!(files.len(), store.len());
        let back = from_cacerts("reread", &files, AnchorSource::Aosp).unwrap();
        assert_eq!(back.len(), store.len());
        let orig: std::collections::BTreeSet<_> =
            store.identities().iter().cloned().collect();
        let reread: std::collections::BTreeSet<_> =
            back.identities().iter().cloned().collect();
        assert_eq!(orig, reread);
    }

    #[test]
    fn file_names_are_hash_dot_counter() {
        let store = ReferenceStore::Aosp41.cached();
        for f in to_cacerts(&store) {
            assert_eq!(f.name.as_bytes()[8], b'.');
            assert!(f.name[..8].bytes().all(|b| b.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn pem_round_trip_matches_der() {
        let store = ReferenceStore::Aosp41.cached();
        let pem_files = to_cacerts_pem(&store);
        assert!(pem_files[0].der.starts_with(b"-----BEGIN CERTIFICATE-----"));
        let back = from_cacerts("pem", &pem_files, AnchorSource::Aosp).unwrap();
        assert_eq!(back.len(), store.len());
        let orig: std::collections::BTreeSet<_> =
            store.identities().iter().cloned().collect();
        let reread: std::collections::BTreeSet<_> =
            back.identities().iter().cloned().collect();
        assert_eq!(orig, reread);
    }

    #[test]
    fn corrupt_file_rejected() {
        let mut f = CaFactory::new();
        let mut store = RootStore::new("one");
        store.add_cert(f.root("Corrupt Test CA"), AnchorSource::Aosp);
        let mut files = to_cacerts(&store);
        files[0].der[30] ^= 0xff;
        let err = from_cacerts("x", &files, AnchorSource::Aosp).unwrap_err();
        assert!(matches!(
            err,
            CacertsError::BadCertificate { .. } | CacertsError::HashMismatch { .. }
        ));
    }

    #[test]
    fn wrong_name_rejected() {
        let mut f = CaFactory::new();
        let mut store = RootStore::new("one");
        store.add_cert(f.root("Name Test CA"), AnchorSource::Aosp);
        let mut files = to_cacerts(&store);
        files[0].name = "zzzz.0".into();
        assert!(matches!(
            from_cacerts("x", &files, AnchorSource::Aosp).unwrap_err(),
            CacertsError::BadFileName { .. }
        ));
        // Valid shape, wrong hash.
        let mut files2 = to_cacerts(&store);
        files2[0].name = "00000000.0".into();
        assert!(matches!(
            from_cacerts("x", &files2, AnchorSource::Aosp).unwrap_err(),
            CacertsError::HashMismatch { .. }
        ));
    }

    #[test]
    fn root_app_tampering_is_visible_via_diff() {
        // The §6 scenario end-to-end at the file level: a root app drops a
        // new file into cacerts; a diff against AOSP flags it.
        let mut f = CaFactory::new();
        let aosp = ReferenceStore::Aosp44.cached();
        let mut files = to_cacerts(&aosp);
        let mal = f.root("CRAZY HOUSE");
        let mal_hash = subject_hash(&mal);
        files.push(CacertsFile {
            name: format!("{mal_hash}.0"),
            der: mal.to_der().to_vec(),
        });
        let observed = from_cacerts("tampered", &files, AnchorSource::Unknown).unwrap();
        let d = crate::diff::diff(&aosp, &observed);
        assert_eq!(d.added.len(), 1);
        assert!(d.added[0].subject.contains("CRAZY HOUSE"));
        assert!(d.removed.is_empty());
    }

    // ---- lenient loading / quarantine ------------------------------------

    fn pem_sample(n: usize) -> Vec<CacertsFile> {
        let mut f = CaFactory::new();
        let mut store = RootStore::new("lenient-sample");
        for i in 0..n {
            store.add_cert(f.root(&format!("Lenient CA {i}")), AnchorSource::Aosp);
        }
        to_cacerts_pem(&store)
    }

    #[test]
    fn lenient_empty_directory() {
        let (store, quarantined) =
            from_cacerts_lenient("empty", &[], AnchorSource::Aosp);
        assert_eq!(store.len(), 0);
        assert!(quarantined.is_empty());
    }

    #[test]
    fn lenient_truncated_pem_is_quarantined() {
        let mut files = pem_sample(3);
        // Chop the file mid-body: the footer disappears.
        let keep = files[1].der.len() / 2;
        files[1].der.truncate(keep);
        let (store, q) = from_cacerts_lenient("t", &files, AnchorSource::Aosp);
        assert_eq!(store.len(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].file, files[1].name);
        assert_eq!(
            q[0].error,
            StoreLoadError::Pem(tangled_x509::pem::PemError::MissingFooter)
        );
    }

    #[test]
    fn lenient_bad_base64_padding_is_quarantined() {
        let mut files = pem_sample(2);
        // Delete one body character: length is no longer a multiple of 4.
        let pos = files[0]
            .der
            .iter()
            .position(|&b| b == b'\n')
            .unwrap()
            + 1;
        files[0].der.remove(pos);
        let (store, q) = from_cacerts_lenient("p", &files, AnchorSource::Aosp);
        assert_eq!(store.len(), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].error.label(), "bad-base64");
    }

    #[test]
    fn lenient_non_certificate_contents_are_quarantined() {
        let mut files = pem_sample(1);
        files.push(CacertsFile {
            name: "0123abcd.0".into(),
            der: b"not a certificate at all".to_vec(),
        });
        files.push(CacertsFile {
            name: "4567ef01.0".into(),
            der: vec![0x30, 0x82, 0xFF, 0xFF, 0x01, 0x02],
        });
        let (store, q) = from_cacerts_lenient("n", &files, AnchorSource::Aosp);
        assert_eq!(store.len(), 1);
        assert_eq!(q.len(), 2);
        assert!(q.iter().all(|e| e.error == StoreLoadError::MalformedDer));
    }

    #[test]
    fn lenient_empty_file_and_bad_name_are_quarantined() {
        let mut files = pem_sample(1);
        files.push(CacertsFile {
            name: "89ab23cd.1".into(),
            der: Vec::new(),
        });
        files.push(CacertsFile {
            name: "README".into(),
            der: b"-----BEGIN CERTIFICATE-----\n".to_vec(),
        });
        let (store, q) = from_cacerts_lenient("e", &files, AnchorSource::Aosp);
        assert_eq!(store.len(), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].error, StoreLoadError::EmptyFile);
        assert_eq!(q[1].error, StoreLoadError::BadName);
    }

    #[test]
    fn lenient_duplicate_der_is_quarantined_once() {
        let mut files = pem_sample(2);
        let mut copy = files[0].clone();
        copy.name = format!("{}.7", &files[0].name[..8]);
        files.push(copy);
        let (store, q) = from_cacerts_lenient("d", &files, AnchorSource::Aosp);
        assert_eq!(store.len(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].error, StoreLoadError::DuplicateDer);
        assert!(q[0].file.ends_with(".7"));
    }

    #[test]
    fn lenient_never_panics_on_byte_garbage() {
        // A grab-bag of hostile inputs; the loader must classify, not die.
        let hostile: Vec<CacertsFile> = vec![
            CacertsFile { name: "00000000.0".into(), der: vec![0xFF; 3] },
            CacertsFile { name: "00000000.1".into(), der: b"-----BEGIN".to_vec() },
            CacertsFile {
                name: "00000000.2".into(),
                der: b"-----BEGIN CERTIFICATE-----\n\xFF\xFE\n-----END CERTIFICATE-----\n"
                    .to_vec(),
            },
            CacertsFile { name: "..".into(), der: vec![] },
            CacertsFile { name: "00000000.3".into(), der: vec![0x30] },
        ];
        let (store, q) = from_cacerts_lenient("h", &hostile, AnchorSource::Unknown);
        assert_eq!(store.len(), 0);
        assert_eq!(q.len(), hostile.len());
    }

    #[test]
    fn lenient_clean_directory_matches_strict() {
        let files = pem_sample(4);
        let strict = from_cacerts("s", &files, AnchorSource::Aosp).unwrap();
        let (lenient, q) = from_cacerts_lenient("l", &files, AnchorSource::Aosp);
        assert!(q.is_empty());
        assert_eq!(strict.identities(), lenient.identities());
    }
}
