//! Deterministic wire-level chaos: a seeded `Read + Write` wrapper.
//!
//! PR 1 proved the ingest layer survives seeded corruption; this module
//! points the same discipline at the *transport*. [`ChaosStream`] wraps
//! any byte stream (a `TcpStream`, an in-process simulated connection)
//! and injects wire faults into the frames that cross it: disconnects,
//! partial writes, trickled reads, bit-flipped frame bodies, duplicated
//! frames and garbage headers. Every fault is a named [`WireFaultKind`]
//! recorded in a shared ledger, so a harness can reconcile observed
//! failures 1:1 against injected damage — the PR-1 quarantine vocabulary
//! extended to the wire.
//!
//! Faults are decided per *frame*, not per byte: the wrapper buffers
//! writes and, on `flush`, parses complete length-prefixed frames
//! (4-byte big-endian length, the trustd framing) out of the buffer and
//! rolls the seeded RNG once per frame. Same seed, same salt, same frame
//! sequence → same faults, byte for byte.
//!
//! [`WireFaultKind`] is deliberately a *separate* enum from
//! [`crate::FaultKind`]: the ingest ledger-reconciliation tests pin
//! `FaultKind::ALL` at twelve kinds, and wire faults live on a different
//! surface with a different detection contract.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

/// Wire fault kinds the chaos transport can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum WireFaultKind {
    /// Drop the frame and break the stream: writes report `BrokenPipe`,
    /// reads report `ConnectionReset`.
    Disconnect,
    /// Deliver a strict prefix of the frame, then break the stream.
    PartialWrite,
    /// Deliver the *reply* one byte at a time with an idle tick
    /// (`WouldBlock`) between bytes — a slow-but-live peer.
    Trickle,
    /// Flip one random bit inside the frame body.
    BitFlip,
    /// Deliver the frame twice, back to back.
    DuplicateFrame,
    /// Replace the 4-byte length header with random bytes.
    GarbageHeader,
}

impl WireFaultKind {
    /// Every wire fault kind, in declaration order.
    pub const ALL: [WireFaultKind; 6] = [
        WireFaultKind::Disconnect,
        WireFaultKind::PartialWrite,
        WireFaultKind::Trickle,
        WireFaultKind::BitFlip,
        WireFaultKind::DuplicateFrame,
        WireFaultKind::GarbageHeader,
    ];

    /// Kinds that only delay or lose frames, never corrupt them: a
    /// request lost to one of these was provably never executed, so a
    /// client may retry it against a live server and still expect
    /// byte-identical verdicts.
    pub const LOSSY: [WireFaultKind; 3] = [
        WireFaultKind::Disconnect,
        WireFaultKind::PartialWrite,
        WireFaultKind::Trickle,
    ];

    /// Stable label for ledgers and health keys.
    pub fn label(self) -> &'static str {
        match self {
            WireFaultKind::Disconnect => "wire-disconnect",
            WireFaultKind::PartialWrite => "wire-partial-write",
            WireFaultKind::Trickle => "wire-trickle",
            WireFaultKind::BitFlip => "wire-bit-flip",
            WireFaultKind::DuplicateFrame => "wire-duplicate-frame",
            WireFaultKind::GarbageHeader => "wire-garbage-header",
        }
    }
}

impl std::fmt::Display for WireFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One injected wire fault: what was done, and to which outbound frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    /// The kind of damage.
    pub kind: WireFaultKind,
    /// Ordinal of the frame on this stream (0-based, write order).
    pub frame: u64,
}

/// A shared, thread-safe fault ledger. Clones observe the same log —
/// hand one to the harness before the stream moves into a client.
pub type WireLedger = Arc<Mutex<Vec<WireFault>>>;

/// A seeded wire-fault schedule.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// Master seed; combined with a per-stream salt.
    pub seed: u64,
    /// Per-frame injection probability in `[0, 1]`.
    pub rate: f64,
    enabled: Vec<WireFaultKind>,
}

impl ChaosPlan {
    /// A plan with the given seed, zero rate and every kind enabled.
    pub fn new(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            rate: 0.0,
            enabled: WireFaultKind::ALL.to_vec(),
        }
    }

    /// Set the per-frame injection rate.
    pub fn with_rate(mut self, rate: f64) -> ChaosPlan {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.rate = rate;
        self
    }

    /// Restrict the plan to exactly these kinds.
    pub fn only(mut self, kinds: &[WireFaultKind]) -> ChaosPlan {
        self.enabled = kinds.to_vec();
        self
    }

    /// Remove one kind from the plan.
    pub fn without(mut self, kind: WireFaultKind) -> ChaosPlan {
        self.enabled.retain(|k| *k != kind);
        self
    }

    /// Is a kind enabled in this plan?
    pub fn is_enabled(&self, kind: WireFaultKind) -> bool {
        self.enabled.contains(&kind)
    }

    /// The stream RNG for a salt (same derivation as [`crate::FaultPlan`],
    /// so chaos positions decorrelate across streams but reproduce
    /// exactly for a given `(seed, salt)`).
    fn rng(&self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

/// How the read side of a tricked stream delivers the next bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trickle {
    /// Deliver bytes normally.
    Off,
    /// Deliver one byte next.
    Byte,
    /// Report one `WouldBlock` tick next.
    Tick,
}

/// A fault-injecting wrapper around any `Read + Write` stream.
///
/// Write side: bytes are buffered; `flush` parses complete
/// length-prefixed frames out of the buffer and rolls the plan once per
/// frame, forwarding the (possibly damaged) frame to the inner stream.
/// Read side: passes through, except after a [`WireFaultKind::Trickle`]
/// roll (one byte per read, a `WouldBlock` tick between bytes) or after
/// a stream-breaking fault (`ConnectionReset`).
pub struct ChaosStream<S> {
    inner: S,
    rng: StdRng,
    rate: f64,
    enabled: Vec<WireFaultKind>,
    ledger: WireLedger,
    wbuf: Vec<u8>,
    frames: u64,
    broken: bool,
    trickle: Trickle,
}

impl<S> ChaosStream<S> {
    /// Wrap `inner` under `plan`, with a fresh ledger. `salt`
    /// distinguishes streams driven by one plan (per connection, per
    /// attempt) so their fault positions decorrelate deterministically.
    pub fn new(inner: S, plan: &ChaosPlan, salt: u64) -> ChaosStream<S> {
        ChaosStream::with_ledger(inner, plan, salt, Arc::new(Mutex::new(Vec::new())))
    }

    /// As [`ChaosStream::new`], recording into a caller-owned ledger.
    pub fn with_ledger(
        inner: S,
        plan: &ChaosPlan,
        salt: u64,
        ledger: WireLedger,
    ) -> ChaosStream<S> {
        ChaosStream {
            inner,
            rng: plan.rng(salt),
            rate: plan.rate,
            enabled: plan.enabled.clone(),
            ledger,
            wbuf: Vec::new(),
            frames: 0,
            broken: false,
            trickle: Trickle::Off,
        }
    }

    /// The shared fault ledger.
    pub fn ledger(&self) -> WireLedger {
        Arc::clone(&self.ledger)
    }

    /// Unwrap the inner stream (test introspection).
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn record(&mut self, kind: WireFaultKind) {
        self.ledger
            .lock()
            .expect("chaos ledger poisoned")
            .push(WireFault {
                kind,
                frame: self.frames,
            });
    }

    /// Roll the plan for the frame about to be forwarded.
    fn roll(&mut self) -> Option<WireFaultKind> {
        if self.enabled.is_empty() || !self.rng.gen_bool(self.rate) {
            return None;
        }
        let kind = self.enabled[self.rng.gen_range(0..self.enabled.len())];
        Some(kind)
    }
}

impl<S: Write> ChaosStream<S> {
    /// Forward complete buffered frames through the fault roll.
    fn pump(&mut self) -> io::Result<()> {
        loop {
            if self.wbuf.len() < 4 {
                return Ok(());
            }
            let len = u32::from_be_bytes(self.wbuf[..4].try_into().expect("4 bytes")) as usize;
            let end = 4 + len;
            if self.wbuf.len() < end {
                return Ok(());
            }
            let mut frame: Vec<u8> = self.wbuf.drain(..end).collect();
            let fault = self.roll();
            if let Some(kind) = fault {
                self.record(kind);
            }
            match fault {
                None => self.inner.write_all(&frame)?,
                Some(WireFaultKind::Disconnect) => {
                    self.broken = true;
                    self.wbuf.clear();
                    return Ok(());
                }
                Some(WireFaultKind::PartialWrite) => {
                    // A strict prefix that always cuts the frame short:
                    // at least the header, never the whole frame.
                    let cut = 4 + self.rng.gen_range(0..len.max(1));
                    self.inner.write_all(&frame[..cut.min(frame.len() - 1)])?;
                    self.broken = true;
                    self.wbuf.clear();
                    return Ok(());
                }
                Some(WireFaultKind::Trickle) => {
                    // The fault lands on the *reply*: arm the read side.
                    self.trickle = Trickle::Byte;
                    self.inner.write_all(&frame)?;
                }
                Some(WireFaultKind::BitFlip) => {
                    if len > 0 {
                        let bit = self.rng.gen_range(0..len * 8);
                        frame[4 + bit / 8] ^= 1 << (bit % 8);
                    }
                    self.inner.write_all(&frame)?;
                }
                Some(WireFaultKind::DuplicateFrame) => {
                    self.inner.write_all(&frame)?;
                    self.inner.write_all(&frame)?;
                }
                Some(WireFaultKind::GarbageHeader) => {
                    let mut header = [0u8; 4];
                    self.rng.fill_bytes(&mut header);
                    self.inner.write_all(&header)?;
                    self.inner.write_all(&frame[4..])?;
                }
            }
            self.frames += 1;
        }
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.broken {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "chaos: stream broken",
            ));
        }
        self.wbuf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.broken {
            return Ok(());
        }
        self.pump()?;
        self.inner.flush()
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.broken {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: stream broken",
            ));
        }
        match self.trickle {
            Trickle::Off => self.inner.read(buf),
            Trickle::Tick => {
                self.trickle = Trickle::Byte;
                Err(io::Error::new(io::ErrorKind::WouldBlock, "chaos: trickle"))
            }
            Trickle::Byte => {
                if buf.is_empty() {
                    return Ok(0);
                }
                let n = self.inner.read(&mut buf[..1])?;
                if n > 0 {
                    self.trickle = Trickle::Tick;
                }
                Ok(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame(body: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_be_bytes());
        out.extend_from_slice(body);
        out
    }

    fn send(plan: &ChaosPlan, salt: u64, bodies: &[&[u8]]) -> (Vec<u8>, Vec<WireFault>) {
        let mut s = ChaosStream::new(Vec::new(), plan, salt);
        for body in bodies {
            // A Disconnect/PartialWrite roll breaks the stream; later
            // writes fail deterministically, so just stop sending.
            if s.write_all(&frame(body)).and_then(|()| s.flush()).is_err() {
                break;
            }
        }
        let ledger = s.ledger().lock().unwrap().clone();
        (s.into_inner(), ledger)
    }

    /// A one-shot duplex: writes collect into `sent`, reads drain `reply`.
    struct Duplex {
        reply: Cursor<Vec<u8>>,
        sent: Vec<u8>,
    }

    impl Read for Duplex {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.reply.read(buf)
        }
    }

    impl Write for Duplex {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.sent.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn zero_rate_passes_frames_through() {
        let plan = ChaosPlan::new(7);
        let (out, ledger) = send(&plan, 0, &[b"hello", b"world"]);
        let mut want = frame(b"hello");
        want.extend_from_slice(&frame(b"world"));
        assert_eq!(out, want);
        assert!(ledger.is_empty());
    }

    #[test]
    fn same_seed_and_salt_reproduce_the_ledger() {
        // Non-breaking kinds so all 50 frames flow and the ledgers are rich.
        let plan = ChaosPlan::new(42)
            .with_rate(0.5)
            .only(&[
                WireFaultKind::BitFlip,
                WireFaultKind::DuplicateFrame,
                WireFaultKind::GarbageHeader,
            ]);
        let bodies: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i; 16]).collect();
        let refs: Vec<&[u8]> = bodies.iter().map(Vec::as_slice).collect();
        let (out_a, led_a) = send(&plan, 3, &refs);
        let (out_b, led_b) = send(&plan, 3, &refs);
        assert_eq!(out_a, out_b);
        assert_eq!(led_a, led_b);
        assert!(!led_a.is_empty(), "rate 0.5 over 50 frames injects");
        // A different salt decorrelates.
        let (_, led_c) = send(&plan, 4, &refs);
        assert_ne!(led_a, led_c);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit_of_the_body() {
        let plan = ChaosPlan::new(9).with_rate(1.0).only(&[WireFaultKind::BitFlip]);
        let body = vec![0u8; 32];
        let (out, ledger) = send(&plan, 0, &[&body]);
        assert_eq!(ledger.len(), 1);
        assert_eq!(ledger[0].kind, WireFaultKind::BitFlip);
        assert_eq!(out.len(), 4 + 32, "length preserved");
        assert_eq!(&out[..4], &32u32.to_be_bytes(), "header intact");
        let flipped: u32 = out[4..].iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped");
    }

    #[test]
    fn garbage_header_keeps_the_body() {
        let plan = ChaosPlan::new(11)
            .with_rate(1.0)
            .only(&[WireFaultKind::GarbageHeader]);
        let (out, ledger) = send(&plan, 0, &[b"payload"]);
        assert_eq!(ledger[0].kind, WireFaultKind::GarbageHeader);
        assert_eq!(&out[4..], b"payload");
    }

    #[test]
    fn duplicate_frame_delivers_twice() {
        let plan = ChaosPlan::new(13)
            .with_rate(1.0)
            .only(&[WireFaultKind::DuplicateFrame]);
        let (out, _) = send(&plan, 0, &[b"abc"]);
        let mut want = frame(b"abc");
        let one = want.clone();
        want.extend_from_slice(&one);
        assert_eq!(out, want);
    }

    #[test]
    fn disconnect_breaks_both_directions() {
        let plan = ChaosPlan::new(17)
            .with_rate(1.0)
            .only(&[WireFaultKind::Disconnect]);
        let mut s = ChaosStream::new(Cursor::new(frame(b"reply")), &plan, 0);
        s.write_all(&frame(b"req")).unwrap();
        s.flush().unwrap();
        // Nothing was delivered, and the stream is dead.
        assert_eq!(s.inner.position(), 0);
        let err = s.read(&mut [0u8; 8]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let err = s.write(b"more").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn partial_write_delivers_a_strict_prefix() {
        let plan = ChaosPlan::new(19)
            .with_rate(1.0)
            .only(&[WireFaultKind::PartialWrite]);
        let (out, ledger) = send(&plan, 0, &[b"0123456789"]);
        assert_eq!(ledger[0].kind, WireFaultKind::PartialWrite);
        let full = frame(b"0123456789");
        assert!(out.len() < full.len(), "strictly shorter: {}", out.len());
        assert!(out.len() >= 4, "at least the header escapes");
        assert_eq!(out, full[..out.len()]);
    }

    #[test]
    fn trickle_arms_the_read_side() {
        let plan = ChaosPlan::new(23)
            .with_rate(1.0)
            .only(&[WireFaultKind::Trickle]);
        let reply = b"pong".to_vec();
        let duplex = Duplex {
            reply: Cursor::new(reply.clone()),
            sent: Vec::new(),
        };
        let mut s = ChaosStream::new(duplex, &plan, 0);
        s.write_all(&frame(b"ping")).unwrap();
        s.flush().unwrap();
        // Reads now alternate one byte / one WouldBlock tick.
        let mut got = Vec::new();
        let mut ticks = 0;
        loop {
            let mut buf = [0u8; 16];
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    assert_eq!(n, 1, "one byte per read");
                    got.push(buf[0]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => ticks += 1,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert_eq!(got, reply);
        assert!(ticks >= reply.len() - 1, "ticks interleave bytes: {ticks}");
    }

    #[test]
    fn labels_are_unique_and_disjoint_from_ingest_kinds() {
        let labels: std::collections::HashSet<_> =
            WireFaultKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), WireFaultKind::ALL.len());
        for ingest in crate::FaultKind::ALL {
            assert!(!labels.contains(ingest.label()), "{}", ingest.label());
        }
    }

    #[test]
    fn partial_frames_stay_buffered_until_complete() {
        let plan = ChaosPlan::new(29);
        let mut s = ChaosStream::new(Vec::new(), &plan, 0);
        let full = frame(b"split");
        s.write_all(&full[..3]).unwrap();
        s.flush().unwrap();
        assert!(s.inner.is_empty(), "incomplete frame held back");
        s.write_all(&full[3..]).unwrap();
        s.flush().unwrap();
        assert_eq!(s.into_inner(), full);
    }
}
