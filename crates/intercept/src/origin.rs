//! Legitimate origin servers for the probed domains.
//!
//! Each Table 6 domain gets a real chain anchored in the shared web PKI
//! (a busy CA of the AOSP/Mozilla core), exactly what a device would see
//! without a middlebox in the path.

use crate::policy::Target;
use std::collections::HashMap;
use std::sync::Arc;
use tangled_pki::stores::{global_factory, shared_exact_name};
use tangled_x509::Certificate;

/// The origin-side view: legitimate chains per target.
pub struct OriginServers {
    chains: HashMap<Target, Vec<Arc<Certificate>>>,
    issuer_name: String,
}

impl OriginServers {
    /// Issue legitimate chains for the given targets under a busy shared
    /// web CA (deterministic).
    pub fn new(targets: &[Target]) -> OriginServers {
        // A popular CA from the shared core signs the real sites.
        let issuer_name = shared_exact_name(2);
        let mut factory = global_factory().lock().expect("factory poisoned");
        let issuer = factory.root(&issuer_name);
        let mut chains = HashMap::new();
        for (i, t) in targets.iter().enumerate() {
            let leaf = factory
                .leaf(&issuer_name, &issuer, &t.domain, 50_000 + i as u64)
                .expect("origin leaf issuance");
            chains.insert(t.clone(), vec![leaf]);
        }
        OriginServers {
            chains,
            issuer_name,
        }
    }

    /// Chains for the full Table 6 probe list.
    pub fn for_table6() -> OriginServers {
        let targets: Vec<Target> = crate::policy::INTERCEPTED_DOMAINS
            .iter()
            .chain(&crate::policy::WHITELISTED_DOMAINS)
            .filter_map(|s| Target::parse(s))
            .collect();
        OriginServers::new(&targets)
    }

    /// The legitimate chain for a target (leaf first, root omitted).
    pub fn chain(&self, target: &Target) -> Option<&[Arc<Certificate>]> {
        self.chains.get(target).map(|c| c.as_slice())
    }

    /// All targets served.
    pub fn targets(&self) -> impl Iterator<Item = &Target> {
        self.chains.keys()
    }

    /// The key name of the legitimate issuing CA (for pinning checks).
    pub fn issuer_name(&self) -> &str {
        &self.issuer_name
    }

    /// The identity of the legitimate issuing CA.
    pub fn issuer_identity(&self) -> tangled_x509::CertIdentity {
        let mut factory = global_factory().lock().expect("factory poisoned");
        factory.root(&self.issuer_name).identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_serves_every_table6_target() {
        let origin = OriginServers::for_table6();
        assert_eq!(origin.targets().count(), 21);
        let t = Target::parse("www.bankofamerica.com:443").unwrap();
        let chain = origin.chain(&t).unwrap();
        assert_eq!(chain.len(), 1);
        assert_eq!(
            chain[0].dns_names(),
            &["www.bankofamerica.com".to_string()]
        );
        // The leaf chains to the public web CA.
        let mut f = global_factory().lock().unwrap();
        let issuer = f.root(origin.issuer_name());
        drop(f);
        chain[0].verify_issued_by(&issuer).unwrap();
    }

    #[test]
    fn unknown_target_has_no_chain() {
        let origin = OriginServers::for_table6();
        assert!(origin.chain(&Target::new("nonexistent.example", 443)).is_none());
    }
}
