//! Served mode: drive the scenario's `probe_session` plan against a
//! live trustd over the resilient client.
//!
//! The request plan is the same [`crate::plan`] the offline
//! [`crate::compute`] evaluates in-process, and `probe_session` is
//! idempotent, so a served replay must reproduce the offline report
//! verdict-for-verdict — same ledger, same fingerprint. The chaos
//! variant injects seeded *lossy* wire faults (disconnect, partial
//! write, trickle) on the client side; faults cost retries, never
//! answers, so the fingerprint still matches.

use std::net::ToSocketAddrs;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use tangled_faults::chaos::{ChaosPlan, ChaosStream, WireFaultKind, WireLedger};
use tangled_trustd::{
    canonical, Connect, ResilientClient, Response, RetryPolicy, TcpConnector, TrustClient,
};

use crate::{tally, ScenarioReport, ScenarioSpec};

/// Outcome of one served scenario replay.
pub struct MitmOutcome {
    /// The tallied report — same shape as the offline one.
    pub report: ScenarioReport,
    /// Requests sent.
    pub requests: usize,
    /// `error` responses with stage `wire` (protocol errors).
    pub wire_errors: usize,
    /// TCP connections opened (keep-alive reuse makes this 1 clean).
    pub connects: u64,
    /// Client-side wire faults injected (chaos runs only).
    pub faults: usize,
    /// Wall-clock time spent replaying.
    pub elapsed: Duration,
}

/// Replay the scenario plan against a live server, pipelining `depth`
/// requests per round trip.
pub fn replay_mitm(
    addr: impl ToSocketAddrs + Clone,
    spec: &ScenarioSpec,
    depth: usize,
) -> Result<MitmOutcome, String> {
    let requests = crate::plan(spec).map_err(|e| format!("planning scenario: {e}"))?;
    let probe = TrustClient::connect_retry(addr.clone(), Duration::from_secs(5))
        .map_err(|e| format!("server never came up: {e}"))?;
    drop(probe);
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolving address: {e}"))?
        .next()
        .ok_or("address resolved to nothing")?;
    let mut client = ResilientClient::new(TcpConnector::new(addr), RetryPolicy::new(spec.seed));

    let depth = depth.max(1);
    let started = Instant::now();
    let mut verdicts = Vec::with_capacity(requests.len());
    let mut wire_errors = 0usize;
    for chunk in requests.chunks(depth) {
        let replies = client
            .call_pipelined(chunk)
            .map_err(|e| format!("scenario chunk: {e}"))?;
        for resp in &replies {
            if matches!(resp, Response::Error { stage, .. } if stage == "wire") {
                wire_errors += 1;
            }
            verdicts.push(canonical(resp));
        }
    }
    let elapsed = started.elapsed();

    Ok(MitmOutcome {
        report: tally(spec, &verdicts),
        requests: requests.len(),
        wire_errors,
        connects: client.reconnects(),
        faults: 0,
        elapsed,
    })
}

struct ChaosConnector {
    addr: std::net::SocketAddr,
    plan: ChaosPlan,
    salt: u64,
    ledger: WireLedger,
}

impl Connect for ChaosConnector {
    type Stream = ChaosStream<std::net::TcpStream>;

    fn connect(&mut self) -> std::io::Result<TrustClient<ChaosStream<std::net::TcpStream>>> {
        let stream = std::net::TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        self.salt += 1;
        Ok(TrustClient::from_stream(ChaosStream::with_ledger(
            stream,
            &self.plan,
            self.salt,
            Arc::clone(&self.ledger),
        )))
    }
}

/// Replay the scenario with seeded lossy wire faults on the client
/// side. `probe_session` is idempotent, so blind retries are safe and
/// the report must still match the clean run's fingerprint.
pub fn replay_mitm_chaos(
    addr: impl ToSocketAddrs,
    spec: &ScenarioSpec,
    chaos_seed: u64,
    chaos_rate: f64,
) -> Result<MitmOutcome, String> {
    let requests = crate::plan(spec).map_err(|e| format!("planning scenario: {e}"))?;
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolving address: {e}"))?
        .next()
        .ok_or("address resolved to nothing")?;
    let ledger: WireLedger = Arc::new(Mutex::new(Vec::new()));
    let plan = ChaosPlan::new(chaos_seed)
        .with_rate(chaos_rate)
        .only(&WireFaultKind::LOSSY);
    let connector = ChaosConnector {
        addr,
        plan,
        salt: 0,
        ledger: Arc::clone(&ledger),
    };
    let policy = RetryPolicy {
        max_attempts: 8,
        ..RetryPolicy::immediate(chaos_seed)
    };
    let mut client = ResilientClient::new(connector, policy);

    let started = Instant::now();
    let mut verdicts = Vec::with_capacity(requests.len());
    let mut wire_errors = 0usize;
    for req in &requests {
        let resp = client
            .call(req)
            .map_err(|e| format!("chaos scenario: {e}"))?;
        if matches!(&resp, Response::Error { stage, .. } if stage == "wire") {
            wire_errors += 1;
        }
        verdicts.push(canonical(&resp));
    }
    let elapsed = started.elapsed();
    let faults = ledger.lock().map(|l| l.len()).unwrap_or(0);

    Ok(MitmOutcome {
        report: tally(spec, &verdicts),
        requests: requests.len(),
        wire_errors,
        connects: client.reconnects(),
        faults,
        elapsed,
    })
}
