//! Chaos-hardened serving, end to end: the deterministic chaos harness,
//! lossy wire faults over real TCP recovered by the resilient client,
//! admission-control shedding, and degraded-mode warm starts from a
//! damaged snapshot.

use std::sync::Arc;
use tangled_mass::analysis::Study;
use tangled_mass::faults::chaos::WireFaultKind;
use tangled_mass::snap::{write_study, SectionId, Snapshot};
use tangled_mass::trustd::{
    chaos, degraded_index_from_snapshot, offline_verdicts, replay_resilient, ChaosSpec, Connect,
    ReplaySpec, Request, ResilientClient, ResilientError, RetryPolicy, ServerConfig, TcpConnector,
    TrustServer, TrustService, DEFAULT_CACHE_CAPACITY,
};
use tangled_mass::trustd::wire::{ChainVerdict, Response};

fn temp_path(tag: &str) -> String {
    let dir = std::env::temp_dir().join("tangled-chaos-serving");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}-{}.bin", std::process::id()))
        .to_string_lossy()
        .into_owned()
}

/// The acceptance contract for `tangled chaos`: a fixed seed produces a
/// byte-identical ledger across runs, and the conservation invariant
/// holds — every request is answered-correct, shed-with-busy, or
/// failed-with-classified-fault.
#[test]
fn chaos_harness_is_deterministic_and_conserved() {
    let spec = ChaosSpec {
        requests: 60,
        ..ChaosSpec::default()
    };
    let a = chaos::run(&spec);
    let b = chaos::run(&spec);
    assert_eq!(a.ledger, b.ledger, "fixed seed, identical ledger bytes");
    assert!(a.conserved(), "conservation violated:\n{}", a.ledger);
    assert_eq!(a.issued, 60);
    assert!(
        !a.fault_counts.is_empty(),
        "the default schedule must inject faults"
    );
}

/// Lossy wire faults over *real* TCP: the resilient client retries
/// through disconnects, partial writes and trickled bytes, and the
/// served verdicts still match the offline study byte for byte — faults
/// cost retries, never answers.
#[test]
fn lossy_chaos_over_tcp_preserves_verdicts() {
    let spec = ReplaySpec::new(2014, 40);
    let expected = offline_verdicts(&spec);

    let service = Arc::new(TrustService::new(DEFAULT_CACHE_CAPACITY));
    let server = TrustServer::bind("127.0.0.1:0", Arc::clone(&service), 4).expect("bind");
    let outcome =
        replay_resilient(server.local_addr(), &spec, 11, 0.3).expect("chaos replay");
    server.shutdown();

    assert_eq!(outcome.wire_errors, 0, "lossy faults never corrupt a request");
    assert_eq!(
        outcome.verdicts, expected,
        "verdicts under chaos must match the offline study"
    );
    assert!(
        outcome.faults > 0,
        "rate 0.3 over {} requests must inject faults",
        outcome.requests
    );
    assert!(
        outcome.reconnects > 1,
        "breaking faults must force reconnects (got {})",
        outcome.reconnects
    );
}

/// A zero-backlog server sheds every arrival with an explicit `busy`
/// frame; the resilient client classifies the exhaustion as `Shed`, not
/// a timeout or a hang.
#[test]
fn zero_backlog_shedding_is_classified() {
    let service = Arc::new(TrustService::new(16));
    let server = TrustServer::bind_with(
        "127.0.0.1:0",
        Arc::clone(&service),
        ServerConfig {
            workers: 1,
            backlog: 0,
            ..ServerConfig::default()
        },
    )
    .expect("bind");

    let mut connector = TcpConnector::new(server.local_addr());
    connector.response_ticks = Some(50);
    let mut client = ResilientClient::new(connector, RetryPolicy::immediate(3));
    let err = client.call(&Request::Stats).expect_err("must be shed");
    assert_eq!(err, ResilientError::Shed { attempts: 4 });
    assert_eq!(client.busy_count(), 4, "every attempt answered busy");
    server.shutdown();
}

/// Acceptance: a snapshot with one corrupted (non-store) section still
/// warm-starts; every reference profile serves, and the quarantined
/// section is visible in the `stats` document.
#[test]
fn degraded_warm_start_serves_and_reports() {
    let path = temp_path("degraded-section");
    let study = Study::new(0.05, 0.02);
    write_study(&study, &path).expect("snapshot writes");

    // Flip one byte inside the validation section's body.
    let snap = Snapshot::open(&path).expect("open");
    let pos = SectionId::ALL
        .iter()
        .position(|id| id.name() == "validation")
        .expect("validation section");
    let entry = &snap.entries()[pos];
    let offset = entry.offset as usize + (entry.len as usize) / 2;
    drop(snap);
    let mut bytes = std::fs::read(&path).expect("read");
    bytes[offset] ^= 0x40;
    std::fs::write(&path, &bytes).expect("corrupt");

    let start = degraded_index_from_snapshot(&path).expect("degraded start");
    assert!(!start.fallback, "store section is intact");
    assert_eq!(
        start.quarantined,
        vec![("validation".to_owned(), "checksum-mismatch".to_owned())]
    );

    let service = TrustService::with_index(start.index, DEFAULT_CACHE_CAPACITY);
    for (unit, label) in &start.quarantined {
        service.stats().record_degraded(unit, label);
    }

    // Every standard profile (reference + ecosystem) answers validate
    // requests.
    let profiles = service.index().profile_names();
    assert_eq!(profiles.len(), 10, "all ten standard profiles serve");
    let chain = tangled_mass::intercept::origin::OriginServers::for_table6()
        .targets()
        .next()
        .map(|t| {
            tangled_mass::intercept::origin::OriginServers::for_table6()
                .chain(t)
                .expect("chain")
                .iter()
                .map(|c| c.to_der().to_vec())
                .collect::<Vec<_>>()
        })
        .expect("a table-6 target");
    for profile in &profiles {
        let resp = service.handle(&Request::Validate {
            profile: profile.clone(),
            chain: chain.clone(),
        });
        assert!(
            matches!(
                &resp,
                Response::Validate {
                    verdict: ChainVerdict::Trusted { .. } | ChainVerdict::Untrusted { .. },
                    ..
                }
            ),
            "profile {profile} must answer, got {resp:?}"
        );
    }

    // The degradation is visible in stats.
    let doc = service.stats_document();
    assert_eq!(doc["warm"]["degraded"].as_bool(), Some(true));
    let quarantined = doc["warm"]["quarantined"]
        .as_array()
        .expect("quarantine list");
    assert_eq!(quarantined.len(), 1);
    assert_eq!(quarantined[0]["section"].as_str(), Some("validation"));
    assert_eq!(quarantined[0]["error"].as_str(), Some("checksum-mismatch"));

    let _ = std::fs::remove_file(&path);
}

/// A corrupted *store* section cannot be partially salvaged (its cursor
/// is sequential), so the degraded start falls back to cold-generated
/// reference profiles — the server answers with correct stores either
/// way.
#[test]
fn degraded_warm_start_falls_back_on_store_corruption() {
    let path = temp_path("degraded-stores");
    let study = Study::new(0.05, 0.02);
    write_study(&study, &path).expect("snapshot writes");

    let snap = Snapshot::open(&path).expect("open");
    let pos = SectionId::ALL
        .iter()
        .position(|id| id.name() == "stores")
        .expect("stores section");
    let entry = &snap.entries()[pos];
    let offset = entry.offset as usize + 3;
    drop(snap);
    let mut bytes = std::fs::read(&path).expect("read");
    bytes[offset] ^= 0x01;
    std::fs::write(&path, &bytes).expect("corrupt");

    let start = degraded_index_from_snapshot(&path).expect("degraded start");
    assert!(start.fallback, "store damage forces the cold fallback");
    assert!(
        start
            .quarantined
            .iter()
            .any(|(unit, label)| unit == "stores" && label == "checksum-mismatch"),
        "quarantine must name the stores section: {:?}",
        start.quarantined
    );
    assert_eq!(
        start.index.profile_names().len(),
        10,
        "cold fallback still serves every standard profile"
    );
    let _ = std::fs::remove_file(&path);
}

/// The per-kind sweep at rate 1.0: conservation must hold when every
/// frame carries each single fault kind — no kind may produce an
/// unclassified loss.
#[test]
fn conservation_survives_every_fault_kind_at_full_rate() {
    for kind in WireFaultKind::ALL {
        let spec = ChaosSpec {
            requests: 8,
            rate: 1.0,
            busy_rate: 0.0,
            kinds: vec![kind],
            ..ChaosSpec::default()
        };
        let report = chaos::run(&spec);
        assert!(
            report.conserved(),
            "conservation violated under {kind}:\n{}",
            report.ledger
        );
    }
}

/// The `Connect` abstraction is honoured end to end: a connector that
/// refuses every connection surfaces as classified exhaustion, not a
/// panic or hang.
#[test]
fn refused_connections_exhaust_with_classification() {
    struct Refuser;
    impl Connect for Refuser {
        type Stream = std::net::TcpStream;
        fn connect(
            &mut self,
        ) -> std::io::Result<tangled_mass::trustd::TrustClient<std::net::TcpStream>> {
            Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "nope",
            ))
        }
    }
    let mut client = ResilientClient::new(Refuser, RetryPolicy::immediate(5));
    let err = client.call(&Request::Stats).expect_err("must exhaust");
    assert_eq!(
        err,
        ResilientError::Exhausted {
            label: "connect-failed",
            attempts: 4
        }
    );
}
