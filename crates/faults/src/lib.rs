//! `tangled-faults` — deterministic fault injection for ingest surfaces.
//!
//! The paper's core finding is that real Android root stores are *messy*:
//! rooted devices inject garbage anchors, proxies re-sign chains on the
//! fly, and stores ship expired or dead roots. The analysis pipeline must
//! therefore survive degraded input. This crate supplies the degradation:
//! a seeded [`FaultPlan`] drives kind-addressable injectors over any
//! ingest surface that implements [`Corruptor`] — Notary certificate
//! ecosystems ([`tangled_notary`]'s raw form), Android `cacerts`
//! directories ([`Vec<CacertsFile>`], implemented here), and, through the
//! cacerts rendering, Netalyzr device stores.
//!
//! Design rules:
//!
//! * **Deterministic.** Same plan, same surface → same faults, byte for
//!   byte. The driver derives one RNG from `seed ^ salt` and walks units
//!   in order, so ledgers reproduce exactly.
//! * **Detectable by construction.** Every injector is constrained so
//!   that a staged ingest check (parse → validity window → issuer graph →
//!   signature → duplicates) catches it: DER bit flips only land inside
//!   the signed TBS region of verifiable chains, signature breakage only
//!   targets chains whose issuer key is available at ingest, and so on.
//!   A quarantine count can therefore be reconciled 1:1 against the
//!   injection ledger.
//! * **One fault per unit.** The driver never stacks faults, so every
//!   ledger entry corresponds to exactly one quarantined unit downstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cacerts;
pub mod chaos;
pub mod der;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every fault kind the engine can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultKind {
    /// Truncate a certificate's DER to a strict prefix.
    DerTruncation,
    /// Smash a DER tag byte (outer or TBS SEQUENCE).
    DerTagMangle,
    /// Flip one bit inside the signed TBS region.
    DerBitFlip,
    /// Corrupt bytes of the trailing signature BIT STRING.
    SignatureBreak,
    /// Swap notBefore/notAfter so the validity window is inverted.
    ValidityInversion,
    /// Replace a presented issuer with an unrelated certificate.
    IssuerDangling,
    /// Append the leaf as its own issuer (adjacent duplicate).
    IssuerSelfLoop,
    /// Repeat a certificate non-adjacently in the chain (a cycle).
    IssuerCycle,
    /// Corrupt PEM armor (BEGIN/END label damage).
    PemArmor,
    /// Corrupt the Base64 body (illegal character or broken padding).
    Base64Corruption,
    /// Replace an entry's content with nothing.
    EmptyEntry,
    /// Duplicate an entry verbatim.
    DuplicateEntry,
}

impl FaultKind {
    /// All kinds, in declaration order.
    pub const ALL: [FaultKind; 12] = [
        FaultKind::DerTruncation,
        FaultKind::DerTagMangle,
        FaultKind::DerBitFlip,
        FaultKind::SignatureBreak,
        FaultKind::ValidityInversion,
        FaultKind::IssuerDangling,
        FaultKind::IssuerSelfLoop,
        FaultKind::IssuerCycle,
        FaultKind::PemArmor,
        FaultKind::Base64Corruption,
        FaultKind::EmptyEntry,
        FaultKind::DuplicateEntry,
    ];

    /// Stable label for reports and health keys.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::DerTruncation => "der-truncation",
            FaultKind::DerTagMangle => "der-tag-mangle",
            FaultKind::DerBitFlip => "der-bit-flip",
            FaultKind::SignatureBreak => "signature-break",
            FaultKind::ValidityInversion => "validity-inversion",
            FaultKind::IssuerDangling => "issuer-dangling",
            FaultKind::IssuerSelfLoop => "issuer-self-loop",
            FaultKind::IssuerCycle => "issuer-cycle",
            FaultKind::PemArmor => "pem-armor",
            FaultKind::Base64Corruption => "base64-corruption",
            FaultKind::EmptyEntry => "empty-entry",
            FaultKind::DuplicateEntry => "duplicate-entry",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One fault the engine injected: what was done, and to which unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The kind of damage.
    pub kind: FaultKind,
    /// Human-readable label of the damaged unit (file name, chain index…).
    pub target: String,
}

/// A degradable ingest surface.
///
/// A surface is a sequence of *units* (one presented chain, one cacerts
/// file). The driver samples units at the plan's rate, asks the surface
/// which kinds apply to that unit, and delegates the actual damage back
/// to the surface. Injectors may grow the surface (duplicates append),
/// but the driver only ever visits the units present when degradation
/// started, so appended copies are never themselves corrupted.
pub trait Corruptor {
    /// Number of units currently on the surface.
    fn unit_count(&self) -> usize;

    /// Fault kinds that are injectable — *and detectable downstream* —
    /// for the unit at `index`.
    fn supported(&self, index: usize) -> Vec<FaultKind>;

    /// Apply one fault of `kind` to the unit at `index`. Returns `None`
    /// when the unit turned out not to admit the fault (the ledger then
    /// records nothing).
    fn inject(&mut self, index: usize, kind: FaultKind, rng: &mut StdRng)
        -> Option<InjectedFault>;
}

/// A seeded, rate- and kind-addressable fault schedule.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Master seed; combined with a per-surface salt.
    pub seed: u64,
    /// Per-unit injection probability in `[0, 1]`.
    pub rate: f64,
    enabled: Vec<FaultKind>,
}

impl FaultPlan {
    /// A plan with the given seed, zero rate and every kind enabled.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rate: 0.0,
            enabled: FaultKind::ALL.to_vec(),
        }
    }

    /// Set the per-unit injection rate.
    pub fn with_rate(mut self, rate: f64) -> FaultPlan {
        assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
        self.rate = rate;
        self
    }

    /// Restrict the plan to exactly these kinds.
    pub fn only(mut self, kinds: &[FaultKind]) -> FaultPlan {
        self.enabled = kinds.to_vec();
        self
    }

    /// Remove one kind from the plan.
    pub fn without(mut self, kind: FaultKind) -> FaultPlan {
        self.enabled.retain(|k| *k != kind);
        self
    }

    /// Is a kind enabled in this plan?
    pub fn is_enabled(&self, kind: FaultKind) -> bool {
        self.enabled.contains(&kind)
    }

    /// Degrade a surface in place, returning the ledger of every fault
    /// actually injected. `salt` distinguishes surfaces degraded under
    /// one plan (two device stores, the notary ecosystem…) so their
    /// fault positions decorrelate while staying deterministic.
    pub fn degrade<C: Corruptor + ?Sized>(&self, surface: &mut C, salt: u64) -> Vec<InjectedFault> {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut ledger = Vec::new();
        // Snapshot the count: injectors that append (duplication) must not
        // make their copies eligible for further damage.
        let original = surface.unit_count();
        for index in 0..original {
            if !rng.gen_bool(self.rate) {
                continue;
            }
            let kinds: Vec<FaultKind> = surface
                .supported(index)
                .into_iter()
                .filter(|k| self.is_enabled(*k))
                .collect();
            if kinds.is_empty() {
                continue;
            }
            let kind = kinds[rng.gen_range(0..kinds.len())];
            if let Some(fault) = surface.inject(index, kind, &mut rng) {
                ledger.push(fault);
            }
        }
        ledger
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy surface: units are byte vectors; "corruption" clears them.
    struct Toy {
        units: Vec<Vec<u8>>,
    }

    impl Corruptor for Toy {
        fn unit_count(&self) -> usize {
            self.units.len()
        }
        fn supported(&self, _index: usize) -> Vec<FaultKind> {
            vec![FaultKind::EmptyEntry, FaultKind::DuplicateEntry]
        }
        fn inject(
            &mut self,
            index: usize,
            kind: FaultKind,
            _rng: &mut StdRng,
        ) -> Option<InjectedFault> {
            match kind {
                FaultKind::EmptyEntry => self.units[index].clear(),
                FaultKind::DuplicateEntry => {
                    let copy = self.units[index].clone();
                    self.units.push(copy);
                }
                _ => return None,
            }
            Some(InjectedFault {
                kind,
                target: format!("unit-{index}"),
            })
        }
    }

    fn toy(n: usize) -> Toy {
        Toy {
            units: (0..n).map(|i| vec![i as u8; 4]).collect(),
        }
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let mut t = toy(64);
        let ledger = FaultPlan::new(7).degrade(&mut t, 0);
        assert!(ledger.is_empty());
        assert!(t.units.iter().all(|u| !u.is_empty()));
    }

    #[test]
    fn full_rate_touches_every_unit() {
        let mut t = toy(32);
        let ledger = FaultPlan::new(7).with_rate(1.0).degrade(&mut t, 0);
        assert_eq!(ledger.len(), 32);
    }

    #[test]
    fn rate_tracks_probability() {
        let mut t = toy(2_000);
        let ledger = FaultPlan::new(11).with_rate(0.05).degrade(&mut t, 0);
        assert!(
            (60..140).contains(&ledger.len()),
            "expected ≈100 faults, got {}",
            ledger.len()
        );
    }

    #[test]
    fn same_seed_same_ledger() {
        let mk = || {
            let mut t = toy(500);
            FaultPlan::new(42).with_rate(0.1).degrade(&mut t, 3)
        };
        assert_eq!(mk(), mk());
        // A different salt decorrelates.
        let mut t = toy(500);
        let other = FaultPlan::new(42).with_rate(0.1).degrade(&mut t, 4);
        assert_ne!(mk(), other);
    }

    #[test]
    fn kind_addressing_filters() {
        let mut t = toy(200);
        let plan = FaultPlan::new(5)
            .with_rate(1.0)
            .only(&[FaultKind::EmptyEntry]);
        let ledger = plan.degrade(&mut t, 0);
        assert_eq!(ledger.len(), 200);
        assert!(ledger.iter().all(|f| f.kind == FaultKind::EmptyEntry));
        // `without` removes the last enabled kind → nothing applies.
        let plan = plan.without(FaultKind::EmptyEntry);
        let mut t = toy(50);
        assert!(plan.degrade(&mut t, 0).is_empty());
    }

    #[test]
    fn appended_duplicates_are_not_revisited() {
        let mut t = toy(40);
        let plan = FaultPlan::new(9)
            .with_rate(1.0)
            .only(&[FaultKind::DuplicateEntry]);
        let ledger = plan.degrade(&mut t, 0);
        assert_eq!(ledger.len(), 40);
        assert_eq!(t.units.len(), 80);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            FaultKind::ALL.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), FaultKind::ALL.len());
    }
}
