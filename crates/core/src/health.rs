//! Run-health accounting for degraded studies.
//!
//! A degraded run quarantines damaged inputs instead of aborting;
//! [`RunHealth`] is the ledger that proves nothing was silently dropped.
//! It counts injected faults per [`tangled_faults::FaultKind`] label and
//! quarantined units per `(stage, error)` pair, and the two sides must
//! reconcile: every injected fault corresponds to exactly one quarantined
//! unit (the injectors are detectable-by-construction), so
//! [`RunHealth::is_balanced`] holding is the whole pipeline's
//! graceful-degradation invariant.
//!
//! Attribution is by *detection* stage, not injected kind: a TBS bit flip
//! may surface as a parse error, an inverted window, a dangling issuer, or
//! a bad signature, so the per-kind and per-stage breakdowns differ while
//! the totals match.

use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Fault accounting for one study run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunHealth {
    /// Injected faults: fault-kind label → count.
    pub injected: BTreeMap<String, u32>,
    /// Quarantined units: detection stage → error label → count.
    pub quarantined: BTreeMap<String, BTreeMap<String, u32>>,
}

impl RunHealth {
    /// An empty (healthy) report.
    pub fn new() -> RunHealth {
        RunHealth::default()
    }

    /// Record one injected fault under its kind label.
    pub fn record_injected(&mut self, kind: &str) {
        *self.injected.entry(kind.to_owned()).or_default() += 1;
    }

    /// Record one quarantined unit under its detection stage and error.
    pub fn record_quarantined(&mut self, stage: &str, error: &str) {
        *self
            .quarantined
            .entry(stage.to_owned())
            .or_default()
            .entry(error.to_owned())
            .or_default() += 1;
    }

    /// Total faults injected.
    pub fn injected_total(&self) -> u32 {
        self.injected.values().sum()
    }

    /// Total units quarantined.
    pub fn quarantined_total(&self) -> u32 {
        self.quarantined.values().flat_map(|m| m.values()).sum()
    }

    /// Does every injected fault account for exactly one quarantined
    /// unit? True for healthy (zero/zero) runs too.
    pub fn is_balanced(&self) -> bool {
        self.injected_total() == self.quarantined_total()
    }

    /// Render for the export schema (v2 `health` section).
    pub fn to_json(&self) -> Value {
        let quarantined: BTreeMap<String, Value> = self
            .quarantined
            .iter()
            .map(|(stage, errors)| (stage.clone(), Value::from(errors.clone())))
            .collect();
        json!({
            "injected_total": self.injected_total(),
            "quarantined_total": self.quarantined_total(),
            "balanced": self.is_balanced(),
            "injected": self.injected.clone(),
            "quarantined": quarantined,
        })
    }
}

impl std::fmt::Display for RunHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "run health: {} injected, {} quarantined ({})",
            self.injected_total(),
            self.quarantined_total(),
            if self.is_balanced() { "balanced" } else { "UNBALANCED" }
        )?;
        for (kind, n) in &self.injected {
            writeln!(f, "  injected {kind}: {n}")?;
        }
        for (stage, errors) in &self.quarantined {
            for (error, n) in errors {
                writeln!(f, "  quarantined at {stage} [{error}]: {n}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_balance() {
        let mut h = RunHealth::new();
        assert!(h.is_balanced());
        h.record_injected("der-bit-flip");
        h.record_injected("der-bit-flip");
        h.record_injected("empty-entry");
        assert_eq!(h.injected_total(), 3);
        assert!(!h.is_balanced());
        h.record_quarantined("parse", "malformed-der");
        h.record_quarantined("signature", "bad-signature");
        h.record_quarantined("parse", "empty-chain");
        assert_eq!(h.quarantined_total(), 3);
        assert!(h.is_balanced());
        assert_eq!(h.injected["der-bit-flip"], 2);
        assert_eq!(h.quarantined["parse"]["malformed-der"], 1);
    }

    #[test]
    fn identical_recordings_compare_equal() {
        let mk = || {
            let mut h = RunHealth::new();
            h.record_injected("pem-armor");
            h.record_quarantined("cacerts", "pem-armor");
            h
        };
        assert_eq!(mk(), mk());
        let mut other = mk();
        other.record_injected("pem-armor");
        assert_ne!(mk(), other);
    }

    #[test]
    fn json_shape() {
        let mut h = RunHealth::new();
        h.record_injected("base64-corruption");
        h.record_quarantined("cacerts", "bad-base64");
        let v = h.to_json();
        assert_eq!(v["injected_total"], 1u32);
        assert_eq!(v["quarantined_total"], 1u32);
        assert_eq!(v["balanced"], true);
        assert_eq!(v["injected"]["base64-corruption"], 1u32);
        assert_eq!(v["quarantined"]["cacerts"]["bad-base64"], 1u32);
        // Round-trips through text.
        let text = serde_json::to_string(&v).unwrap();
        assert_eq!(serde_json::from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn display_mentions_balance() {
        let mut h = RunHealth::new();
        h.record_injected("der-truncation");
        let text = h.to_string();
        assert!(text.contains("1 injected"));
        assert!(text.contains("UNBALANCED"));
        h.record_quarantined("parse", "malformed-der");
        assert!(h.to_string().contains("balanced"));
    }
}
