//! Quickstart: build root stores, diff them, and inspect trust.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through the core API: reference stores (Table 1), the paper's
//! certificate-identity equivalence, store diffing, and the Android
//! trust-scoping gap (§2/§8).

use tangled_mass::analysis::tables;
use tangled_mass::pki::diff::{diff, distinct_count, IdentityMode};
use tangled_mass::pki::stores::{global_factory, ReferenceStore};
use tangled_mass::pki::trust::TrustBits;

fn main() {
    // --- Table 1: the reference stores -----------------------------------
    println!("{}", tables::table1().render());

    // --- Store diffing: what does AOSP 4.4 add over 4.1? -----------------
    let aosp41 = ReferenceStore::Aosp41.cached();
    let aosp44 = ReferenceStore::Aosp44.cached();
    let d = diff(&aosp41, &aosp44);
    println!(
        "AOSP 4.1 → 4.4: +{} anchors, -{} anchors (releases only grow)\n",
        d.added_count(),
        d.removed_count()
    );

    // --- The paper's equivalence: AOSP 4.4 vs Mozilla --------------------
    let mozilla = ReferenceStore::Mozilla.cached();
    let d = diff(&mozilla, &aosp44);
    println!(
        "AOSP 4.4 ∩ Mozilla: {} equivalent anchors (subject + RSA modulus)",
        d.common.len()
    );
    let all: Vec<_> = aosp44
        .iter()
        .chain(mozilla.iter())
        .map(|a| a.cert.as_ref().clone())
        .collect();
    println!(
        "distinct certs across both stores: {} by bytes, {} by identity",
        distinct_count(all.iter(), IdentityMode::ByteHash),
        distinct_count(all.iter(), IdentityMode::SubjectAndModulus),
    );

    // --- The expired root AOSP still ships (§2) --------------------------
    let study = tangled_mass::notary::ecosystem::study_time();
    for anchor in aosp44.iter().filter(|a| a.cert.is_expired_at(study)) {
        println!(
            "\nexpired but still trusted: {} (expired {})",
            anchor.cert.subject, anchor.cert.not_after
        );
    }

    // --- Android's missing trust scoping (§8) -----------------------------
    let mut scoped = aosp44.cloned_as("AOSP 4.4, Mozilla-style scoping");
    let ids: Vec<_> = scoped.identities().to_vec();
    for id in &ids {
        scoped.set_trust(id, TrustBits::tls_only());
    }
    let code_signing_trusted = scoped
        .iter()
        .filter(|a| a.trust.code_signing)
        .count();
    println!(
        "\nafter applying the paper's scoping recommendation: {} of {} anchors \
         remain trusted for code signing (stock Android: all of them)",
        code_signing_trusted,
        scoped.len()
    );

    // --- Mint your own CA and chain ---------------------------------------
    let mut factory = global_factory().lock().expect("factory");
    let root = factory.root("Quickstart Demo Root CA");
    let leaf = factory
        .leaf("Quickstart Demo Root CA", &root, "demo.example.org", 1)
        .expect("issuance");
    leaf.verify_issued_by(&root).expect("chain verifies");
    println!(
        "\nminted and verified a fresh chain: {} ← {}",
        leaf.subject, root.subject
    );
}
