//! The TCP front-end: std-only listener plus worker thread pool.
//!
//! An accept thread feeds connections into an `mpsc` channel; N worker
//! threads drain it, each running the frame loop for one connection at a
//! time. Workers poll a stop flag between read-timeout ticks, so
//! [`TrustServer::shutdown`] converges without killing in-flight
//! requests.
//!
//! Protocol failures follow the quarantine discipline, not the
//! drop-the-connection one: an undecodable *message* gets an `error`
//! reply and the connection lives on. An *oversized* frame is recoverable
//! too — its header declares exactly where the next frame boundary is, so
//! the worker drains the declared body (bounded, same stall budget as a
//! read), replies with the classified error, and keeps serving. Only
//! mid-frame truncation, where the boundary is genuinely lost, closes the
//! stream after a best-effort error reply — either way the fault is
//! recorded in the service's health ledger first.
//!
//! Every connection runs under a `trustd.conn` observability span and the
//! accept/worker path maintains `trustd.conn.*` registry gauges, so a
//! loaded server can be read from its metrics dump.

use crate::service::TrustService;
use crate::wire::{self, FrameError, Request, Response, WireError};
use serde_json::Value;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use tangled_obs::{registry as metrics, trace};

/// How long a worker blocks in `read` before polling the stop flag.
pub(crate) const READ_TICK: Duration = Duration::from_millis(50);

/// Admission and deadline knobs for a [`TrustServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads draining the accept queue (minimum 1).
    pub workers: usize,
    /// Maximum connections waiting for a worker. Arrivals beyond the
    /// budget are *shed*: the accept thread replies `busy` and closes,
    /// instead of queueing unboundedly.
    pub backlog: usize,
    /// How many consecutive idle [`READ_TICK`]s a connection may sit at a
    /// frame boundary before the server closes it. 1200 ticks ≈ one
    /// minute: an abandoned socket cannot pin a worker forever.
    pub idle_ticks: u32,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 4,
            backlog: 1024,
            idle_ticks: 1200,
        }
    }
}

/// A running trustd server.
pub struct TrustServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl TrustServer {
    /// Bind `addr` and start `workers` worker threads (minimum 1), with
    /// default admission control.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<TrustService>,
        workers: usize,
    ) -> io::Result<TrustServer> {
        TrustServer::bind_with(
            addr,
            service,
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
    }

    /// Bind `addr` with explicit admission-control configuration.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: Arc<TrustService>,
        config: ServerConfig,
    ) -> io::Result<TrustServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));

        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        // The admission counter: incremented at accept, decremented when
        // a worker picks the connection up. The registry gauge mirrors it
        // for observability; this atomic is the decision input.
        let queued = Arc::new(AtomicUsize::new(0));

        let worker_handles = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let service = Arc::clone(&service);
                let stop = Arc::clone(&stop);
                let queued = Arc::clone(&queued);
                let idle_ticks = config.idle_ticks;
                std::thread::spawn(move || {
                    worker_loop(&rx, &service, &stop, &queued, idle_ticks)
                })
            })
            .collect();

        let accept_stop = Arc::clone(&stop);
        let backlog = config.backlog;
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(mut stream) => {
                        metrics::add("trustd.conn.accepted", 1);
                        if queued.load(Ordering::SeqCst) >= backlog {
                            // Over budget: shed visibly. The peer gets an
                            // explicit `busy` frame, not a silent RST.
                            metrics::add("trustd.admission.shed", 1);
                            let _ = wire::write_frame(
                                &mut stream,
                                &Response::Busy.encode(),
                            );
                            // Drain whatever the peer already sent before
                            // closing: dropping a socket with unread input
                            // raises an RST that can destroy the in-flight
                            // `busy` frame. Bounded by one read timeout, so
                            // a shed storm cannot pin the accept thread.
                            let _ = stream.set_read_timeout(Some(READ_TICK));
                            let mut sink = [0u8; 4096];
                            for _ in 0..64 {
                                match stream.read(&mut sink) {
                                    Ok(n) if n > 0 => {}
                                    _ => break,
                                }
                            }
                            continue;
                        }
                        queued.fetch_add(1, Ordering::SeqCst);
                        metrics::gauge_add("trustd.conn.queued", 1);
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // Dropping `tx` closes the channel; workers drain and exit.
        });

        Ok(TrustServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            workers: worker_handles,
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stop accepting, finish queued connections, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop: it blocks in `accept`, so poke it with a
        // throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(
    rx: &Arc<Mutex<Receiver<TcpStream>>>,
    service: &Arc<TrustService>,
    stop: &Arc<AtomicBool>,
    queued: &Arc<AtomicUsize>,
    idle_ticks: u32,
) {
    loop {
        let stream = {
            let guard = rx.lock().expect("receiver poisoned");
            match guard.recv_timeout(READ_TICK) {
                Ok(stream) => Some(stream),
                Err(mpsc::RecvTimeoutError::Timeout) => None,
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        };
        match stream {
            Some(stream) => {
                queued.fetch_sub(1, Ordering::SeqCst);
                metrics::gauge_add("trustd.conn.queued", -1);
                handle_connection(stream, service, stop, idle_ticks);
            }
            None if stop.load(Ordering::SeqCst) => break,
            None => continue,
        }
    }
}

fn handle_connection(
    mut stream: TcpStream,
    service: &Arc<TrustService>,
    stop: &Arc<AtomicBool>,
    idle_ticks: u32,
) {
    // Monotonic connection index: the span unit for live tracing. (Live
    // serving is inherently scheduling-dependent, so these spans are not
    // part of the pipeline's byte-identical trace contract.)
    static CONN_SEQ: AtomicU64 = AtomicU64::new(0);
    let conn = CONN_SEQ.fetch_add(1, Ordering::Relaxed);
    let span = trace::span_start("trustd.conn", 0, conn, &[]);
    metrics::gauge_add("trustd.conn.active", 1);

    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_nodelay(true);
    let served = serve_connection(&mut stream, service, stop, idle_ticks, span);

    metrics::gauge_add("trustd.conn.active", -1);
    trace::span_end("trustd.conn", span, &[("served", Value::from(served))]);
}

/// The frame loop for one connection, generic over the stream so
/// loopback tests and the in-process chaos harness can drive it over
/// simulated transports. Returns the number of requests served.
///
/// The stream must report read timeouts as `WouldBlock`/`TimedOut` at
/// frame boundaries for the stop flag and the idle deadline to be
/// polled (a TCP stream configured with [`READ_TICK`], or a simulated
/// stream that yields `WouldBlock`); a stream that simply blocks still
/// serves correctly but only notices shutdown on activity.
pub(crate) fn serve_connection<S: Read + Write>(
    stream: &mut S,
    service: &TrustService,
    stop: &AtomicBool,
    idle_ticks: u32,
    span: u64,
) -> u64 {
    let mut served = 0u64;
    let mut idle = 0u32;
    loop {
        match wire::read_frame(stream) {
            Ok(None) => break,
            Ok(Some(body)) => {
                idle = 0;
                let reply = match Request::decode(&body) {
                    Ok(req) => {
                        served += 1;
                        service.handle(&req)
                    }
                    // Bad message, good framing: classify, reply, carry on.
                    Err(e) => {
                        record_wire_trace(span, &e);
                        service.record_wire_fault(&e)
                    }
                };
                if wire::write_frame(stream, &reply.encode()).is_err() {
                    break;
                }
            }
            Err(FrameError::Io(e)) if wire::is_timeout(&e) => {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                idle += 1;
                if idle > idle_ticks {
                    // An abandoned connection at a frame boundary: close
                    // it so the worker frees up. Not a protocol fault —
                    // just a deadline.
                    metrics::add("trustd.conn.idle_closed", 1);
                    break;
                }
            }
            Err(FrameError::Io(_)) => break,
            Err(FrameError::Wire(e)) => {
                idle = 0;
                record_wire_trace(span, &e);
                let reply = service.record_wire_fault(&e);
                if let WireError::Oversized { len } = e {
                    // The rejected header still declares the body length,
                    // so the next frame boundary is known: drain the
                    // oversized body (bounded scratch, same stall budget
                    // as a read), reply, and keep serving the connection.
                    if wire::drain_frame_body(stream, len).is_err() {
                        let _ = wire::write_frame(stream, &reply.encode());
                        break;
                    }
                    if wire::write_frame(stream, &reply.encode()).is_err() {
                        break;
                    }
                } else {
                    // Truncation: the boundary is genuinely lost.
                    let _ = wire::write_frame(stream, &reply.encode());
                    break;
                }
            }
        }
    }
    served
}

/// Record a wire fault into the metrics registry and, when a trace is
/// live, as a quarantine event on the connection span.
pub(crate) fn record_wire_trace(span: u64, e: &WireError) {
    metrics::add("trustd.wire_faults", 1);
    trace::quarantine("trustd.conn", span, "wire", e.label(), 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TrustClient;
    use crate::wire::Response;

    #[test]
    fn server_round_trips_and_shuts_down() {
        let service = Arc::new(TrustService::new(16));
        let server =
            TrustServer::bind("127.0.0.1:0", Arc::clone(&service), 2).expect("bind");
        let addr = server.local_addr();

        let mut client = TrustClient::connect(addr).expect("connect");
        match client.call(&Request::Stats).expect("stats call") {
            Response::Stats(doc) => {
                assert!(doc["served"].as_object().is_some() || doc["served"].is_null());
            }
            other => panic!("unexpected {other:?}"),
        }
        drop(client);
        server.shutdown();
        assert_eq!(service.stats().served_total(), 1);
    }

    #[test]
    fn malformed_message_keeps_connection_alive() {
        let service = Arc::new(TrustService::new(16));
        let server =
            TrustServer::bind("127.0.0.1:0", Arc::clone(&service), 1).expect("bind");
        let mut client = TrustClient::connect(server.local_addr()).expect("connect");

        // Valid frame, invalid message → classified error, same socket.
        let resp = client.call_raw(b"this is not json").expect("raw call");
        assert_eq!(
            resp,
            Response::Error {
                stage: "wire".into(),
                error: "bad-json".into()
            }
        );
        // The connection still serves real requests afterwards.
        match client.call(&Request::Stats).expect("stats after fault") {
            Response::Stats(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
        assert_eq!(service.stats().quarantined_total(), 1);
    }

    #[test]
    fn oversized_frame_resyncs_connection() {
        use std::io::Write as _;

        let service = Arc::new(TrustService::new(16));
        let server =
            TrustServer::bind("127.0.0.1:0", Arc::clone(&service), 1).expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

        // Hand-rolled oversized frame (the client refuses to build one):
        // header declares MAX_FRAME + 1 bytes, body follows in full.
        let len = wire::MAX_FRAME + 1;
        stream.write_all(&(len as u32).to_be_bytes()).unwrap();
        stream.write_all(&vec![0x42u8; len]).unwrap();
        // Followed, on the same socket, by a well-formed request.
        wire::write_frame(&mut stream, &Request::Stats.encode()).unwrap();

        // First reply: the classified oversized-frame error.
        let body = wire::read_frame(&mut stream).unwrap().expect("error reply");
        match Response::decode(&body).unwrap() {
            Response::Error { stage, error } => {
                assert_eq!(stage, "wire");
                assert_eq!(error, "oversized-frame");
            }
            other => panic!("expected wire error, got {other:?}"),
        }
        // Second reply: the stats answer — the connection survived the
        // oversized frame instead of being dropped.
        let body = wire::read_frame(&mut stream).unwrap().expect("stats reply");
        assert!(matches!(Response::decode(&body).unwrap(), Response::Stats(_)));

        server.shutdown();
        assert_eq!(service.stats().quarantined_total(), 1);
    }

    #[test]
    fn zero_backlog_sheds_with_busy() {
        let service = Arc::new(TrustService::new(16));
        let server = TrustServer::bind_with(
            "127.0.0.1:0",
            Arc::clone(&service),
            ServerConfig {
                workers: 1,
                backlog: 0,
                ..ServerConfig::default()
            },
        )
        .expect("bind");

        // With a zero budget every arrival is shed: the server answers
        // one explicit busy frame and closes.
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let body = wire::read_frame(&mut stream).unwrap().expect("busy frame");
        assert_eq!(Response::decode(&body).unwrap(), Response::Busy);
        assert_eq!(wire::read_frame(&mut stream).unwrap(), None, "closed");

        server.shutdown();
        assert_eq!(service.stats().served_total(), 0, "nothing reached a worker");
    }
}
