//! Certificate issuance.
//!
//! [`CertificateBuilder`] assembles a `tbsCertificate`, signs it with an
//! issuer key, and returns a parsed [`Certificate`]. The simulators use it
//! to mint everything from AOSP-style root CAs to the on-the-fly re-signed
//! leaves of the TLS-interception proxy (§7 of the paper).

use crate::cert::Certificate;
use crate::extensions::{BasicConstraints, Extension, KeyPurpose, KeyUsage};
use crate::name::DistinguishedName;
use crate::X509Error;
use tangled_asn1::{DerWriter, Oid, Time};
use tangled_crypto::rsa::{RsaKeyPair, SignatureAlgorithm};
use tangled_crypto::Uint;

/// Builder for issuing X.509 v3 certificates.
#[derive(Debug, Clone)]
pub struct CertificateBuilder {
    serial: Uint,
    signature_algorithm: SignatureAlgorithm,
    issuer: DistinguishedName,
    subject: DistinguishedName,
    not_before: Time,
    not_after: Time,
    extensions: Vec<Extension>,
}

impl CertificateBuilder {
    /// Start a builder with the mandatory fields.
    ///
    /// Defaults: serial 1, `sha256WithRSAEncryption`, no extensions.
    pub fn new(
        issuer: DistinguishedName,
        subject: DistinguishedName,
        not_before: Time,
        not_after: Time,
    ) -> Self {
        CertificateBuilder {
            serial: Uint::one(),
            signature_algorithm: SignatureAlgorithm::Sha256WithRsa,
            issuer,
            subject,
            not_before,
            not_after,
            extensions: Vec::new(),
        }
    }

    /// Set the serial number.
    pub fn serial(mut self, serial: Uint) -> Self {
        self.serial = serial;
        self
    }

    /// Set the signature algorithm.
    pub fn signature_algorithm(mut self, alg: SignatureAlgorithm) -> Self {
        self.signature_algorithm = alg;
        self
    }

    /// Append an arbitrary extension.
    pub fn extension(mut self, ext: Extension) -> Self {
        self.extensions.push(ext);
        self
    }

    /// Mark the subject as a CA with an optional path length constraint and
    /// CA key usage.
    pub fn ca(self, path_len: Option<u32>) -> Self {
        self.extension(Extension::BasicConstraints(BasicConstraints {
            ca: true,
            path_len,
        }))
        .extension(Extension::KeyUsage(KeyUsage::ca()))
    }

    /// Mark the subject as a TLS server leaf for the given DNS names.
    pub fn tls_server(self, dns_names: Vec<String>) -> Self {
        self.extension(Extension::BasicConstraints(BasicConstraints {
            ca: false,
            path_len: None,
        }))
        .extension(Extension::KeyUsage(KeyUsage::tls_server()))
        .extension(Extension::ExtendedKeyUsage(vec![KeyPurpose::ServerAuth]))
        .extension(Extension::SubjectAltName(dns_names))
    }

    /// Append subject/authority key identifiers derived from the key
    /// moduli (a stand-in for the usual SHA-1-of-SPKI derivation).
    pub fn key_ids(self, subject_key: &tangled_crypto::rsa::RsaPublicKey, issuer_key: &tangled_crypto::rsa::RsaPublicKey) -> Self {
        let skid = tangled_crypto::sha1::sha1(&subject_key.modulus.to_be_bytes()).to_vec();
        let akid = tangled_crypto::sha1::sha1(&issuer_key.modulus.to_be_bytes()).to_vec();
        self.extension(Extension::SubjectKeyIdentifier(skid))
            .extension(Extension::AuthorityKeyIdentifier(akid))
    }

    /// Sign the certificate: `subject_key` becomes the embedded public key,
    /// `issuer_keypair` signs. For a self-signed root pass the same pair's
    /// public half and the pair itself.
    pub fn sign(
        self,
        subject_key: &tangled_crypto::rsa::RsaPublicKey,
        issuer_keypair: &RsaKeyPair,
    ) -> Result<Certificate, X509Error> {
        let mut tbs_writer = DerWriter::new();
        tbs_writer.sequence(|w| {
            // version [0] EXPLICIT v3(2)
            w.context(0, |w| w.integer_u64(2));
            w.integer_bytes(&self.serial.to_be_bytes());
            write_algorithm_identifier(w, self.signature_algorithm);
            self.issuer.write_der(w);
            w.sequence(|w| {
                w.time(&self.not_before);
                w.time(&self.not_after);
            });
            self.subject.write_der(w);
            write_spki(w, subject_key);
            if !self.extensions.is_empty() {
                w.context(3, |w| {
                    w.sequence(|w| {
                        for ext in &self.extensions {
                            ext.write_der(w);
                        }
                    });
                });
            }
        });
        let tbs = tbs_writer.into_bytes();

        let signature = issuer_keypair.sign(self.signature_algorithm, &tbs)?;

        let mut cert_writer = DerWriter::new();
        cert_writer.sequence(|w| {
            w.raw(&tbs);
            write_algorithm_identifier(w, self.signature_algorithm);
            w.bit_string(&signature);
        });
        Certificate::parse(&cert_writer.into_bytes())
    }

    /// Convenience: issue a self-signed root CA certificate.
    pub fn self_signed_root(
        subject: DistinguishedName,
        not_before: Time,
        not_after: Time,
        keypair: &RsaKeyPair,
        serial: Uint,
    ) -> Result<Certificate, X509Error> {
        CertificateBuilder::new(subject.clone(), subject, not_before, not_after)
            .serial(serial)
            .ca(None)
            .key_ids(keypair.public_key(), keypair.public_key())
            .sign(keypair.public_key(), keypair)
    }
}

fn write_algorithm_identifier(w: &mut DerWriter, alg: SignatureAlgorithm) {
    w.sequence(|w| {
        let oid = match alg {
            SignatureAlgorithm::Sha1WithRsa => Oid::sha1_with_rsa(),
            SignatureAlgorithm::Sha256WithRsa => Oid::sha256_with_rsa(),
        };
        w.oid(&oid);
        w.null();
    });
}

fn write_spki(w: &mut DerWriter, key: &tangled_crypto::rsa::RsaPublicKey) {
    w.sequence(|w| {
        w.sequence(|w| {
            w.oid(&Oid::rsa_encryption());
            w.null();
        });
        let mut key_writer = DerWriter::new();
        key_writer.sequence(|w| {
            w.integer_bytes(&key.modulus.to_be_bytes());
            w.integer_bytes(&key.exponent.to_be_bytes());
        });
        w.bit_string(&key_writer.into_bytes());
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangled_crypto::SplitMix64;

    fn keypair(seed: u64) -> RsaKeyPair {
        RsaKeyPair::generate(512, &mut SplitMix64::new(seed)).unwrap()
    }

    fn window() -> (Time, Time) {
        (
            Time::date(2012, 1, 1).unwrap(),
            Time::date(2022, 1, 1).unwrap(),
        )
    }

    #[test]
    fn self_signed_root_round_trip() {
        let kp = keypair(1);
        let subject = DistinguishedName::builder()
            .common_name("Test Root CA")
            .organization("Test Org")
            .country("US")
            .build();
        let (nb, na) = window();
        let cert =
            CertificateBuilder::self_signed_root(subject.clone(), nb, na, &kp, Uint::from_u64(7))
                .unwrap();

        assert_eq!(cert.subject, subject);
        assert_eq!(cert.issuer, subject);
        assert!(cert.is_self_issued());
        assert!(cert.is_ca());
        assert_eq!(cert.serial, Uint::from_u64(7));
        assert_eq!(cert.public_key, *kp.public_key());
        assert!(cert.key_usage().unwrap().key_cert_sign);

        // Signature verifies with its own key.
        cert.verify_signature(kp.public_key()).unwrap();
        cert.verify_issued_by(&cert).unwrap();

        // Reparse of the DER is identical.
        let reparsed = Certificate::parse(cert.to_der()).unwrap();
        assert_eq!(reparsed, cert);
    }

    #[test]
    fn issued_chain_verifies() {
        let root_kp = keypair(10);
        let leaf_kp = keypair(11);
        let (nb, na) = window();
        let root = CertificateBuilder::self_signed_root(
            DistinguishedName::common_name("Chain Root"),
            nb,
            na,
            &root_kp,
            Uint::one(),
        )
        .unwrap();

        let leaf = CertificateBuilder::new(
            root.subject.clone(),
            DistinguishedName::common_name("www.example.com"),
            nb,
            na,
        )
        .serial(Uint::from_u64(2))
        .tls_server(vec!["www.example.com".into()])
        .key_ids(leaf_kp.public_key(), root_kp.public_key())
        .sign(leaf_kp.public_key(), &root_kp)
        .unwrap();

        leaf.verify_issued_by(&root).unwrap();
        assert!(!leaf.is_ca());
        assert_eq!(leaf.dns_names(), &["www.example.com".to_string()]);
        assert_eq!(
            leaf.extended_key_usage().unwrap(),
            &[KeyPurpose::ServerAuth]
        );
        // Key IDs chain: leaf AKI == root SKI.
        assert_eq!(leaf.authority_key_id(), root.subject_key_id());
    }

    #[test]
    fn wrong_issuer_name_rejected() {
        let kp1 = keypair(20);
        let kp2 = keypair(21);
        let (nb, na) = window();
        let root1 = CertificateBuilder::self_signed_root(
            DistinguishedName::common_name("Root 1"),
            nb,
            na,
            &kp1,
            Uint::one(),
        )
        .unwrap();
        let root2 = CertificateBuilder::self_signed_root(
            DistinguishedName::common_name("Root 2"),
            nb,
            na,
            &kp2,
            Uint::one(),
        )
        .unwrap();
        let leaf = CertificateBuilder::new(
            root1.subject.clone(),
            DistinguishedName::common_name("leaf"),
            nb,
            na,
        )
        .sign(kp2.public_key(), &kp1)
        .unwrap();
        // Signed by root1 — name mismatch against root2.
        assert!(leaf.verify_issued_by(&root2).is_err());
        // Correct issuer verifies.
        leaf.verify_issued_by(&root1).unwrap();
    }

    #[test]
    fn corrupted_der_signature_fails() {
        let kp = keypair(30);
        let (nb, na) = window();
        let cert = CertificateBuilder::self_signed_root(
            DistinguishedName::common_name("Victim"),
            nb,
            na,
            &kp,
            Uint::one(),
        )
        .unwrap();
        let mut der = cert.to_der().to_vec();
        // Flip a byte inside the TBS (subject area) and reparse: the
        // signature check must now fail.
        let needle = b"Victim";
        let pos = der
            .windows(needle.len())
            .position(|w| w == needle)
            .unwrap();
        der[pos] ^= 0x20;
        let tampered = Certificate::parse(&der).unwrap();
        assert!(tampered.verify_signature(kp.public_key()).is_err());
    }

    #[test]
    fn sha1_algorithm_round_trip() {
        let kp = keypair(40);
        let (nb, na) = window();
        let cert = CertificateBuilder::new(
            DistinguishedName::common_name("Legacy"),
            DistinguishedName::common_name("Legacy"),
            nb,
            na,
        )
        .signature_algorithm(SignatureAlgorithm::Sha1WithRsa)
        .ca(Some(1))
        .sign(kp.public_key(), &kp)
        .unwrap();
        assert_eq!(cert.signature_algorithm, SignatureAlgorithm::Sha1WithRsa);
        assert_eq!(cert.basic_constraints().unwrap().path_len, Some(1));
        cert.verify_signature(kp.public_key()).unwrap();
    }

    #[test]
    fn validity_window_checks() {
        let kp = keypair(50);
        // Mirror the paper's expired Firmaprofesional root: expired Oct 2013.
        let cert = CertificateBuilder::self_signed_root(
            DistinguishedName::builder()
                .common_name("Autoridad de Certificacion Firmaprofesional CIF A62634068")
                .country("ES")
                .build(),
            Time::date(2001, 10, 24).unwrap(),
            Time::date(2013, 10, 24).unwrap(),
            &kp,
            Uint::one(),
        )
        .unwrap();
        let study_time = Time::date(2014, 1, 15).unwrap();
        assert!(cert.is_expired_at(study_time));
        assert!(!cert.is_valid_at(study_time));
        assert!(cert.is_valid_at(Time::date(2013, 10, 24).unwrap())); // inclusive
        assert!(cert.is_valid_at(Time::date(2005, 6, 1).unwrap()));
        assert!(!cert.is_valid_at(Time::date(2001, 10, 23).unwrap()));
    }

    #[test]
    fn identity_equivalence_across_reissue() {
        // Re-issuing the same subject+key with a new validity window keeps
        // the paper's identity equal while the DER differs.
        let kp = keypair(60);
        let subject = DistinguishedName::common_name("Reissued Root");
        let a = CertificateBuilder::self_signed_root(
            subject.clone(),
            Time::date(2005, 1, 1).unwrap(),
            Time::date(2015, 1, 1).unwrap(),
            &kp,
            Uint::from_u64(1),
        )
        .unwrap();
        let b = CertificateBuilder::self_signed_root(
            subject,
            Time::date(2015, 1, 1).unwrap(),
            Time::date(2025, 1, 1).unwrap(),
            &kp,
            Uint::from_u64(2),
        )
        .unwrap();
        assert_ne!(a.to_der(), b.to_der());
        assert_ne!(a.fingerprint_sha256(), b.fingerprint_sha256());
        assert_eq!(a.identity(), b.identity());
        assert_eq!(a.short_subject_id(), b.short_subject_id());
    }

    #[test]
    fn short_subject_id_is_8_hex_chars() {
        let kp = keypair(70);
        let (nb, na) = window();
        let cert = CertificateBuilder::self_signed_root(
            DistinguishedName::common_name("Sprint Nextel Root Authority"),
            nb,
            na,
            &kp,
            Uint::one(),
        )
        .unwrap();
        let id = cert.short_subject_id();
        assert_eq!(id.len(), 8);
        assert!(id.bytes().all(|b| b.is_ascii_hexdigit()));
    }
}
