//! The event-driven server core: connection multiplexing over a handful
//! of readiness-loop threads.
//!
//! The thread core ([`crate::server::TrustServer`]) parks one worker per
//! connection — a slow or trickling client pins a whole worker, so
//! throughput is capped at `workers`. This core inverts that: sockets are
//! nonblocking, each loop thread owns *many* connections, and a sweep
//! over them does bounded nonblocking reads, incremental frame decode,
//! and buffered partial writes. A stalled peer costs one connection slot,
//! not a thread.
//!
//! The readiness abstraction is deliberately std-only (the repo's
//! no-external-deps discipline rules out `libc`/epoll): level-triggered
//! readiness is emulated by sweeping nonblocking sockets and sleeping
//! briefly only when a whole sweep makes no progress. On an idle server
//! that costs a few wakeups per millisecond on one thread; under load the
//! loop never sleeps and behaves exactly like a level-triggered poller
//! that always reports every socket ready.
//!
//! Per-connection protocol semantics are *identical* to the thread core —
//! the chaos harness asserts byte-identical ledgers across both cores:
//!
//! - an undecodable message gets a classified `error` reply and the
//!   connection lives on;
//! - an oversized frame's header still declares the next boundary, so the
//!   declared body is skipped (here: consumed incrementally as it
//!   arrives, no thread ever blocks draining it), the classified reply is
//!   queued, and the connection keeps serving;
//! - mid-frame truncation (EOF or a dead stall inside a frame) closes the
//!   stream after a best-effort error reply;
//! - EOF while skipping an oversized body closes without a *second*
//!   fault — the oversized frame was already recorded, matching the
//!   thread core's failed-drain path.
//!
//! On top of multiplexing, this core supports **pipelining**: a client
//! may write any number of request frames before reading a reply. Each
//! sweep ingests every complete frame in the receive buffer and queues
//! all replies into one write buffer, so a depth-N burst costs ~one read
//! and ~one coalesced write instead of N of each — replies are always
//! written in request order per connection.

use crate::server::{record_wire_trace, ServerConfig, READ_TICK};
use crate::service::TrustService;
use crate::wire::{self, Request, Response, WireError, MAX_FRAME, STALL_BUDGET};
use serde_json::Value;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Read scratch size per sweep round: large enough to drain a pipelined
/// burst in one syscall, small enough to live on the stack.
const SCRATCH: usize = 16 * 1024;

/// Bounded read rounds per connection per sweep, so one firehose peer
/// cannot starve the other connections on its loop.
const READS_PER_SWEEP: usize = 32;

/// How long a no-progress sweep sleeps before the next one. Short enough
/// that added latency is invisible next to a verification, long enough
/// that an idle loop thread is effectively free.
const IDLE_SLEEP: Duration = Duration::from_micros(500);

/// Consecutive no-progress sweeps that merely yield before the loop
/// starts sleeping [`IDLE_SLEEP`]. A serial request/reply conversation
/// has a sub-millisecond gap between a flushed reply and the next
/// request; yielding through that gap keeps per-round-trip latency at
/// scheduler granularity instead of a full sleep, while a genuinely idle
/// loop falls back to sleeping within a few hundred microseconds.
const SPIN_SWEEPS: u32 = 64;

/// The decode/encode state machine for one multiplexed connection.
///
/// Bytes in, frames out: [`ConnState::ingest`] appends whatever the
/// socket had ready and decodes every complete frame in the buffer,
/// queueing replies (in request order) into the write buffer;
/// [`ConnState::flush_once`] pushes the write buffer out as far as the
/// socket accepts, keeping the remainder for the next readiness sweep.
pub(crate) struct ConnState {
    /// Received-but-undecoded bytes (at most one partial frame plus
    /// whatever arrived behind it).
    rbuf: Vec<u8>,
    /// Bytes of a rejected oversized frame body still to be consumed
    /// before the next frame boundary.
    drain: usize,
    /// Encoded replies not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// How much of `wbuf` the socket has accepted.
    wpos: usize,
    /// Successfully decoded requests (the span's `served` attribute).
    served: u64,
    /// The connection is done; drain `wbuf` and drop it.
    closing: bool,
    /// Observability span for wire-fault quarantine events.
    span: u64,
}

impl ConnState {
    pub(crate) fn new(span: u64) -> ConnState {
        ConnState {
            rbuf: Vec::new(),
            drain: 0,
            wbuf: Vec::new(),
            wpos: 0,
            served: 0,
            closing: false,
            span,
        }
    }

    /// Is the stream at a frame boundary (no partial frame buffered, no
    /// oversized body left to skip)? Governs which deadline applies: the
    /// generous idle deadline at a boundary, the stall budget mid-frame.
    fn at_boundary(&self) -> bool {
        self.rbuf.is_empty() && self.drain == 0
    }

    /// Append freshly-read bytes and decode every complete frame,
    /// queueing one reply per frame in request order.
    fn ingest(&mut self, service: &TrustService, bytes: &[u8]) {
        self.rbuf.extend_from_slice(bytes);
        let mut consumed = 0usize;
        let mut frames = 0u64;
        loop {
            if self.drain > 0 {
                // Mid-skip of a rejected oversized body: consume what
                // arrived; the reply is already queued.
                let n = (self.rbuf.len() - consumed).min(self.drain);
                consumed += n;
                self.drain -= n;
                if self.drain > 0 {
                    break;
                }
                continue;
            }
            if self.rbuf.len() - consumed < 4 {
                break;
            }
            let header: [u8; 4] = self.rbuf[consumed..consumed + 4]
                .try_into()
                .expect("4-byte slice");
            let len = u32::from_be_bytes(header) as usize;
            if len > MAX_FRAME {
                // Recoverable: the header declares where the next frame
                // starts. Queue the classified reply now and skip the
                // body as it arrives.
                let e = WireError::Oversized { len };
                record_wire_trace(self.span, &e);
                let reply = service.record_wire_fault(&e);
                self.push_reply(&reply);
                consumed += 4;
                self.drain = len;
                continue;
            }
            if self.rbuf.len() - consumed < 4 + len {
                break;
            }
            let reply = {
                let body = &self.rbuf[consumed + 4..consumed + 4 + len];
                match Request::decode(body) {
                    Ok(req) => {
                        self.served += 1;
                        service.handle(&req)
                    }
                    // Bad message, good framing: classify, reply, carry on.
                    Err(e) => {
                        record_wire_trace(self.span, &e);
                        service.record_wire_fault(&e)
                    }
                }
            };
            frames += 1;
            self.push_reply(&reply);
            consumed += 4 + len;
        }
        self.rbuf.drain(..consumed);
        if frames > 0 {
            // How many frames one readiness event delivered — the
            // observed pipelining depth.
            tangled_obs::registry::observe("trustd.event.pipeline_depth", frames);
        }
    }

    /// The peer closed its write side. Mid-frame EOF is a classified
    /// truncation; EOF while skipping an oversized body is *not* a second
    /// fault (the oversized frame was already recorded — the thread
    /// core's failed-drain path behaves identically).
    fn on_eof(&mut self, service: &TrustService) {
        if self.drain == 0 && !self.rbuf.is_empty() {
            let e = WireError::Truncated;
            record_wire_trace(self.span, &e);
            let reply = service.record_wire_fault(&e);
            self.push_reply(&reply);
        }
        self.closing = true;
    }

    /// A dead stall mid-frame (the consecutive stall budget ran out) —
    /// same classification as an EOF in the same position.
    fn on_stalled(&mut self, service: &TrustService) {
        self.on_eof(service);
    }

    fn push_reply(&mut self, reply: &Response) {
        let body = reply.encode();
        self.wbuf
            .extend_from_slice(&(body.len() as u32).to_be_bytes());
        self.wbuf.extend_from_slice(&body);
    }

    /// Write as much of the reply buffer as the socket accepts right now.
    /// `Ok(true)` means fully drained; `Ok(false)` means the peer's
    /// window filled — the remainder stays buffered and this counts as a
    /// partial-write continuation.
    fn flush_once(&mut self, w: &mut impl Write) -> io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match w.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer accepts no more bytes",
                    ))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if wire::is_timeout(&e) => {
                    tangled_obs::registry::add("trustd.event.partial_write", 1);
                    return Ok(false);
                }
                Err(e) => return Err(e),
            }
        }
        if !self.wbuf.is_empty() {
            self.wbuf.clear();
            self.wpos = 0;
            w.flush()?;
        }
        Ok(true)
    }

    /// Drain the reply buffer completely, tolerating stalls under the
    /// same consecutive budget as the wire write path — the synchronous
    /// twin of [`ConnState::flush_once`] for the single-connection loop.
    fn flush_blocking(&mut self, w: &mut impl Write) -> io::Result<()> {
        let mut stalls = 0u32;
        loop {
            match self.flush_once(w) {
                Ok(true) => return Ok(()),
                Ok(false) => {
                    stalls += 1;
                    if stalls > STALL_BUDGET {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "peer stalled draining replies",
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// The event-core frame loop for a *single* stream — the state machine
/// of the multiplexed loop, run synchronously. Semantically equivalent to
/// [`crate::server::serve_connection`] (same faults recorded, same
/// replies, same close conditions) but with incremental decode and
/// coalesced reply writes, so a pipelined burst of N requests costs ~one
/// read and ~one write instead of N of each.
///
/// Generic over the stream so the loopback tests, the pipelining
/// proptests, and the chaos harness can drive it over simulated
/// transports; the harness asserts its ledger is byte-identical to the
/// thread core's. Returns the number of requests served.
pub fn serve_stream<S: Read + Write>(
    stream: &mut S,
    service: &TrustService,
    stop: &AtomicBool,
    idle_ticks: u32,
    span: u64,
) -> u64 {
    let mut state = ConnState::new(span);
    let mut scratch = [0u8; SCRATCH];
    let mut idle = 0u32;
    let mut stalls = 0u32;
    while !state.closing {
        match stream.read(&mut scratch) {
            Ok(0) => {
                state.on_eof(service);
                break;
            }
            Ok(n) => {
                idle = 0;
                stalls = 0;
                state.ingest(service, &scratch[..n]);
                if state.flush_blocking(stream).is_err() {
                    return state.served;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if wire::is_timeout(&e) => {
                if state.at_boundary() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    idle += 1;
                    if idle > idle_ticks {
                        // An abandoned connection at a frame boundary:
                        // a deadline, not a protocol fault.
                        tangled_obs::registry::add("trustd.conn.idle_closed", 1);
                        break;
                    }
                } else {
                    stalls += 1;
                    if stalls > STALL_BUDGET {
                        state.on_stalled(service);
                        break;
                    }
                }
            }
            Err(_) => break,
        }
    }
    let _ = state.flush_blocking(stream);
    state.served
}

/// A running event-core trustd server: one accept thread plus a handful
/// of readiness-loop threads, each multiplexing many connections.
pub struct EventServer {
    local_addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    loops: Vec<JoinHandle<()>>,
}

impl EventServer {
    /// Bind `addr` and start `loops` readiness-loop threads (minimum 1),
    /// with default admission control.
    pub fn bind(
        addr: impl ToSocketAddrs,
        service: Arc<TrustService>,
        loops: usize,
    ) -> io::Result<EventServer> {
        EventServer::bind_with(
            addr,
            service,
            ServerConfig {
                workers: loops,
                ..ServerConfig::default()
            },
        )
    }

    /// Bind `addr` with explicit configuration. `config.workers` is the
    /// number of loop threads; `config.backlog` bounds *registered*
    /// connections (the multiplexed analogue of the thread core's queue
    /// budget) — arrivals beyond it are shed with an explicit `busy`
    /// frame, exactly like the thread core.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: Arc<TrustService>,
        config: ServerConfig,
    ) -> io::Result<EventServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        // Connections handed to a loop and not yet closed by it: the
        // admission-control input.
        let active = Arc::new(AtomicUsize::new(0));

        let n = config.workers.max(1);
        let mut txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            txs.push(tx);
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            let active = Arc::clone(&active);
            let idle_ticks = config.idle_ticks;
            handles.push(std::thread::spawn(move || {
                event_loop(&rx, &service, &stop, &active, idle_ticks)
            }));
        }

        let accept_stop = Arc::clone(&stop);
        let accept_active = Arc::clone(&active);
        let backlog = config.backlog;
        let accept_thread = std::thread::spawn(move || {
            let mut next = 0usize;
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                tangled_obs::registry::add("trustd.conn.accepted", 1);
                if accept_active.load(Ordering::SeqCst) >= backlog {
                    shed(&mut stream);
                    continue;
                }
                accept_active.fetch_add(1, Ordering::SeqCst);
                // Round-robin across loop threads.
                if txs[next % txs.len()].send(stream).is_err() {
                    break;
                }
                next += 1;
            }
            // Dropping the senders disconnects the loops' channels.
        });

        Ok(EventServer {
            local_addr,
            stop,
            accept_thread: Some(accept_thread),
            loops: handles,
        })
    }

    /// The bound address (resolves `:0` ephemeral ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Stop accepting, flush registered connections, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop: it blocks in `accept`, so poke it with a
        // throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        for handle in self.loops.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Shed one connection: explicit `busy` frame, bounded drain, close —
/// byte-identical to the thread core's over-budget path.
fn shed(stream: &mut TcpStream) {
    tangled_obs::registry::add("trustd.admission.shed", 1);
    let _ = wire::write_frame(stream, &Response::Busy.encode());
    // Drain whatever the peer already sent before closing: dropping a
    // socket with unread input raises an RST that can destroy the
    // in-flight `busy` frame. Bounded by one read timeout, so a shed
    // storm cannot pin the accept thread.
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut sink = [0u8; 4096];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => {}
            _ => break,
        }
    }
}

/// One registered connection in a readiness loop.
struct Conn {
    stream: TcpStream,
    state: ConnState,
    /// Last time the socket produced bytes (or was registered) — drives
    /// the idle/stall deadlines without per-tick blocking reads.
    last_activity: Instant,
}

/// The readiness loop: sweep every registered connection with bounded
/// nonblocking reads, decode and reply, and sleep only when a whole
/// sweep made no progress.
fn event_loop(
    rx: &Receiver<TcpStream>,
    service: &Arc<TrustService>,
    stop: &Arc<AtomicBool>,
    active: &Arc<AtomicUsize>,
    idle_ticks: u32,
) {
    // Monotonic connection index shared with the thread core's spans.
    static CONN_SEQ: AtomicU64 = AtomicU64::new(0);
    let idle_deadline = READ_TICK * idle_ticks.max(1);
    let stall_deadline = READ_TICK * STALL_BUDGET;
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = [0u8; SCRATCH];
    let mut disconnected = false;
    let mut quiet_sweeps = 0u32;

    loop {
        // Register new arrivals.
        loop {
            match rx.try_recv() {
                Ok(stream) => {
                    let _ = stream.set_nonblocking(true);
                    let _ = stream.set_nodelay(true);
                    let id = CONN_SEQ.fetch_add(1, Ordering::Relaxed);
                    let span = tangled_obs::trace::span_start("trustd.conn", 0, id, &[]);
                    tangled_obs::registry::gauge_add("trustd.conn.active", 1);
                    tangled_obs::registry::gauge_add("trustd.event.connections", 1);
                    conns.push(Conn {
                        stream,
                        state: ConnState::new(span),
                        last_activity: Instant::now(),
                    });
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        if stop.load(Ordering::SeqCst) || (disconnected && conns.is_empty()) {
            break;
        }
        tangled_obs::registry::add("trustd.event.wakeups", 1);

        let mut progress = false;
        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];
            let mut close = false;

            if !conn.state.closing {
                for _ in 0..READS_PER_SWEEP {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            conn.state.on_eof(service);
                            break;
                        }
                        Ok(n) => {
                            progress = true;
                            conn.last_activity = Instant::now();
                            conn.state.ingest(service, &scratch[..n]);
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) if wire::is_timeout(&e) => break,
                        Err(_) => {
                            close = true;
                            break;
                        }
                    }
                }
            }

            match conn.state.flush_once(&mut conn.stream) {
                // Fully flushed and closing: the connection is done.
                Ok(true) => close = close || conn.state.closing,
                // Partial write: the remainder stays buffered for the
                // next sweep (a closing connection lingers until its
                // replies drain or its deadline passes).
                Ok(false) => progress = true,
                Err(_) => close = true,
            }

            if !close {
                // Deadlines, readiness-loop style: wall-clock since the
                // socket last produced bytes, scaled to the same budgets
                // the blocking cores count in ticks.
                let quiet = conn.last_activity.elapsed();
                if conn.state.at_boundary() && !conn.state.closing {
                    if quiet > idle_deadline {
                        tangled_obs::registry::add("trustd.conn.idle_closed", 1);
                        close = true;
                    }
                } else if quiet > stall_deadline {
                    if !conn.state.closing {
                        conn.state.on_stalled(service);
                        let _ = conn.state.flush_once(&mut conn.stream);
                    }
                    close = true;
                }
            }

            if close {
                let conn = conns.swap_remove(i);
                finish_conn(conn, active);
            } else {
                i += 1;
            }
        }

        if progress {
            quiet_sweeps = 0;
        } else {
            quiet_sweeps += 1;
            if quiet_sweeps <= SPIN_SWEEPS && !conns.is_empty() {
                std::thread::yield_now();
            } else {
                std::thread::sleep(IDLE_SLEEP);
            }
        }
    }

    // Shutdown: best-effort flush of queued replies, then release.
    for mut conn in conns.drain(..) {
        let _ = conn.state.flush_once(&mut conn.stream);
        finish_conn(conn, active);
    }
}

fn finish_conn(conn: Conn, active: &Arc<AtomicUsize>) {
    active.fetch_sub(1, Ordering::SeqCst);
    tangled_obs::registry::gauge_add("trustd.conn.active", -1);
    tangled_obs::registry::gauge_add("trustd.event.connections", -1);
    tangled_obs::trace::span_end(
        "trustd.conn",
        conn.state.span,
        &[("served", Value::from(conn.state.served))],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::TrustClient;
    use std::collections::VecDeque;

    /// In-memory duplex: reads from a preloaded inbox (then reports
    /// `WouldBlock`), writes into an outbox.
    struct SimStream {
        inbox: VecDeque<u8>,
        outbox: Vec<u8>,
        eof_at_end: bool,
    }

    impl Read for SimStream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.inbox.is_empty() {
                return if self.eof_at_end {
                    Ok(0)
                } else {
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"))
                };
            }
            let n = buf.len().min(self.inbox.len());
            for slot in buf.iter_mut().take(n) {
                *slot = self.inbox.pop_front().expect("non-empty");
            }
            Ok(n)
        }
    }

    impl Write for SimStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.outbox.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn replies(outbox: &[u8]) -> Vec<Response> {
        let mut r = std::io::Cursor::new(outbox);
        let mut out = Vec::new();
        while let Some(body) = wire::read_frame(&mut r).expect("well-framed reply") {
            out.push(Response::decode(&body).expect("decodable reply"));
        }
        out
    }

    #[test]
    fn pipelined_frames_reply_in_request_order() {
        let service = TrustService::new(16);
        let mut stream = SimStream {
            inbox: VecDeque::new(),
            outbox: Vec::new(),
            eof_at_end: true,
        };
        // Three frames written before any reply is read: a stats call, a
        // garbage body, another stats call.
        let mut burst = Vec::new();
        wire::write_frame(&mut burst, &Request::Stats.encode()).unwrap();
        wire::write_frame(&mut burst, b"this is not json").unwrap();
        wire::write_frame(&mut burst, &Request::Stats.encode()).unwrap();
        stream.inbox.extend(burst);

        let stop = AtomicBool::new(false);
        let served = serve_stream(&mut stream, &service, &stop, 10, 0);
        assert_eq!(served, 2, "two decodable requests");

        let got = replies(&stream.outbox);
        assert_eq!(got.len(), 3);
        assert!(matches!(got[0], Response::Stats(_)));
        assert_eq!(
            got[1],
            Response::Error {
                stage: "wire".into(),
                error: "bad-json".into()
            }
        );
        assert!(matches!(got[2], Response::Stats(_)));
        assert_eq!(service.stats().quarantined_total(), 1);
    }

    #[test]
    fn oversized_frame_mid_pipeline_resyncs() {
        let service = TrustService::new(16);
        let mut stream = SimStream {
            inbox: VecDeque::new(),
            outbox: Vec::new(),
            eof_at_end: true,
        };
        let mut burst = Vec::new();
        wire::write_frame(&mut burst, &Request::Stats.encode()).unwrap();
        // Oversized frame, body present in full.
        let len = MAX_FRAME + 1;
        burst.extend_from_slice(&(len as u32).to_be_bytes());
        burst.extend_from_slice(&vec![0x42u8; len]);
        wire::write_frame(&mut burst, &Request::Stats.encode()).unwrap();
        stream.inbox.extend(burst);

        let stop = AtomicBool::new(false);
        serve_stream(&mut stream, &service, &stop, 10, 0);

        let got = replies(&stream.outbox);
        assert_eq!(got.len(), 3);
        assert!(matches!(got[0], Response::Stats(_)));
        assert_eq!(
            got[1],
            Response::Error {
                stage: "wire".into(),
                error: "oversized-frame".into()
            }
        );
        assert!(matches!(got[2], Response::Stats(_)));
    }

    #[test]
    fn eof_mid_frame_is_a_classified_truncation() {
        let service = TrustService::new(16);
        let mut stream = SimStream {
            inbox: VecDeque::new(),
            outbox: Vec::new(),
            eof_at_end: true,
        };
        // Header promises 8 bytes; only 4 arrive before EOF.
        stream.inbox.extend(8u32.to_be_bytes());
        stream.inbox.extend(*b"1234");

        let stop = AtomicBool::new(false);
        let served = serve_stream(&mut stream, &service, &stop, 10, 0);
        assert_eq!(served, 0);
        assert_eq!(
            replies(&stream.outbox),
            vec![Response::Error {
                stage: "wire".into(),
                error: "truncated-frame".into()
            }]
        );
        assert_eq!(service.stats().quarantined_total(), 1);
    }

    #[test]
    fn eof_while_draining_oversized_body_records_one_fault() {
        let service = TrustService::new(16);
        let mut stream = SimStream {
            inbox: VecDeque::new(),
            outbox: Vec::new(),
            eof_at_end: true,
        };
        // Oversized header, body cut short by EOF: the thread core's
        // failed-drain path writes the oversized reply and closes with
        // exactly one recorded fault — so must this core.
        stream
            .inbox
            .extend(((MAX_FRAME + 1) as u32).to_be_bytes());
        stream.inbox.extend(vec![0x42u8; 100]);

        let stop = AtomicBool::new(false);
        serve_stream(&mut stream, &service, &stop, 10, 0);
        assert_eq!(
            replies(&stream.outbox),
            vec![Response::Error {
                stage: "wire".into(),
                error: "oversized-frame".into()
            }]
        );
        assert_eq!(service.stats().quarantined_total(), 1);
    }

    #[test]
    fn event_server_round_trips_and_shuts_down() {
        let service = Arc::new(TrustService::new(16));
        let server =
            EventServer::bind("127.0.0.1:0", Arc::clone(&service), 2).expect("bind");
        let addr = server.local_addr();

        let mut client = TrustClient::connect(addr).expect("connect");
        match client.call(&Request::Stats).expect("stats call") {
            Response::Stats(doc) => {
                assert!(doc["served"].as_object().is_some() || doc["served"].is_null());
            }
            other => panic!("unexpected {other:?}"),
        }
        drop(client);
        server.shutdown();
        assert_eq!(service.stats().served_total(), 1);
    }

    #[test]
    fn event_server_pipelines_over_tcp() {
        let service = Arc::new(TrustService::new(16));
        let server =
            EventServer::bind("127.0.0.1:0", Arc::clone(&service), 1).expect("bind");

        let mut client = TrustClient::connect(server.local_addr()).expect("connect");
        let reqs: Vec<Request> = (0..8).map(|_| Request::Stats).collect();
        let got = client.pipeline(&reqs).expect("pipelined call");
        assert_eq!(got.len(), 8);
        assert!(got.iter().all(|r| matches!(r, Response::Stats(_))));

        server.shutdown();
        assert_eq!(service.stats().served_total(), 8);
    }

    #[test]
    fn event_server_keeps_connection_alive_through_bad_message() {
        let service = Arc::new(TrustService::new(16));
        let server =
            EventServer::bind("127.0.0.1:0", Arc::clone(&service), 1).expect("bind");
        let mut client = TrustClient::connect(server.local_addr()).expect("connect");

        let resp = client.call_raw(b"this is not json").expect("raw call");
        assert_eq!(
            resp,
            Response::Error {
                stage: "wire".into(),
                error: "bad-json".into()
            }
        );
        match client.call(&Request::Stats).expect("stats after fault") {
            Response::Stats(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        server.shutdown();
        assert_eq!(service.stats().quarantined_total(), 1);
    }

    #[test]
    fn event_server_zero_backlog_sheds_with_busy() {
        let service = Arc::new(TrustService::new(16));
        let server = EventServer::bind_with(
            "127.0.0.1:0",
            Arc::clone(&service),
            ServerConfig {
                workers: 1,
                backlog: 0,
                ..ServerConfig::default()
            },
        )
        .expect("bind");

        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        let body = wire::read_frame(&mut stream).unwrap().expect("busy frame");
        assert_eq!(Response::decode(&body).unwrap(), Response::Busy);
        assert_eq!(wire::read_frame(&mut stream).unwrap(), None, "closed");

        server.shutdown();
        assert_eq!(service.stats().served_total(), 0, "nothing registered");
    }
}
