//! Fleet audit: simulate an Android device fleet and audit its root
//! stores, reproducing the §5/§6 analysis end to end.
//!
//! ```text
//! cargo run --release --example fleet_audit [scale]
//! ```
//!
//! `scale` (default 0.5) scales the 15,970-session population.

use tangled_mass::analysis::classify::{addition_class_distribution, headline_stats};
use tangled_mass::analysis::figures::{figure1_render, figure1_summary, figure2_render};
use tangled_mass::analysis::tables::{dataset_summary, table2, table5};
use tangled_mass::netalyzr::{Population, PopulationSpec};
use tangled_mass::pki::extras::Figure2Class;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    eprintln!("generating population at scale {scale}…");
    let pop = Population::generate(&PopulationSpec::scaled(scale));
    println!(
        "{} sessions over {} devices ({} models)\n",
        pop.sessions.len(),
        pop.devices.len(),
        pop.distinct_models()
    );

    println!("{}", dataset_summary(&pop).render());
    println!("{}", table2(&pop).render());

    // §5 headline numbers.
    let stats = headline_stats(&pop);
    println!(
        "sessions with additional certificates: {:.1}%   (paper: 39%)",
        stats.extended_session_fraction * 100.0
    );
    println!(
        "devices missing AOSP certificates:     {}      (paper: 5)",
        stats.devices_missing_certs
    );
    println!(
        "sessions on rooted handsets:           {:.1}%   (paper: 24%)",
        stats.rooted_session_fraction * 100.0
    );
    println!(
        "rooted sessions w/ rooted-only certs:  {:.1}%   (paper: ~6%)",
        stats.rooted_only_share_of_rooted * 100.0
    );
    println!(
        "distinct additional certificates:      {}\n",
        stats.distinct_additions
    );

    // §5.1 classification of the additions.
    let dist = addition_class_distribution(&pop);
    println!("addition classes (paper: 6.7 / 16.2 / 37.1 / 40.0):");
    for class in [
        Figure2Class::MozillaAndIos7,
        Figure2Class::Ios7,
        Figure2Class::OnlyAndroid,
        Figure2Class::NotRecorded,
    ] {
        println!(
            "  {:<30} {:>5.1}%",
            class.label(),
            dist.get(&class).copied().unwrap_or(0.0) * 100.0
        );
    }
    println!();

    // Figure 1: who extends, and by how much.
    let summary = figure1_summary(&pop);
    println!("rows with >40-addition devices (share of sessions):");
    for (m, v, frac) in summary
        .big_bundle_rows
        .iter()
        .filter(|&&(_, _, f)| f > 0.10)
    {
        println!("  {:<10} {}  {:>5.1}%", m.label(), v.label(), frac * 100.0);
    }
    println!();
    println!("{}", figure1_render(&pop, 15));
    println!("{}", figure2_render(&pop, 15));

    // §6: rooted devices.
    println!("{}", table5(&pop).render());
}
