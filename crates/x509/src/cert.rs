//! The X.509 certificate model.
//!
//! [`Certificate`] keeps both the parsed fields and the exact DER bytes it
//! was built from. The raw bytes matter twice: the signature covers the raw
//! `tbsCertificate` encoding, and the paper distinguishes *byte-equivalent*
//! certificates from *equivalent* ones ("root certificates are not
//! byte-equivalent \[but\] can still be 'equivalent' if their subject and RSA
//! key modulus are identical") — the [`CertIdentity`] type implements
//! exactly that equivalence.

use crate::extensions::{BasicConstraints, Extension, KeyPurpose, KeyUsage};
use crate::name::DistinguishedName;
use crate::X509Error;
use tangled_asn1::{DerReader, Oid, Time};
use tangled_crypto::rsa::{RsaPublicKey, SignatureAlgorithm};
use tangled_crypto::sha1::sha1;
use tangled_crypto::sha256::sha256;
use tangled_crypto::Uint;

/// A parsed X.509 v3 certificate plus its exact DER encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    raw: Vec<u8>,
    tbs_raw: Vec<u8>,
    /// Serial number.
    pub serial: Uint,
    /// Signature algorithm (outer, must match the TBS `signature` field).
    pub signature_algorithm: SignatureAlgorithm,
    /// Issuer name.
    pub issuer: DistinguishedName,
    /// Start of the validity window.
    pub not_before: Time,
    /// End of the validity window.
    pub not_after: Time,
    /// Subject name.
    pub subject: DistinguishedName,
    /// Subject public key (RSA only in this workspace).
    pub public_key: RsaPublicKey,
    /// v3 extensions in encounter order.
    pub extensions: Vec<Extension>,
    /// Raw signature bytes.
    pub signature: Vec<u8>,
}

impl Certificate {
    /// Parse a certificate from DER. Strict: trailing bytes are an error.
    pub fn parse(der: &[u8]) -> Result<Certificate, X509Error> {
        let mut top = DerReader::new(der);
        let mut cert_seq = top.read_sequence()?;
        top.finish()?;

        // Capture the raw TBS bytes (signed payload) before parsing it.
        let tbs_raw = {
            let mut probe = cert_seq.clone();
            probe.read_raw_tlv()?.to_vec()
        };

        let mut tbs = cert_seq.read_sequence()?;

        // version [0] EXPLICIT INTEGER DEFAULT v1(0). We accept v1 (absent)
        // and v3 (2); v2 never occurs in the corpora the paper studies.
        let version = match tbs.read_optional_context(0)? {
            Some(mut ctx) => {
                let v = ctx.read_integer_u64()?;
                ctx.finish()?;
                v
            }
            None => 0,
        };
        if version != 0 && version != 2 {
            return Err(X509Error::Malformed("unsupported certificate version"));
        }

        let serial = Uint::from_be_bytes(&tbs.read_integer_bytes()?);
        let tbs_sig_alg = read_algorithm_identifier(&mut tbs)?;
        let issuer = DistinguishedName::read_der(&mut tbs)?;

        let mut validity = tbs.read_sequence()?;
        let not_before = validity.read_time()?;
        let not_after = validity.read_time()?;
        validity.finish()?;

        let subject = DistinguishedName::read_der(&mut tbs)?;
        let public_key = read_spki(&mut tbs)?;

        let mut extensions = Vec::new();
        if version == 2 {
            if let Some(mut ctx) = tbs.read_optional_context(3)? {
                let mut ext_seq = ctx.read_sequence()?;
                while !ext_seq.is_at_end() {
                    extensions.push(Extension::read_der(&mut ext_seq)?);
                }
                ext_seq.finish()?;
                ctx.finish()?;
            }
        }
        tbs.finish()?;

        let outer_sig_alg = read_algorithm_identifier(&mut cert_seq)?;
        if outer_sig_alg != tbs_sig_alg {
            return Err(X509Error::Malformed(
                "signatureAlgorithm mismatch between TBS and outer fields",
            ));
        }
        let signature = cert_seq.read_bit_string_bytes()?.to_vec();
        cert_seq.finish()?;

        Ok(Certificate {
            raw: der.to_vec(),
            tbs_raw,
            serial,
            signature_algorithm: outer_sig_alg,
            issuer,
            not_before,
            not_after,
            subject,
            public_key,
            extensions,
            signature,
        })
    }

    /// The exact DER bytes this certificate was parsed from / built as.
    pub fn to_der(&self) -> &[u8] {
        &self.raw
    }

    /// The raw `tbsCertificate` bytes the signature covers.
    pub fn tbs_bytes(&self) -> &[u8] {
        &self.tbs_raw
    }

    /// SHA-256 fingerprint of the full DER encoding.
    pub fn fingerprint_sha256(&self) -> [u8; 32] {
        sha256(&self.raw)
    }

    /// SHA-1 fingerprint of the full DER encoding.
    pub fn fingerprint_sha1(&self) -> [u8; 20] {
        sha1(&self.raw)
    }

    /// The paper's certificate identity: subject string + RSA key modulus.
    pub fn identity(&self) -> CertIdentity {
        CertIdentity {
            subject: self.subject.to_string(),
            modulus: self.public_key.modulus.clone(),
        }
    }

    /// The short identifier the paper prints in Figure 2: the first 32 bits
    /// of (a hash of) the certificate subject, rendered as 8 hex digits.
    pub fn short_subject_id(&self) -> String {
        let h = sha256(self.subject.to_string().as_bytes());
        format!("{:02x}{:02x}{:02x}{:02x}", h[0], h[1], h[2], h[3])
    }

    /// Is the subject equal to the issuer (self-issued)?
    pub fn is_self_issued(&self) -> bool {
        self.subject == self.issuer
    }

    /// Does a basicConstraints extension mark this certificate as a CA?
    pub fn is_ca(&self) -> bool {
        self.basic_constraints().is_some_and(|bc| bc.ca)
    }

    /// The basicConstraints extension, if present.
    pub fn basic_constraints(&self) -> Option<BasicConstraints> {
        self.extensions.iter().find_map(|e| match e {
            Extension::BasicConstraints(bc) => Some(*bc),
            _ => None,
        })
    }

    /// The keyUsage extension, if present.
    pub fn key_usage(&self) -> Option<KeyUsage> {
        self.extensions.iter().find_map(|e| match e {
            Extension::KeyUsage(ku) => Some(*ku),
            _ => None,
        })
    }

    /// The extendedKeyUsage purposes, if the extension is present.
    pub fn extended_key_usage(&self) -> Option<&[KeyPurpose]> {
        self.extensions.iter().find_map(|e| match e {
            Extension::ExtendedKeyUsage(p) => Some(p.as_slice()),
            _ => None,
        })
    }

    /// The subjectKeyIdentifier, if present.
    pub fn subject_key_id(&self) -> Option<&[u8]> {
        self.extensions.iter().find_map(|e| match e {
            Extension::SubjectKeyIdentifier(id) => Some(id.as_slice()),
            _ => None,
        })
    }

    /// The authorityKeyIdentifier, if present.
    pub fn authority_key_id(&self) -> Option<&[u8]> {
        self.extensions.iter().find_map(|e| match e {
            Extension::AuthorityKeyIdentifier(id) => Some(id.as_slice()),
            _ => None,
        })
    }

    /// The dNSName entries of subjectAltName, if present.
    pub fn dns_names(&self) -> &[String] {
        self.extensions
            .iter()
            .find_map(|e| match e {
                Extension::SubjectAltName(names) => Some(names.as_slice()),
                _ => None,
            })
            .unwrap_or(&[])
    }

    /// Is `at` within the validity window (inclusive at both ends, as
    /// RFC 5280 specifies)?
    pub fn is_valid_at(&self, at: Time) -> bool {
        self.not_before <= at && at <= self.not_after
    }

    /// Has the certificate expired as of `at`?
    pub fn is_expired_at(&self, at: Time) -> bool {
        at > self.not_after
    }

    /// Verify this certificate's signature against an issuer public key.
    ///
    /// Consults the process-wide [`crate::sigmemo`] first: identical
    /// verifications (same issuer key, same signed bytes) run the RSA
    /// arithmetic once per process, however many stores or profiles
    /// re-anchor the certificate.
    pub fn verify_signature(&self, issuer_key: &RsaPublicKey) -> Result<(), X509Error> {
        crate::sigmemo::verify_memoised(
            issuer_key,
            self.signature_algorithm,
            &self.tbs_raw,
            &self.signature,
        )
    }

    /// Verify that `issuer_cert` signed this certificate (names must chain
    /// and the signature must verify).
    pub fn verify_issued_by(&self, issuer_cert: &Certificate) -> Result<(), X509Error> {
        if self.issuer != issuer_cert.subject {
            return Err(X509Error::Malformed("issuer name does not match"));
        }
        self.verify_signature(&issuer_cert.public_key)
    }
}

/// The paper's certificate-equivalence key: subject string plus RSA key
/// modulus. Two stores' roots with the same [`CertIdentity`] validate the
/// same children even when their DER differs (e.g. re-issued with a new
/// expiration date).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CertIdentity {
    /// Canonical subject string (RFC 4514-style rendering).
    pub subject: String,
    /// RSA modulus.
    pub modulus: Uint,
}

impl std::fmt::Display for CertIdentity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (modulus {} bits)", self.subject, self.modulus.bit_len())
    }
}

fn read_algorithm_identifier(r: &mut DerReader<'_>) -> Result<SignatureAlgorithm, X509Error> {
    let mut alg = r.read_sequence()?;
    let oid = alg.read_oid()?;
    // Parameters: NULL for the RSA family.
    if !alg.is_at_end() {
        alg.read_null()?;
    }
    alg.finish()?;
    if oid == Oid::sha256_with_rsa() {
        Ok(SignatureAlgorithm::Sha256WithRsa)
    } else if oid == Oid::sha1_with_rsa() {
        Ok(SignatureAlgorithm::Sha1WithRsa)
    } else {
        Err(X509Error::UnsupportedAlgorithm(oid.to_string()))
    }
}

fn read_spki(r: &mut DerReader<'_>) -> Result<RsaPublicKey, X509Error> {
    let mut spki = r.read_sequence()?;
    let mut alg = spki.read_sequence()?;
    let oid = alg.read_oid()?;
    if oid != Oid::rsa_encryption() {
        return Err(X509Error::UnsupportedAlgorithm(oid.to_string()));
    }
    alg.read_null()?;
    alg.finish()?;
    let key_bits = spki.read_bit_string_bytes()?;
    spki.finish()?;

    let mut key = DerReader::new(key_bits);
    let mut key_seq = key.read_sequence()?;
    let modulus = Uint::from_be_bytes(&key_seq.read_integer_bytes()?);
    let exponent = Uint::from_be_bytes(&key_seq.read_integer_bytes()?);
    key_seq.finish()?;
    key.finish()?;
    if modulus.is_zero() || exponent.is_zero() {
        return Err(X509Error::Malformed("degenerate RSA key"));
    }
    Ok(RsaPublicKey { modulus, exponent })
}

// Tests for parsing live in `builder.rs` (build → parse round trips) and in
// the crate-level integration tests; the failure-path tests are here.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn garbage_inputs_rejected() {
        assert!(Certificate::parse(&[]).is_err());
        assert!(Certificate::parse(&[0x30, 0x00]).is_err());
        assert!(Certificate::parse(b"not a certificate at all").is_err());
    }

    #[test]
    fn truncated_prefix_rejected() {
        // A plausible SEQUENCE header claiming more bytes than provided.
        assert!(Certificate::parse(&[0x30, 0x82, 0x01, 0x00, 0x30]).is_err());
    }
}
