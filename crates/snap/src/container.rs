//! The sectioned snapshot container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! +--------------------------------------------------------------+
//! | magic "TNGLSNP1" (8)  | version u32 | section count u32      |
//! +--------------------------------------------------------------+
//! | section table: count × { id u8, offset u64, len u64,         |
//! |                          checksum u64 }   (25 bytes each)    |
//! +--------------------------------------------------------------+
//! | section bodies, concatenated in table order                  |
//! +--------------------------------------------------------------+
//! ```
//!
//! The checksum is the shared FNV-1a 64-bit fold over the body bytes.
//! [`Snapshot::parse`] validates the header and table eagerly (extents
//! in bounds, no duplicate ids) but leaves bodies untouched;
//! [`Snapshot::section`] verifies a body's checksum on first access —
//! the lazy half of the contract. Corruption anywhere classifies as a
//! [`SnapError`], never a panic.

use crate::SnapError;
use tangled_crypto::hash::fnv1a;

/// The container magic.
pub const MAGIC: [u8; 8] = *b"TNGLSNP1";
/// The format version this build writes and reads.
pub const FORMAT_VERSION: u32 = 1;
/// Upper bound on table entries — far above any real file, low enough
/// that a corrupt count cannot drive a large allocation.
pub const MAX_SECTIONS: usize = 64;

const HEADER_LEN: usize = 16;
const ENTRY_LEN: usize = 25;

/// The sections a study snapshot carries, in file order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectionId {
    /// Headline counts (for `snap verify` reporting).
    Meta,
    /// Deduplicated certificate DER blobs.
    Corpus,
    /// Notary chains, intermediates and the root universe, as corpus
    /// indices.
    Ecosystem,
    /// Root stores: the six reference profiles then every distinct
    /// device store.
    Stores,
    /// Devices and sessions.
    Population,
    /// ValidationIndex tallies.
    Validation,
    /// The RunHealth ledger.
    Health,
    /// The four ecosystem store families (Apple, Microsoft, Mozilla NSS,
    /// Java) the disparity engine compares — kept apart from `Stores` so
    /// pre-disparity snapshots degrade by quarantine, not by failing the
    /// reference-store decode.
    EcoStores,
    /// Delta-chain metadata: the id of the base this file applies over,
    /// the epoch label, and the checksums of the sections it *reuses*
    /// from the base. Present only in delta files ([`crate::delta`]).
    DeltaMeta,
    /// Folded trustd swap state: the journal compacted to one
    /// last-install record per profile, each at its original epoch
    /// ([`crate::compact`]). Present only in checkpoint deltas.
    TrustState,
}

impl SectionId {
    /// Every section this build knows, in canonical file order. Study
    /// snapshots carry only [`SectionId::STUDY`]; the two trailing ids
    /// appear in delta and checkpoint files.
    pub const ALL: [SectionId; 10] = [
        SectionId::Meta,
        SectionId::Corpus,
        SectionId::Ecosystem,
        SectionId::Stores,
        SectionId::Population,
        SectionId::Validation,
        SectionId::Health,
        SectionId::EcoStores,
        SectionId::DeltaMeta,
        SectionId::TrustState,
    ];

    /// The sections a full study snapshot carries, in file order.
    pub const STUDY: [SectionId; 8] = [
        SectionId::Meta,
        SectionId::Corpus,
        SectionId::Ecosystem,
        SectionId::Stores,
        SectionId::Population,
        SectionId::Validation,
        SectionId::Health,
        SectionId::EcoStores,
    ];

    /// The table id byte.
    pub fn tag(self) -> u8 {
        match self {
            SectionId::Meta => 1,
            SectionId::Corpus => 2,
            SectionId::Ecosystem => 3,
            SectionId::Stores => 4,
            SectionId::Population => 5,
            SectionId::Validation => 6,
            SectionId::Health => 7,
            SectionId::EcoStores => 8,
            SectionId::DeltaMeta => 9,
            SectionId::TrustState => 10,
        }
    }

    /// Human-readable section name (stable: used in error labels and
    /// `snap verify` output).
    pub fn name(self) -> &'static str {
        match self {
            SectionId::Meta => "meta",
            SectionId::Corpus => "corpus",
            SectionId::Ecosystem => "ecosystem",
            SectionId::Stores => "stores",
            SectionId::Population => "population",
            SectionId::Validation => "validation",
            SectionId::Health => "health",
            SectionId::EcoStores => "eco-stores",
            SectionId::DeltaMeta => "delta-meta",
            SectionId::TrustState => "trust-state",
        }
    }

    /// Resolve a table id byte to a known section.
    pub fn from_tag(tag: u8) -> Option<SectionId> {
        SectionId::ALL.into_iter().find(|s| s.tag() == tag)
    }
}

/// One parsed section-table row.
#[derive(Debug, Clone)]
pub struct SectionEntry {
    /// The raw id byte (may name a section this build does not know).
    pub tag: u8,
    /// Body offset from the start of the file.
    pub offset: u64,
    /// Body length in bytes.
    pub len: u64,
    /// FNV-1a 64 checksum of the body.
    pub checksum: u64,
}

/// Assemble a container from encoded section bodies.
///
/// Bodies land in the order given; the caller passes them in
/// [`SectionId::ALL`] order so the file bytes are a pure function of the
/// section contents — this is what makes snapshots byte-identical at any
/// encoding pool width.
pub fn assemble(sections: &[(SectionId, Vec<u8>)]) -> Vec<u8> {
    assemble_tagged(
        &sections
            .iter()
            .map(|(id, body)| (id.tag(), body.as_slice()))
            .collect::<Vec<_>>(),
    )
}

/// [`assemble`] over raw tag bytes and borrowed bodies — the
/// materialisation path reassembles sections lifted out of other files
/// without copying them into owned `Vec`s first. Byte-identical to
/// [`assemble`] for the same tags and bodies.
pub fn assemble_tagged(sections: &[(u8, &[u8])]) -> Vec<u8> {
    let table_len = sections.len() * ENTRY_LEN;
    let bodies: usize = sections.iter().map(|(_, b)| b.len()).sum();
    let mut out = Vec::with_capacity(HEADER_LEN + table_len + bodies);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    let mut offset = (HEADER_LEN + table_len) as u64;
    for (tag, body) in sections {
        out.push(*tag);
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(body).to_le_bytes());
        offset += body.len() as u64;
    }
    for (_, body) in sections {
        out.extend_from_slice(body);
    }
    out
}

/// A parsed container: validated header and table, lazily checked bodies.
#[derive(Debug)]
pub struct Snapshot {
    data: Vec<u8>,
    entries: Vec<SectionEntry>,
}

impl Snapshot {
    /// Parse a container from its full byte image. Header and section
    /// table are validated here; body checksums are deferred to
    /// [`Snapshot::section`].
    pub fn parse(data: Vec<u8>) -> Result<Snapshot, SnapError> {
        if data.len() < HEADER_LEN {
            return Err(SnapError::Truncated { context: "header" });
        }
        if data[..8] != MAGIC {
            return Err(SnapError::BadMagic);
        }
        let version = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(SnapError::BadVersion { found: version });
        }
        let count = u32::from_le_bytes(data[12..16].try_into().expect("4 bytes")) as usize;
        if count > MAX_SECTIONS {
            return Err(SnapError::BadSectionTable {
                detail: "section count exceeds maximum",
            });
        }
        let table_end = HEADER_LEN + count * ENTRY_LEN;
        if data.len() < table_end {
            return Err(SnapError::Truncated {
                context: "section table",
            });
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let row = &data[HEADER_LEN + i * ENTRY_LEN..HEADER_LEN + (i + 1) * ENTRY_LEN];
            let entry = SectionEntry {
                tag: row[0],
                offset: u64::from_le_bytes(row[1..9].try_into().expect("8 bytes")),
                len: u64::from_le_bytes(row[9..17].try_into().expect("8 bytes")),
                checksum: u64::from_le_bytes(row[17..25].try_into().expect("8 bytes")),
            };
            let end = entry.offset.checked_add(entry.len).ok_or({
                SnapError::BadSectionTable {
                    detail: "section extent overflows",
                }
            })?;
            if entry.offset < table_end as u64 || end > data.len() as u64 {
                return Err(SnapError::BadSectionTable {
                    detail: "section extent out of bounds",
                });
            }
            if entries.iter().any(|e: &SectionEntry| e.tag == entry.tag) {
                return Err(SnapError::BadSectionTable {
                    detail: "duplicate section id",
                });
            }
            entries.push(entry);
        }
        Ok(Snapshot { data, entries })
    }

    /// Read and parse a container file.
    pub fn open(path: &str) -> Result<Snapshot, SnapError> {
        Snapshot::parse(std::fs::read(path)?)
    }

    /// The parsed section table.
    pub fn entries(&self) -> &[SectionEntry] {
        &self.entries
    }

    /// Total container size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// A section body, checksum-verified on access.
    pub fn section(&self, id: SectionId) -> Result<&[u8], SnapError> {
        let entry = self
            .entries
            .iter()
            .find(|e| e.tag == id.tag())
            .ok_or(SnapError::MissingSection { section: id.name() })?;
        let body = &self.data[entry.offset as usize..(entry.offset + entry.len) as usize];
        if fnv1a(body) != entry.checksum {
            return Err(SnapError::ChecksumMismatch { section: id.name() });
        }
        Ok(body)
    }

    /// The body bytes behind one table entry, checksum-verified on
    /// access. Errors are attributed to the entry's canonical section
    /// name (or `"unknown"` for a tag this build does not know).
    pub fn entry_body(&self, entry: &SectionEntry) -> Result<&[u8], SnapError> {
        let body = &self.data[entry.offset as usize..(entry.offset + entry.len) as usize];
        if fnv1a(body) != entry.checksum {
            return Err(SnapError::ChecksumMismatch {
                section: SectionId::from_tag(entry.tag)
                    .map(SectionId::name)
                    .unwrap_or("unknown"),
            });
        }
        Ok(body)
    }

    /// Checksum every known section, returning one row per table entry:
    /// `(name, len, result)`. Unknown ids report as `"unknown"` with a
    /// bad-section-table error; damaged bodies report their checksum
    /// failure. Never panics — this is what `snap verify` prints.
    pub fn verify(&self) -> Vec<(&'static str, u64, Result<(), SnapError>)> {
        self.verify_report()
            .into_iter()
            .map(|row| (row.name, row.len, row.result))
            .collect()
    }

    /// Like [`Snapshot::verify`], but each row also carries the checksum
    /// the section table records and the checksum the body actually
    /// folds to — so a damaged section can be reported with both values,
    /// not just a pass/fail bit.
    pub fn verify_report(&self) -> Vec<VerifyRow> {
        self.entries
            .iter()
            .map(|entry| {
                let body =
                    &self.data[entry.offset as usize..(entry.offset + entry.len) as usize];
                let actual = fnv1a(body);
                let (name, result) = match SectionId::from_tag(entry.tag) {
                    Some(id) => (id.name(), self.section(id).map(|_| ())),
                    None => (
                        "unknown",
                        Err(SnapError::BadSectionTable {
                            detail: "unknown section id",
                        }),
                    ),
                };
                VerifyRow {
                    name,
                    len: entry.len,
                    expected: entry.checksum,
                    actual,
                    result,
                }
            })
            .collect()
    }
}

/// One `snap verify` row: section name, body length, the checksum the
/// section table records, the checksum the body folds to, and the
/// verification result.
pub struct VerifyRow {
    /// Canonical section name (or `"unknown"` for an unrecognised tag).
    pub name: &'static str,
    /// Body length in bytes.
    pub len: u64,
    /// Checksum recorded in the section table.
    pub expected: u64,
    /// Checksum the body bytes actually fold to.
    pub actual: u64,
    /// Verification outcome for this section.
    pub result: Result<(), SnapError>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        assemble(&[
            (SectionId::Meta, vec![1, 2, 3]),
            (SectionId::Corpus, vec![4, 5, 6, 7]),
        ])
    }

    #[test]
    fn round_trips_and_checks_sections() {
        let snap = Snapshot::parse(sample()).expect("parse");
        assert_eq!(snap.section(SectionId::Meta).unwrap(), &[1, 2, 3]);
        assert_eq!(snap.section(SectionId::Corpus).unwrap(), &[4, 5, 6, 7]);
        assert_eq!(
            snap.section(SectionId::Health).unwrap_err().label(),
            "missing-section"
        );
        assert!(snap.verify().iter().all(|(_, _, r)| r.is_ok()));
    }

    #[test]
    fn body_corruption_is_lazy_and_classified() {
        let mut data = sample();
        let n = data.len();
        data[n - 1] ^= 0xff; // last corpus body byte
        let snap = Snapshot::parse(data).expect("table still parses");
        assert_eq!(snap.section(SectionId::Meta).unwrap(), &[1, 2, 3]);
        assert_eq!(
            snap.section(SectionId::Corpus).unwrap_err(),
            SnapError::ChecksumMismatch { section: "corpus" }
        );
        let report = snap.verify();
        assert!(report.iter().any(|(name, _, r)| *name == "corpus" && r.is_err()));
    }

    #[test]
    fn header_corruption_classifies() {
        let mut bad_magic = sample();
        bad_magic[0] = b'X';
        assert_eq!(Snapshot::parse(bad_magic).unwrap_err(), SnapError::BadMagic);

        let mut bad_version = sample();
        bad_version[8] = 99;
        assert_eq!(
            Snapshot::parse(bad_version).unwrap_err(),
            SnapError::BadVersion { found: 99 }
        );

        let mut short = sample();
        short.truncate(10);
        assert_eq!(
            Snapshot::parse(short).unwrap_err().label(),
            "truncated"
        );

        let mut bad_count = sample();
        bad_count[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(
            Snapshot::parse(bad_count).unwrap_err().label(),
            "bad-section-table"
        );
    }
}
