//! `tangled-pki` — root certificate stores, trust anchors, and the
//! reference store manifests of the paper.
//!
//! The core object is the [`store::RootStore`]: an ordered, mutable set of
//! [`trust::TrustAnchor`]s keyed by the paper's certificate identity
//! (subject + RSA modulus). On top of it sit:
//!
//! * [`factory::CaFactory`] — deterministic minting of CA certificates from
//!   a name and workspace seed, so the same CA carries the same key pair
//!   everywhere it appears (across stores, firmware images and simulators);
//! * [`diff::StoreDiff`] — the audit primitive: which anchors were added,
//!   removed, or carried over between two stores (hash-join and
//!   sorted-merge implementations, ablated in the bench crate);
//! * [`stores`] — manifests reproducing the structure of the eight
//!   reference stores of the paper (AOSP 4.1–4.4, Mozilla, iOS 7, plus the
//!   wild-Android aggregate), with the exact cardinalities of Table 1 and
//!   the byte-vs-equivalence overlap of §2/Table 4;
//! * [`extras`] — the 105 named non-AOSP certificates of Figure 2 with
//!   their provenance (manufacturer / operator rows) and store-membership
//!   classes, plus the rooted-device CAs of Table 5;
//! * [`cacerts`] — an emulation of Android's on-disk
//!   `/system/etc/security/cacerts/` layout (subject-hash file names).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod cacerts;
pub mod diff;
pub mod extras;
pub mod factory;
pub mod store;
pub mod stores;
pub mod trust;
pub mod vocab;

pub use diff::StoreDiff;
pub use factory::CaFactory;
pub use store::RootStore;
pub use stores::ReferenceStore;
pub use trust::{AnchorSource, TrustAnchor, TrustBits};

/// The deterministic seed every reference object in the workspace derives
/// from. Changing it re-keys the entire synthetic PKI.
pub const WORKSPACE_SEED: u64 = 0x007A_4E61_6C79_7A72; // "tangled" flavoured

/// Default RSA modulus size for synthetic CAs. 512 bits keeps from-scratch
/// keygen fast while exercising every multi-limb code path.
pub const DEFAULT_KEY_BITS: usize = 512;
