//! Netalyzr-side interception detection.
//!
//! "Netalyzr for Android checks the full trust chain of TLS connections to
//! the domains of popular websites and mobile apps" (§7). [`probe`]
//! replays that check: validate the presented chain against the device's
//! root store, compare the anchor with the expected public-PKI issuer, and
//! apply app-style certificate pinning.

use crate::origin::OriginServers;
use crate::policy::Target;
use std::sync::Arc;
use tangled_pki::store::RootStore;
use tangled_x509::{Certificate, CertIdentity, ChainOptions, ChainVerifier};

/// Outcome of probing one target through one network path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Chain anchors in the device store at the expected public-PKI CA.
    Clean,
    /// Chain does not anchor in the device store at all — visible
    /// interception (the §7 Reality Mine case: proxy root not installed).
    UntrustedChain {
        /// Subject of the chain's topmost presented certificate.
        presented_issuer: String,
    },
    /// Chain anchors in the device store, but at an unexpected anchor —
    /// silent interception via an installed root (the §6 rooted-handset
    /// threat model).
    UnexpectedAnchor {
        /// Identity of the anchor actually used.
        anchor: CertIdentity,
    },
    /// The app pins the expected issuer and the presented chain violates
    /// the pin (detected even when the store trusts the chain).
    PinViolation,
    /// No chain was presented for the target.
    NoChain,
}

impl Verdict {
    /// Does this verdict indicate interception of any kind?
    pub fn is_interception(&self) -> bool {
        !matches!(self, Verdict::Clean)
    }
}

/// Per-target probe outcome.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// The probed endpoint.
    pub target: Target,
    /// The verdict.
    pub verdict: Verdict,
}

/// Probe one target: validate `presented` against `device_store`,
/// expecting chains to anchor at `expected_issuer`. `pinned` applies an
/// app-style pin on the expected issuer identity.
pub fn probe(
    target: &Target,
    presented: &[Arc<Certificate>],
    device_store: &RootStore,
    expected_issuer: &CertIdentity,
    pinned: bool,
) -> ProbeReport {
    let verdict = classify(presented, device_store, expected_issuer, pinned);
    ProbeReport {
        target: target.clone(),
        verdict,
    }
}

fn classify(
    presented: &[Arc<Certificate>],
    device_store: &RootStore,
    expected_issuer: &CertIdentity,
    pinned: bool,
) -> Verdict {
    let Some(leaf) = presented.first() else {
        return Verdict::NoChain;
    };
    let mut verifier = ChainVerifier::new();
    for cert in device_store.enabled_certificates() {
        verifier.add_anchor(cert);
    }
    for link in &presented[1..] {
        verifier.add_intermediate(Arc::clone(link));
    }
    let opts = ChainOptions::at(crate::study_time());
    match verifier.verify(leaf, opts) {
        Ok(chain) => {
            let anchor = chain.anchor().identity();
            if &anchor == expected_issuer {
                Verdict::Clean
            } else if pinned {
                Verdict::PinViolation
            } else {
                Verdict::UnexpectedAnchor { anchor }
            }
        }
        Err(_) => Verdict::UntrustedChain {
            presented_issuer: presented
                .last()
                .expect("non-empty")
                .issuer
                .to_string(),
        },
    }
}

/// Probe the full Table 6 target list through a proxy, returning one
/// report per target. `pinned_targets` lists endpoints whose client apps
/// pin their issuer. A classified [`MintError`](crate::proxy::MintError)
/// from the proxy propagates instead of panicking.
pub fn probe_all(
    proxy: &mut crate::proxy::MitmProxy,
    origin: &OriginServers,
    device_store: &RootStore,
    pinned_targets: &[Target],
) -> Result<Vec<ProbeReport>, crate::proxy::MintError> {
    let expected = origin.issuer_identity();
    let mut targets: Vec<Target> = origin.targets().cloned().collect();
    targets.sort_by_key(|a| a.to_string());
    let mut reports = Vec::with_capacity(targets.len());
    for t in &targets {
        let chain = proxy.serve(t, origin)?;
        reports.push(probe(
            t,
            &chain,
            device_store,
            &expected,
            pinned_targets.contains(t),
        ));
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proxy::MitmProxy;
    use tangled_pki::stores::ReferenceStore;
    use tangled_pki::trust::AnchorSource;

    fn device_store() -> RootStore {
        ReferenceStore::Aosp44.cached().cloned_as("device")
    }

    #[test]
    fn clean_path_without_proxy() {
        let origin = OriginServers::for_table6();
        let store = device_store();
        let expected = origin.issuer_identity();
        let t = Target::parse("gmail.com:443").unwrap();
        let chain = origin.chain(&t).unwrap().to_vec();
        let report = probe(&t, &chain, &store, &expected, false);
        assert_eq!(report.verdict, Verdict::Clean);
    }

    #[test]
    fn reality_mine_interception_detected() {
        let origin = OriginServers::for_table6();
        let mut proxy = MitmProxy::reality_mine().unwrap();
        let store = device_store();
        let reports = probe_all(&mut proxy, &origin, &store, &[]).unwrap();
        let intercepted: Vec<_> = reports
            .iter()
            .filter(|r| r.verdict.is_interception())
            .collect();
        // Exactly the 12 Table 6 intercepted endpoints are flagged.
        assert_eq!(intercepted.len(), 12);
        for r in &intercepted {
            match &r.verdict {
                Verdict::UntrustedChain { presented_issuer } => {
                    assert!(presented_issuer.contains("Reality Mine"));
                }
                other => panic!("expected UntrustedChain, got {other:?}"),
            }
        }
        // The 9 whitelisted endpoints probe clean.
        assert_eq!(reports.len() - intercepted.len(), 9);
    }

    #[test]
    fn installed_proxy_root_becomes_unexpected_anchor() {
        // The §6 threat: if the proxy root IS installed (root app), the
        // chain validates — only anchor comparison catches it.
        let origin = OriginServers::for_table6();
        let mut proxy = MitmProxy::reality_mine().unwrap();
        let mut store = device_store();
        store.add_cert(Arc::clone(proxy.root_cert()), AnchorSource::RootApp);
        let expected = origin.issuer_identity();
        let t = Target::parse("www.chase.com:443").unwrap();
        let chain = proxy.serve(&t, &origin).unwrap();
        let report = probe(&t, &chain, &store, &expected, false);
        match report.verdict {
            Verdict::UnexpectedAnchor { ref anchor } => {
                assert!(anchor.subject.contains("Reality Mine"));
            }
            ref other => panic!("expected UnexpectedAnchor, got {other:?}"),
        }
    }

    #[test]
    fn pinning_detects_even_with_installed_root() {
        let origin = OriginServers::for_table6();
        let mut proxy = MitmProxy::reality_mine().unwrap();
        let mut store = device_store();
        store.add_cert(Arc::clone(proxy.root_cert()), AnchorSource::RootApp);
        let expected = origin.issuer_identity();
        let t = Target::parse("mail.google.com:443").unwrap();
        let chain = proxy.serve(&t, &origin).unwrap();
        let report = probe(&t, &chain, &store, &expected, true);
        assert_eq!(report.verdict, Verdict::PinViolation);
    }

    #[test]
    fn no_chain_verdict() {
        let store = device_store();
        let origin = OriginServers::for_table6();
        let expected = origin.issuer_identity();
        let t = Target::new("unreachable.example", 443);
        let report = probe(&t, &[], &store, &expected, false);
        assert_eq!(report.verdict, Verdict::NoChain);
        assert!(report.verdict.is_interception());
    }
}
