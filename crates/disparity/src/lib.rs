//! `tangled-disparity` — the cross-ecosystem root-store disparity engine.
//!
//! The paper's §5 measures how far Android vendor stores drift from the
//! AOSP baseline. This crate widens the lens to *ecosystems*: the four
//! Android/desktop reference stores are joined by calibrated Apple,
//! Microsoft, Mozilla NSS and Java root-store families
//! ([`tangled_pki::stores::EcosystemStore`]) and compared three ways:
//!
//! * **set disparity** — pairwise Jaccard similarity over anchor
//!   identity sets (the paper's subject+modulus equivalence), plus
//!   union/intersection cardinalities;
//! * **validation disparity** — every chain of the study's Notary corpus
//!   validated against all ten stores, yielding a per-chain
//!   *verdict vector* ("valid on {AOSP 4.4, Mozilla NSS} only"), the
//!   trusted-by-exactly-*k* histogram, and per-store coverage counts;
//! * **name-collision disparity** — the §5.2 "(+unusual)" near-clone
//!   check: two stores sharing a display name whose anchor *content*
//!   diverges, demonstrating why every comparison here keys on
//!   certificate identity, never on store or anchor names.
//!
//! Verdict vectors are not recomputed locally: each chain goes through
//! [`TrustService::handle`] with a `compare` request — the same code
//! path a live trustd serves — so the offline report and a served
//! replay are byte-identical *by construction*, and
//! [`tangled_trustd::verdict_fingerprint`] over the canonical reply
//! strings is printed by both `tangled disparity` and
//! `tangled loadgen --op compare` for a one-`grep` cross-check.
//!
//! Chains shard over the ambient [`tangled_exec::ExecPool`]; every
//! number and the rendered report are byte-identical at any pool width.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;

pub use drift::{compute_drift, DriftReport, StoreDrift};

use std::collections::BTreeSet;
use std::sync::Arc;
use tangled_exec::ExecPool;
use tangled_notary::{Ecosystem, EcosystemSpec};
use tangled_pki::diff::diff;
use tangled_pki::store::RootStore;
use tangled_pki::stores::{
    global_factory, standard_store_names, unusual_clone, EcosystemStore, ReferenceStore,
};
use tangled_trustd::{
    canonical, verdict_fingerprint, ChainVerdict, Request, Response, TrustService,
    DEFAULT_CACHE_CAPACITY,
};
use tangled_x509::CertIdentity;

/// The ten standard stores, in [`standard_store_names`] order: the six
/// reference profiles, then the four ecosystem families.
pub fn standard_stores() -> Vec<Arc<RootStore>> {
    ReferenceStore::ALL
        .into_iter()
        .map(|rs| rs.cached())
        .chain(EcosystemStore::ALL.into_iter().map(|es| es.cached()))
        .collect()
}

/// One cell of the pairwise similarity matrix, kept as exact integers so
/// the rendered ratio is a pure function of the anchor sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JaccardCell {
    /// `|A ∩ B|` under the paper's identity.
    pub intersection: usize,
    /// `|A ∪ B|` under the paper's identity.
    pub union: usize,
}

impl JaccardCell {
    /// The Jaccard similarity `|A ∩ B| / |A ∪ B|` (1.0 for two empty sets).
    pub fn value(&self) -> f64 {
        if self.union == 0 {
            1.0
        } else {
            self.intersection as f64 / self.union as f64
        }
    }
}

/// Pairwise Jaccard matrix over the stores' anchor identity sets, in the
/// given store order. Symmetric with unit diagonal.
pub fn jaccard_matrix(stores: &[Arc<RootStore>]) -> Vec<Vec<JaccardCell>> {
    let sets: Vec<BTreeSet<&CertIdentity>> = stores
        .iter()
        .map(|s| s.identities().iter().collect())
        .collect();
    sets.iter()
        .map(|a| {
            sets.iter()
                .map(|b| {
                    let intersection = a.intersection(b).count();
                    JaccardCell {
                        intersection,
                        union: a.len() + b.len() - intersection,
                    }
                })
                .collect()
        })
        .collect()
}

/// One chain's verdict vector across the ten standard stores.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainVerdicts {
    /// The chain's content key (hex), from the served `compare` reply.
    pub chain_key: String,
    /// Trusted flag per store, in [`standard_store_names`] order.
    pub trusted: Vec<bool>,
    /// The canonical served-reply string ([`tangled_trustd::canonical`]).
    pub canonical: String,
}

/// A group of chains sharing one verdict vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerdictClass {
    /// The stores that trust these chains, in standard order.
    pub trusted_in: Vec<&'static str>,
    /// How many corpus chains land in this class.
    pub count: usize,
    /// The chain key (hex) of the first chain seen in the class.
    pub example: String,
}

/// The §5.2 name-collision demonstration: a store pair that shares a
/// display name but not its anchor content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NameCollision {
    /// The colliding display name.
    pub name: String,
    /// Anchors in the clone but not the base.
    pub added: usize,
    /// Anchors in the base but not the clone.
    pub removed: usize,
    /// Anchors shared by both (by identity).
    pub common: usize,
}

/// The full disparity report. Every field is a pure function of the
/// corpus scale; [`DisparityReport::render`] is the golden text form.
#[derive(Debug, Clone, PartialEq)]
pub struct DisparityReport {
    /// The Notary corpus scale the validation half ran at.
    pub scale: f64,
    /// The ten store names, in canonical order.
    pub store_names: Vec<&'static str>,
    /// Anchor count per store.
    pub anchor_counts: Vec<usize>,
    /// Distinct anchor identities across all ten stores.
    pub union_anchors: usize,
    /// Anchor identities present in every store.
    pub core_anchors: usize,
    /// Pairwise Jaccard matrix, store order on both axes.
    pub jaccard: Vec<Vec<JaccardCell>>,
    /// Per-chain verdict vectors, in corpus order.
    pub verdicts: Vec<ChainVerdicts>,
    /// Chains trusted per store (validation coverage), store order.
    pub coverage: Vec<usize>,
    /// Chains trusted by at least one store.
    pub union_trusted: usize,
    /// Chains trusted by all ten stores.
    pub intersection_trusted: usize,
    /// `exactly_k[k]` = chains trusted by exactly `k` stores, `k` ∈ 0..=10.
    pub exactly_k: Vec<usize>,
    /// Distinct verdict vectors, ordered by first appearance in the corpus.
    pub classes: Vec<VerdictClass>,
    /// The near-clone demonstration.
    pub collision: NameCollision,
    /// [`verdict_fingerprint`] over the canonical reply strings.
    pub fingerprint: u64,
}

fn compare_chain(service: &TrustService, chain: &[Vec<u8>], width: usize) -> ChainVerdicts {
    let resp = service.handle(&Request::Compare {
        chain: chain.to_vec(),
    });
    match &resp {
        Response::Compare {
            chain_key,
            verdicts,
            ..
        } => ChainVerdicts {
            chain_key: chain_key.clone(),
            trusted: verdicts
                .iter()
                .map(|(_, v)| matches!(v, ChainVerdict::Trusted { .. }))
                .collect(),
            canonical: canonical(&resp),
        },
        other => ChainVerdicts {
            chain_key: String::new(),
            trusted: vec![false; width],
            canonical: canonical(other),
        },
    }
}

/// Compute the disparity report at `scale` (the Notary corpus scale in
/// `(0, 1]`; `tangled loadgen --sessions N` maps to
/// [`tangled_trustd::scale_for_sessions`]`(N)`).
///
/// Set disparity comes straight from the cached stores; validation
/// disparity routes every corpus chain through a local
/// [`TrustService`]'s `compare` handler, sharded over the ambient pool.
pub fn compute(scale: f64) -> DisparityReport {
    let stores = standard_stores();
    let store_names = standard_store_names();
    let anchor_counts: Vec<usize> = stores.iter().map(|s| s.len()).collect();
    let jaccard = jaccard_matrix(&stores);

    let mut union_set: BTreeSet<&CertIdentity> = BTreeSet::new();
    for store in &stores {
        union_set.extend(store.identities().iter());
    }
    let core_anchors = stores[0]
        .identities()
        .iter()
        .filter(|id| stores[1..].iter().all(|s| s.identities().contains(id)))
        .count();

    let eco = Ecosystem::generate(&EcosystemSpec::scaled(scale));
    let chains: Vec<Vec<Vec<u8>>> = eco
        .certs
        .iter()
        .map(|nc| nc.chain.iter().map(|c| c.to_der().to_vec()).collect())
        .collect();
    let service = TrustService::new(DEFAULT_CACHE_CAPACITY);
    let width = store_names.len();
    let verdicts: Vec<ChainVerdicts> = ExecPool::current()
        .par_map_indexed(&chains, |_, chain| compare_chain(&service, chain, width));

    let coverage: Vec<usize> = (0..width)
        .map(|i| verdicts.iter().filter(|v| v.trusted[i]).count())
        .collect();
    let union_trusted = verdicts
        .iter()
        .filter(|v| v.trusted.iter().any(|&t| t))
        .count();
    let intersection_trusted = verdicts
        .iter()
        .filter(|v| v.trusted.iter().all(|&t| t))
        .count();
    let mut exactly_k = vec![0usize; width + 1];
    for v in &verdicts {
        exactly_k[v.trusted.iter().filter(|&&t| t).count()] += 1;
    }

    // Verdict classes, in first-appearance order (corpus order is
    // deterministic, so so is this).
    let mut classes: Vec<(Vec<bool>, VerdictClass)> = Vec::new();
    for v in &verdicts {
        match classes.iter_mut().find(|(mask, _)| *mask == v.trusted) {
            Some((_, class)) => class.count += 1,
            None => {
                let trusted_in: Vec<&'static str> = store_names
                    .iter()
                    .zip(&v.trusted)
                    .filter(|(_, &t)| t)
                    .map(|(&n, _)| n)
                    .collect();
                classes.push((
                    v.trusted.clone(),
                    VerdictClass {
                        trusted_in,
                        count: 1,
                        example: v.chain_key.clone(),
                    },
                ));
            }
        }
    }
    let classes: Vec<VerdictClass> = classes.into_iter().map(|(_, c)| c).collect();

    // The name-collision check: a "(+unusual)" clone of AOSP 4.4 shares
    // the display name but carries three extra manufacturer anchors.
    let base = ReferenceStore::Aosp44.cached();
    let clone = {
        let mut f = global_factory().lock().expect("factory poisoned");
        unusual_clone(&mut f, &base, 3)
    };
    let d = diff(&base, &clone);
    let collision = NameCollision {
        name: clone.name().to_owned(),
        added: d.added_count(),
        removed: d.removed_count(),
        common: d.common.len(),
    };

    let fingerprint = verdict_fingerprint(
        &verdicts
            .iter()
            .map(|v| v.canonical.clone())
            .collect::<Vec<_>>(),
    );

    tangled_obs::registry::add("disparity.reports", 1);
    tangled_obs::registry::add("disparity.chains", verdicts.len() as u64);
    tangled_obs::registry::add("disparity.classes", classes.len() as u64);

    DisparityReport {
        scale,
        store_names,
        anchor_counts,
        union_anchors: union_set.len(),
        core_anchors,
        jaccard,
        verdicts,
        coverage,
        union_trusted,
        intersection_trusted,
        exactly_k,
        classes,
        collision,
        fingerprint,
    }
}

/// Short column labels for the matrix header (the full names are in the
/// store table above it).
fn short_name(name: &str) -> String {
    match name {
        "AOSP 4.1" => "a41".into(),
        "AOSP 4.2" => "a42".into(),
        "AOSP 4.3" => "a43".into(),
        "AOSP 4.4" => "a44".into(),
        "Mozilla" => "moz".into(),
        "iOS 7" => "ios".into(),
        "Apple" => "app".into(),
        "Microsoft" => "ms".into(),
        "Mozilla NSS" => "nss".into(),
        "Java" => "jav".into(),
        other => other.chars().take(3).collect::<String>().to_lowercase(),
    }
}

impl DisparityReport {
    /// The canonical served-reply strings, in corpus order — what a
    /// `loadgen --op compare` replay against a live trustd must
    /// reproduce byte for byte.
    pub fn canonical_verdicts(&self) -> Vec<String> {
        self.verdicts.iter().map(|v| v.canonical.clone()).collect()
    }

    /// Render the golden text report. Byte-identical at any pool width.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: &str| {
            out.push_str(line);
            out.push('\n');
        };
        push(&mut out, "cross-ecosystem root-store disparity report");
        push(&mut out, &format!("corpus scale: {}", self.scale));
        push(&mut out, "");
        push(
            &mut out,
            &format!(
                "stores: {} | union {} anchors | shared core {}",
                self.store_names.len(),
                self.union_anchors,
                self.core_anchors
            ),
        );
        for (name, count) in self.store_names.iter().zip(&self.anchor_counts) {
            push(&mut out, &format!("  {name:<12} {count:>4} anchors"));
        }
        push(&mut out, "");
        push(
            &mut out,
            "pairwise Jaccard similarity (identity = subject + modulus):",
        );
        let mut header = String::from("       ");
        for name in &self.store_names {
            header.push_str(&format!(" {:>5}", short_name(name)));
        }
        push(&mut out, &header);
        for (i, name) in self.store_names.iter().enumerate() {
            let mut row = format!("  {:<5}", short_name(name));
            for cell in &self.jaccard[i] {
                row.push_str(&format!(" {:>5.3}", cell.value()));
            }
            push(&mut out, &row);
        }
        push(&mut out, "");
        push(
            &mut out,
            &format!(
                "validation coverage over {} corpus chains:",
                self.verdicts.len()
            ),
        );
        for (name, n) in self.store_names.iter().zip(&self.coverage) {
            push(
                &mut out,
                &format!("  {name:<12} {n:>5} trusted"),
            );
        }
        push(
            &mut out,
            &format!(
                "  union (any store) {} | intersection (all ten) {}",
                self.union_trusted, self.intersection_trusted
            ),
        );
        push(&mut out, "");
        push(&mut out, "trusted-by-exactly-k histogram:");
        for (k, n) in self.exactly_k.iter().enumerate() {
            push(&mut out, &format!("  k={k:<2} {n:>5}"));
        }
        push(&mut out, "");
        push(
            &mut out,
            &format!("verdict classes ({} distinct vectors):", self.classes.len()),
        );
        for class in &self.classes {
            let label = if class.trusted_in.is_empty() {
                "no store".to_owned()
            } else if class.trusted_in.len() == self.store_names.len() {
                "every store".to_owned()
            } else {
                format!("{{{}}} only", class.trusted_in.join(", "))
            };
            push(
                &mut out,
                &format!(
                    "  {label}: {} chains (e.g. {})",
                    class.count,
                    &class.example[..16.min(class.example.len())]
                ),
            );
        }
        push(&mut out, "");
        push(
            &mut out,
            &format!(
                "name-collision check: two stores named \"{}\" share {} anchors \
                 but diverge by +{}/-{} — comparisons key on content, not names",
                self.collision.name,
                self.collision.common,
                self.collision.added,
                self.collision.removed
            ),
        );
        push(
            &mut out,
            &format!("verdict-vector fingerprint: {:016x}", self.fingerprint),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_matrix_is_symmetric_with_unit_diagonal() {
        let stores = standard_stores();
        let m = jaccard_matrix(&stores);
        assert_eq!(m.len(), 10);
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row.len(), 10);
            assert_eq!(row[i].intersection, row[i].union, "diagonal is 1.0");
            assert_eq!(row[i].intersection, stores[i].len());
            for (j, cell) in row.iter().enumerate() {
                assert_eq!(*cell, m[j][i], "symmetric");
                assert!(cell.value() >= 0.0 && cell.value() <= 1.0);
            }
        }
        // The ecosystem calibration: Apple is nearer iOS 7 than Java is.
        let names = standard_store_names();
        let ios = names.iter().position(|&n| n == "iOS 7").unwrap();
        let apple = names.iter().position(|&n| n == "Apple").unwrap();
        let java = names.iter().position(|&n| n == "Java").unwrap();
        assert!(m[apple][ios].value() > m[java][ios].value());
    }

    #[test]
    fn report_is_internally_consistent() {
        let report = compute(0.02);
        assert_eq!(report.store_names.len(), 10);
        assert_eq!(report.anchor_counts[7], 261, "Microsoft is largest");
        assert!(!report.verdicts.is_empty());
        assert_eq!(
            report.exactly_k.iter().sum::<usize>(),
            report.verdicts.len(),
            "histogram partitions the corpus"
        );
        assert_eq!(report.exactly_k.len(), 11);
        assert_eq!(
            report.classes.iter().map(|c| c.count).sum::<usize>(),
            report.verdicts.len(),
            "classes partition the corpus"
        );
        assert!(report.union_trusted >= report.intersection_trusted);
        assert!(report.core_anchors > 0, "shared core exists");
        assert!(report.core_anchors < report.anchor_counts.iter().copied().min().unwrap());
        // The near-clone shares its name with the base but not content.
        assert_eq!(report.collision.name, "AOSP 4.4");
        assert_eq!(report.collision.added, 3);
        assert_eq!(report.collision.removed, 0);
        // Fingerprint matches the canonical verdict list.
        assert_eq!(
            report.fingerprint,
            verdict_fingerprint(&report.canonical_verdicts())
        );
        // The rendered report carries the cross-check line.
        let text = report.render();
        assert!(text.contains(&format!(
            "verdict-vector fingerprint: {:016x}",
            report.fingerprint
        )));
    }

    #[test]
    fn verdict_vectors_discriminate_between_ecosystems() {
        let report = compute(0.02);
        // Not every chain resolves identically across all ten stores:
        // some k between 1 and 9 is populated (the corpus includes roots
        // that only a subset of ecosystems carries).
        let partial: usize = report.exactly_k[1..10].iter().sum();
        assert!(partial > 0, "some chain splits the ecosystems: {:?}", report.exactly_k);
        assert!(report.classes.len() > 1, "more than one verdict class");
    }
}
