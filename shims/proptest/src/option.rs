//! `Option` strategies (`proptest::option::of`).

use crate::strategy::{Strategy, TestRng};
use rand::Rng;

/// Strategy producing `Option<T>` from a strategy for `T`.
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        // Bias toward Some, as upstream does: the interesting values live
        // in the inner strategy.
        if rng.gen_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Some` three quarters of the time, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
