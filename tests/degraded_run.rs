//! Acceptance test for the fault-injection / graceful-degradation
//! pipeline: a study whose ingest surfaces are damaged at a 5 % fault
//! rate must still produce every table and figure, account for every
//! injected fault in its health report, and do all of it
//! deterministically.

use tangled_mass::analysis::export::export_study;
use tangled_mass::analysis::{figures, tables, Study};
use tangled_mass::faults::FaultPlan;

fn degraded() -> Study {
    let plan = FaultPlan::new(0xFA17).with_rate(0.05);
    Study::with_faults(0.25, 0.25, &plan)
}

#[test]
fn degraded_study_completes_every_artifact() {
    let s = degraded();
    assert!(!s.injected.is_empty(), "a 5% rate must inject something");

    // Every table and figure of the paper must complete without panic
    // on the degraded dataset.
    let t1 = tables::table1_data();
    assert_eq!(t1.len(), 6, "Table 1 lists six stores");
    let t2 = tables::table2_data(&s.population);
    assert!(!t2.top_models.is_empty());
    let t3 = tables::table3_data(&s.validation);
    assert_eq!(t3.len(), 6);
    let t4 = tables::table4_data(&s.validation);
    for row in &t4 {
        assert!(
            (0.0..=1.0).contains(&row.dead_fraction),
            "dead fraction out of range for {}",
            row.category
        );
    }
    // Quarantined roots may zero out an authority's device count; the
    // table must still compute and stay within the population.
    let t5 = tables::table5_data(&s.population);
    assert!(t5
        .iter()
        .all(|(_, devices)| *devices <= s.population.devices.len()));
    let t6 = tables::table6_data();
    assert!(!t6.intercepted.is_empty());

    let f1 = figures::figure1(&s.population);
    assert!(!f1.is_empty());
    let f2 = figures::figure2(&s.population);
    for cell in &f2 {
        assert!((0.0..=1.0).contains(&cell.frequency));
    }
    let f3 = figures::figure3(&s.validation);
    for series in &f3 {
        let ys: Vec<f64> = series.ecdf.iter().map(|&(_, y)| y).collect();
        assert!(
            ys.windows(2).all(|w| w[0] <= w[1]),
            "ECDF must stay monotone under degradation"
        );
    }

    // The full export — including the v2 health section — serializes.
    let doc = export_study(&s);
    assert_eq!(doc["schema_version"], 2u32);
    assert_eq!(doc["health"]["balanced"], true);
}

#[test]
fn every_injected_fault_is_accounted_for() {
    let s = degraded();
    assert_eq!(
        s.health.injected_total() as usize,
        s.injected.len(),
        "health must count the raw injection ledger"
    );
    assert_eq!(
        s.health.quarantined_total(),
        s.health.injected_total(),
        "every injected fault must be quarantined exactly once: {}",
        s.health
    );
    assert!(s.health.is_balanced());
}

#[test]
fn same_seed_same_health_report() {
    let a = degraded();
    let b = degraded();
    assert_eq!(a.health, b.health, "degradation must be deterministic");
    assert_eq!(a.injected.len(), b.injected.len());
    assert_eq!(a.ecosystem.len(), b.ecosystem.len());

    // A different seed at the same rate produces a different damage set
    // (same machinery, different coin flips).
    let other = Study::with_faults(0.25, 0.25, &FaultPlan::new(0x5EED).with_rate(0.05));
    assert!(other.health.is_balanced());
    assert_ne!(
        a.health, other.health,
        "distinct seeds should damage different units"
    );
}
