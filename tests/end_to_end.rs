//! Integration: cross-crate scenarios exercising the full stack — DER
//! bytes on disk, store tampering, chain validation, and interception.

use std::sync::Arc;
use tangled_mass::intercept::detect::{probe, probe_all};
use tangled_mass::intercept::origin::OriginServers;
use tangled_mass::intercept::{MitmProxy, Target, Verdict};
use tangled_mass::pki::cacerts::{from_cacerts, subject_hash, to_cacerts, CacertsFile};
use tangled_mass::pki::diff::diff;
use tangled_mass::pki::stores::{global_factory, ReferenceStore};
use tangled_mass::pki::trust::AnchorSource;
use tangled_mass::x509::{Certificate, ChainOptions, ChainVerifier};

/// The §6 attack end to end at the byte level: a root app writes a rogue
/// certificate file into the cacerts directory; a later audit re-reads the
/// directory, diffs against the expected AOSP distribution, flags the
/// addition, and shows the rogue root now anchors arbitrary chains.
#[test]
fn rooted_tampering_full_cycle() {
    let aosp = ReferenceStore::Aosp44.cached();
    let mut files = to_cacerts(&aosp);

    // The Freedom app (root permissions) drops its CA into the directory.
    let (mal_root, mal_leaf) = {
        let mut f = global_factory().lock().unwrap();
        let root = f.root("CRAZY HOUSE");
        let leaf = f
            .leaf("CRAZY HOUSE", &root, "play.google.com", 666)
            .unwrap();
        (root, leaf)
    };
    files.push(CacertsFile {
        name: format!("{}.0", subject_hash(&mal_root)),
        der: mal_root.to_der().to_vec(),
    });

    // Audit: re-read the directory and diff against the distribution.
    let observed = from_cacerts("device", &files, AnchorSource::Unknown).unwrap();
    let d = diff(&aosp, &observed);
    assert_eq!(d.added.len(), 1);
    assert!(d.added[0].subject.contains("CRAZY HOUSE"));

    // Consequence: the tampered store now validates a forged Google leaf.
    let mut tampered = ChainVerifier::new();
    for cert in observed.enabled_certificates() {
        tampered.add_anchor(cert);
    }
    let opts = ChainOptions::at(tangled_mass::intercept::study_time());
    let chain = tampered.verify(&mal_leaf, opts).expect("rogue chain anchors");
    assert!(chain.anchor().subject.to_string().contains("CRAZY HOUSE"));

    // The stock store rejects the same leaf.
    let mut stock = ChainVerifier::new();
    for cert in aosp.enabled_certificates() {
        stock.add_anchor(cert);
    }
    assert!(stock.verify(&mal_leaf, opts).is_err());
}

/// Certificates survive a full serialize → reparse cycle with identical
/// semantics (the Netalyzr methodology depends on DER being canonical).
#[test]
fn der_round_trip_preserves_semantics() {
    let aosp = ReferenceStore::Aosp41.cached();
    for anchor in aosp.iter().take(25) {
        let reparsed = Certificate::parse(anchor.cert.to_der()).unwrap();
        assert_eq!(reparsed, *anchor.cert);
        assert_eq!(reparsed.identity(), anchor.identity());
        assert_eq!(
            reparsed.fingerprint_sha256(),
            anchor.cert.fingerprint_sha256()
        );
    }
}

/// A user disabling an anchor in system settings stops it from anchoring
/// chains but keeps it listed — Android's disable semantics.
#[test]
fn disabled_anchor_semantics() {
    let origin = OriginServers::for_table6();
    let mut store = ReferenceStore::Aosp44.cached().cloned_as("user-tuned");
    let expected = origin.issuer_identity();
    let target = Target::parse("www.hsbc.com:443").unwrap();
    let chain = origin.chain(&target).unwrap().to_vec();

    // Clean before.
    let r = probe(&target, &chain, &store, &expected, false);
    assert_eq!(r.verdict, Verdict::Clean);

    // Disable the issuing CA.
    assert!(store.disable(&expected));
    assert_eq!(store.len(), ReferenceStore::Aosp44.cached().len());
    let r = probe(&target, &chain, &store, &expected, false);
    assert!(matches!(r.verdict, Verdict::UntrustedChain { .. }));

    // Re-enable restores trust.
    assert!(store.enable(&expected));
    let r = probe(&target, &chain, &store, &expected, false);
    assert_eq!(r.verdict, Verdict::Clean);
}

/// The two §7 detection paths agree with the §6 threat model: without the
/// proxy root the interception is loud; with it, only anchor comparison or
/// pinning catches it.
#[test]
fn interception_detection_matrix() {
    let origin = OriginServers::for_table6();
    let stock = ReferenceStore::Aosp44.cached().cloned_as("stock");

    // No proxy at all: everything clean.
    let mut transparent = MitmProxy::new(
        tangled_mass::intercept::ProxyPolicy::transparent(),
        1,
    )
    .unwrap();
    let reports = probe_all(&mut transparent, &origin, &stock, &[]).unwrap();
    assert!(reports.iter().all(|r| r.verdict == Verdict::Clean));

    // Reality Mine proxy: exactly the 12 intercepted endpoints flagged.
    let mut proxy = MitmProxy::reality_mine().unwrap();
    let reports = probe_all(&mut proxy, &origin, &stock, &[]).unwrap();
    assert_eq!(
        reports.iter().filter(|r| r.verdict.is_interception()).count(),
        12
    );

    // Proxy root installed: naive check goes quiet, anchors disagree.
    let mut rooted = stock.cloned_as("rooted");
    rooted.add_cert(Arc::clone(proxy.root_cert()), AnchorSource::RootApp);
    let mut proxy2 = MitmProxy::reality_mine().unwrap();
    let reports = probe_all(&mut proxy2, &origin, &rooted, &[]).unwrap();
    assert_eq!(
        reports
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::UntrustedChain { .. }))
            .count(),
        0,
        "installed root silences the untrusted-chain signal"
    );
    assert_eq!(
        reports
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::UnexpectedAnchor { .. }))
            .count(),
        12
    );
}

/// Platform key blacklisting (Android 4.4's fraudulent-certificate
/// protection, §2) defeats the installed-proxy-root attack that plain
/// store checks miss.
#[test]
fn platform_blacklist_beats_installed_proxy_root() {
    let origin = OriginServers::for_table6();
    let mut proxy = MitmProxy::reality_mine().unwrap();
    let mut rooted = ReferenceStore::Aosp44.cached().cloned_as("rooted");
    rooted.add_cert(Arc::clone(proxy.root_cert()), AnchorSource::RootApp);

    let target = Target::parse("gmail.com:443").unwrap();
    let chain = proxy.serve(&target, &origin).unwrap();
    let opts = ChainOptions::at(tangled_mass::intercept::study_time());

    // Without the blacklist, the tampered store anchors the forged chain.
    let mut verifier = ChainVerifier::new();
    for cert in rooted.enabled_certificates() {
        verifier.add_anchor(cert);
    }
    for link in &chain[1..] {
        verifier.add_intermediate(Arc::clone(link));
    }
    assert!(verifier.verify(&chain[0], opts).is_ok());

    // With the proxy root's key blacklisted, validation fails everywhere
    // the key appears, even though the store still trusts the anchor.
    verifier.blacklist_key(&proxy.root_cert().public_key);
    assert_eq!(
        verifier.verify(&chain[0], opts).unwrap_err(),
        tangled_mass::x509::ChainError::Blacklisted
    );

    // Legitimate chains are untouched by the blacklist.
    let clean_target = Target::parse("www.facebook.com:443").unwrap();
    let clean = origin.chain(&clean_target).unwrap();
    assert!(verifier.verify(&clean[0], opts).is_ok());
}

/// Firmware images share store allocations between devices, and device
/// stores always contain their version's full AOSP set unless the user
/// removed anchors.
#[test]
fn population_store_invariants() {
    let pop = tangled_mass::netalyzr::Population::generate(
        &tangled_mass::netalyzr::PopulationSpec::scaled(0.2),
    );
    for d in &pop.devices {
        let expected = d.os_version.aosp_store_size();
        let aosp_count = d.aosp_cert_count();
        if d.is_missing_aosp_certs() {
            assert!(aosp_count < expected);
            assert!(aosp_count + 2 >= expected, "at most two removals");
        } else {
            assert_eq!(aosp_count, expected, "device {:?}", d.id);
        }
        // Additions never shadow AOSP anchors (identity-keyed stores).
        assert_eq!(d.store.len(), aosp_count + d.additional_count());
    }
}
