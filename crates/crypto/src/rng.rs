//! Deterministic pseudo-random number generation.
//!
//! Key generation must be reproducible from a seed so that every synthetic
//! certificate in the workspace is bit-stable across runs (the experiment
//! tables depend on it). [`SplitMix64`] is tiny, fast, passes the statistical
//! bar needed for Miller–Rabin witnesses and prime candidates, and keeps this
//! crate dependency-free. It is of course not a CSPRNG — nothing in this
//! workspace protects real traffic.

use crate::bigint::Uint;

/// The SplitMix64 generator (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        // Rejection sampling to avoid modulo bias.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Fill a byte buffer with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// A uniform [`Uint`] with exactly `bits` significant bits
    /// (top bit forced to 1). `bits == 0` yields zero.
    pub fn next_uint_exact_bits(&mut self, bits: usize) -> Uint {
        if bits == 0 {
            return Uint::zero();
        }
        let nlimbs = bits.div_ceil(64);
        let mut limbs = Vec::with_capacity(nlimbs);
        for _ in 0..nlimbs {
            limbs.push(self.next_u64());
        }
        // Mask the top limb down to the requested width, then set the top bit.
        let top_bits = bits - (nlimbs - 1) * 64;
        let last = limbs.last_mut().expect("nlimbs >= 1");
        if top_bits < 64 {
            *last &= (1u64 << top_bits) - 1;
        }
        *last |= 1u64 << (top_bits - 1);
        Uint::from_limbs(limbs)
    }

    /// A uniform [`Uint`] in `[low, high)`.
    ///
    /// # Panics
    /// Panics when `low >= high`.
    pub fn next_uint_range(&mut self, low: &Uint, high: &Uint) -> Uint {
        assert!(low < high, "empty range");
        let span = high.sub(low);
        let bits = span.bit_len();
        // Rejection-sample below `span`, then offset by `low`.
        loop {
            let nlimbs = bits.div_ceil(64);
            let mut limbs = Vec::with_capacity(nlimbs);
            for _ in 0..nlimbs {
                limbs.push(self.next_u64());
            }
            let top_bits = bits - (nlimbs - 1) * 64;
            if top_bits < 64 {
                if let Some(last) = limbs.last_mut() {
                    *last &= (1u64 << top_bits) - 1;
                }
            }
            let candidate = Uint::from_limbs(limbs);
            if candidate < span {
                return low.add(&candidate);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut rng = SplitMix64::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn exact_bits() {
        let mut rng = SplitMix64::new(3);
        for bits in [1usize, 7, 64, 65, 100, 512] {
            let v = rng.next_uint_exact_bits(bits);
            assert_eq!(v.bit_len(), bits, "bits={bits}");
        }
        assert!(rng.next_uint_exact_bits(0).is_zero());
    }

    #[test]
    fn range_sampling() {
        let mut rng = SplitMix64::new(11);
        let low = Uint::from_u64(100);
        let high = Uint::from_u64(110);
        for _ in 0..200 {
            let v = rng.next_uint_range(&low, &high);
            assert!(v >= low && v < high);
        }
    }

    #[test]
    fn fill_bytes_partial_chunk() {
        let mut rng = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
