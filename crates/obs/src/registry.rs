//! The process-wide metrics registry.
//!
//! Counters, gauges and [`Log2Histogram`]s keyed by dotted metric names
//! (`exec.par_map.items`, `trustd.request_us`). Metrics are created on
//! first touch; recording is an atomic op on an `Arc`'d cell, with one
//! short map-lock to resolve the name — cheap at the stage granularity
//! the pipeline records at.
//!
//! Metric *values* are free to be nondeterministic (latencies, memo hit
//! rates, pool widths). The dump format is not: [`Registry::dump_text`]
//! and [`Registry::dump_json`] emit metrics in sorted name order, so two
//! dumps with equal values render identically.

use crate::hist::Log2Histogram;
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The metric store: three namespaces, all name-keyed.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    hists: Mutex<BTreeMap<String, Arc<Log2Histogram>>>,
}

impl Registry {
    /// A fresh, empty registry (tests; production code uses
    /// [`registry`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter cell for `name`, created at zero on first touch.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().expect("registry poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The gauge cell for `name`, created at zero on first touch.
    pub fn gauge(&self, name: &str) -> Arc<AtomicI64> {
        let mut map = self.gauges.lock().expect("registry poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// The histogram for `name`, created empty on first touch.
    pub fn hist(&self, name: &str) -> Arc<Log2Histogram> {
        let mut map = self.hists.lock().expect("registry poisoned");
        Arc::clone(map.entry(name.to_owned()).or_default())
    }

    /// Add `n` to the counter `name`.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).fetch_add(n, Ordering::Relaxed);
    }

    /// Set the gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: i64) {
        self.gauge(name).store(value, Ordering::Relaxed);
    }

    /// Add `delta` (possibly negative) to the gauge `name`.
    pub fn gauge_add(&self, name: &str, delta: i64) {
        self.gauge(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Record one sample into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.hist(name).record(value);
    }

    /// Stable text dump: one line per metric, sorted by kind then name.
    ///
    /// ```text
    /// counter exec.par_map.calls 12
    /// gauge   exec.pool.width 8
    /// hist    trustd.request_us count=40 p50=128 p99=4096
    /// ```
    pub fn dump_text(&self) -> String {
        let mut out = String::new();
        for (name, c) in self.counters.lock().expect("registry poisoned").iter() {
            out.push_str(&format!(
                "counter {name} {}\n",
                c.load(Ordering::Relaxed)
            ));
        }
        for (name, g) in self.gauges.lock().expect("registry poisoned").iter() {
            out.push_str(&format!("gauge   {name} {}\n", g.load(Ordering::Relaxed)));
        }
        for (name, h) in self.hists.lock().expect("registry poisoned").iter() {
            out.push_str(&format!(
                "hist    {name} count={} p50={} p99={}\n",
                h.count(),
                h.percentile(50),
                h.percentile(99)
            ));
        }
        out
    }

    /// JSON dump with the same sorted-name stability as
    /// [`Registry::dump_text`].
    pub fn dump_json(&self) -> Value {
        let counters: BTreeMap<String, Value> = self
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, c)| (name.clone(), Value::from(c.load(Ordering::Relaxed))))
            .collect();
        let gauges: BTreeMap<String, Value> = self
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, g)| (name.clone(), Value::from(g.load(Ordering::Relaxed))))
            .collect();
        let hists: BTreeMap<String, Value> = self
            .hists
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(name, h)| {
                (
                    name.clone(),
                    json!({
                        "count": h.count(),
                        "p50": h.percentile(50),
                        "p99": h.percentile(99),
                    }),
                )
            })
            .collect();
        json!({
            "counters": counters,
            "gauges": gauges,
            "hists": hists,
        })
    }

    /// Drop every metric (tests only — metric names are created on first
    /// touch, so a reset registry repopulates itself).
    pub fn reset(&self) {
        self.counters.lock().expect("registry poisoned").clear();
        self.gauges.lock().expect("registry poisoned").clear();
        self.hists.lock().expect("registry poisoned").clear();
    }
}

/// The process-wide registry every pipeline stage records into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

/// Add `n` to the process-wide counter `name`.
pub fn add(name: &str, n: u64) {
    registry().add(name, n);
}

/// Set the process-wide gauge `name`.
pub fn gauge_set(name: &str, value: i64) {
    registry().gauge_set(name, value);
}

/// Add `delta` to the process-wide gauge `name`.
pub fn gauge_add(name: &str, delta: i64) {
    registry().gauge_add(name, delta);
}

/// Record one sample into the process-wide histogram `name`.
pub fn observe(name: &str, value: u64) {
    registry().observe(name, value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_hists_accumulate() {
        let r = Registry::new();
        r.add("a.calls", 2);
        r.add("a.calls", 3);
        r.gauge_set("a.width", 8);
        r.gauge_add("a.width", -3);
        r.observe("a.us", 100);
        r.observe("a.us", 100_000);
        assert_eq!(r.counter("a.calls").load(Ordering::Relaxed), 5);
        assert_eq!(r.gauge("a.width").load(Ordering::Relaxed), 5);
        assert_eq!(r.hist("a.us").count(), 2);
    }

    #[test]
    fn dump_text_is_sorted_and_stable() {
        let r = Registry::new();
        r.add("z.last", 1);
        r.add("a.first", 1);
        r.gauge_set("m.mid", -7);
        r.observe("h.us", 64);
        let dump = r.dump_text();
        let a = dump.find("counter a.first 1").expect("a.first present");
        let z = dump.find("counter z.last 1").expect("z.last present");
        assert!(a < z, "counters sorted by name:\n{dump}");
        assert!(dump.contains("gauge   m.mid -7"), "{dump}");
        assert!(dump.contains("hist    h.us count=1 p50=64 p99=64"), "{dump}");
        assert_eq!(dump, r.dump_text(), "dump is stable");
    }

    #[test]
    fn dump_json_mirrors_text() {
        let r = Registry::new();
        r.add("c", 9);
        r.gauge_set("g", 4);
        r.observe("h", 2);
        let v = r.dump_json();
        assert_eq!(v["counters"]["c"], 9u64);
        assert_eq!(v["gauges"]["g"], 4u64);
        assert_eq!(v["hists"]["h"]["count"], 1u64);
        assert_eq!(v["hists"]["h"]["p50"], 2u64);
        // Serialization round-trips (keys sorted via BTreeMap).
        let text = serde_json::to_string(&v).unwrap();
        assert_eq!(serde_json::from_str::<Value>(&text).unwrap(), v);
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new();
        r.add("c", 1);
        r.reset();
        assert_eq!(r.dump_text(), "");
    }

    #[test]
    fn global_registry_is_shared() {
        add("obs.test.shared", 1);
        add("obs.test.shared", 1);
        assert!(
            registry()
                .counter("obs.test.shared")
                .load(Ordering::Relaxed)
                >= 2
        );
    }
}
