//! Serving-path benchmark: cached vs uncached `validate` through the
//! trustd service.
//!
//! Two identical services handle the same request stream; one with the
//! default memo-cache capacity (every repeat is a ChainKey lookup), one
//! with the cache disabled (every request runs full path construction and
//! signature verification). The printed ratio is the measured value of
//! the serving cache.
//!
//! ```text
//! cargo bench --bench serve
//! ```

use criterion::{black_box, Criterion};
use tangled_bench::criterion;
use tangled_intercept::origin::OriginServers;
use tangled_intercept::policy::Target;
use tangled_trustd::wire::Request;
use tangled_trustd::{TrustService, DEFAULT_CACHE_CAPACITY};

fn main() {
    let mut c: Criterion = criterion();
    bench_validate(&mut c);
    c.final_summary();
}

/// The request stream: every Table 6 origin chain against every AOSP
/// profile — 84 distinct (profile, chain) keys, replayed repeatedly so
/// the warm cache answers from memory.
fn requests() -> Vec<Request> {
    let origin = OriginServers::for_table6();
    let mut targets: Vec<Target> = origin.targets().cloned().collect();
    targets.sort_by_key(|t| t.to_string());
    let profiles = ["AOSP 4.1", "AOSP 4.2", "AOSP 4.3", "AOSP 4.4"];
    let mut out = Vec::new();
    for profile in profiles {
        for t in &targets {
            out.push(Request::Validate {
                profile: profile.to_owned(),
                chain: origin
                    .chain(t)
                    .expect("table 6 chain")
                    .iter()
                    .map(|c| c.to_der().to_vec())
                    .collect(),
            });
        }
    }
    out
}

fn bench_validate(c: &mut Criterion) {
    let reqs = requests();

    let cached = TrustService::new(DEFAULT_CACHE_CAPACITY);
    let uncached = TrustService::new(0);
    // Warm both services once so setup work (store builds) is excluded
    // and the cached service's memo is populated.
    for req in &reqs {
        cached.handle(req);
        uncached.handle(req);
    }

    c.bench_function("serve/validate_cached", |b| {
        b.iter(|| {
            for req in &reqs {
                black_box(cached.handle(req));
            }
        })
    });
    c.bench_function("serve/validate_uncached", |b| {
        b.iter(|| {
            for req in &reqs {
                black_box(uncached.handle(req));
            }
        })
    });

    let (hits, misses) = cached.stats().cache_counts();
    println!(
        "serve: warm cache answered {hits} of {} validate calls ({misses} misses)",
        hits + misses
    );
    assert!(hits > 0, "warm service must serve from cache");
}
