//! Study bundle: one dataset shared by every table and figure.

use tangled_netalyzr::{Population, PopulationSpec};
use tangled_notary::ecosystem::EcosystemSpec;
use tangled_notary::{Ecosystem, NotaryDb, ValidationIndex};

/// The generated inputs for one run of the paper's analysis.
pub struct Study {
    /// The Netalyzr device/session population.
    pub population: Population,
    /// The Notary certificate ecosystem.
    pub ecosystem: Ecosystem,
    /// Per-root validation tallies over the ecosystem.
    pub validation: ValidationIndex,
    /// The Notary record-keeping view.
    pub db: NotaryDb,
}

impl Study {
    /// Generate a study at the given scales (1.0 = the paper's dataset
    /// sizes for the population; the ecosystem plan at 1.0 is the scaled
    /// Notary of DESIGN.md).
    pub fn new(population_scale: f64, ecosystem_scale: f64) -> Study {
        let population = Population::generate(&PopulationSpec::scaled(population_scale));
        let ecosystem = Ecosystem::generate(&EcosystemSpec::scaled(ecosystem_scale));
        let validation = ValidationIndex::build(&ecosystem);
        let db = NotaryDb::build(&ecosystem);
        Study {
            population,
            ecosystem,
            validation,
            db,
        }
    }

    /// The full-scale study (15,970 sessions; full issuance plan).
    pub fn full() -> Study {
        Study::new(1.0, 1.0)
    }

    /// A reduced study for tests: sessions at 25 %, ecosystem at the
    /// smallest scale that preserves the Table 3 ordering.
    pub fn quick() -> Study {
        Study::new(0.25, 0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_study_builds_consistently() {
        let s = Study::quick();
        assert!(!s.population.sessions.is_empty());
        assert!(!s.ecosystem.is_empty());
        assert!(s.validation.validated_total() > 0);
        assert!(s.db.unique_certs() == s.ecosystem.len());
    }
}
