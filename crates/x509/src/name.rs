//! X.501 distinguished names.
//!
//! A [`DistinguishedName`] is an ordered sequence of relative distinguished
//! names, each holding a single attribute (the overwhelmingly common case in
//! the 2013–2014 certificate corpus, and the only form this workspace
//! emits). The paper's methodology compares subjects and issuers as strings
//! ("we had to inspect the subject and issuer fields manually"); the
//! [`std::fmt::Display`] rendering here is the canonical string form used
//! throughout the workspace.

use tangled_asn1::{Asn1Error, DerReader, DerWriter, Oid, Tag};

/// One attribute of a name: type OID plus string value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameAttribute {
    /// Attribute type (e.g. id-at-commonName).
    pub oid: Oid,
    /// Attribute value as a Rust string.
    pub value: String,
}

/// An ordered X.501 name (sequence of single-attribute RDNs).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct DistinguishedName {
    attributes: Vec<NameAttribute>,
}

impl DistinguishedName {
    /// The empty name.
    pub fn empty() -> Self {
        DistinguishedName::default()
    }

    /// Build a name from `(oid, value)` pairs, in order.
    pub fn from_attributes(attrs: Vec<(Oid, String)>) -> Self {
        DistinguishedName {
            attributes: attrs
                .into_iter()
                .map(|(oid, value)| NameAttribute { oid, value })
                .collect(),
        }
    }

    /// Convenience constructor: `CN=<cn>`.
    pub fn common_name(cn: &str) -> Self {
        DistinguishedName::builder().common_name(cn).build()
    }

    /// Start a fluent builder.
    pub fn builder() -> DnBuilder {
        DnBuilder::default()
    }

    /// Borrow the attribute list.
    pub fn attributes(&self) -> &[NameAttribute] {
        &self.attributes
    }

    /// True when the name has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// First value of the given attribute type, if present.
    pub fn get(&self, oid: &Oid) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| &a.oid == oid)
            .map(|a| a.value.as_str())
    }

    /// The common name, if present.
    pub fn cn(&self) -> Option<&str> {
        self.get(&Oid::common_name())
    }

    /// The organization, if present.
    pub fn organization(&self) -> Option<&str> {
        self.get(&Oid::organization())
    }

    /// The country, if present.
    pub fn country(&self) -> Option<&str> {
        self.get(&Oid::country())
    }

    /// Write the DER `Name` production.
    pub fn write_der(&self, w: &mut DerWriter) {
        w.sequence(|w| {
            for attr in &self.attributes {
                w.set(|w| {
                    w.sequence(|w| {
                        w.oid(&attr.oid);
                        // Values whose repertoire fits PrintableString could
                        // use it; we uniformly emit UTF8String, which DER
                        // permits and modern issuers prefer.
                        w.utf8_string(&attr.value);
                    });
                });
            }
        });
    }

    /// Encode to standalone DER bytes.
    pub fn to_der(&self) -> Vec<u8> {
        let mut w = DerWriter::new();
        self.write_der(&mut w);
        w.into_bytes()
    }

    /// Parse the DER `Name` production from a reader.
    pub fn read_der(r: &mut DerReader<'_>) -> Result<Self, Asn1Error> {
        let mut rdn_seq = r.read_sequence()?;
        let mut attributes = Vec::new();
        while !rdn_seq.is_at_end() {
            let mut rdn_set = rdn_seq.read_set()?;
            // Multi-valued RDNs are accepted on parse (attributes flattened
            // in order) even though the writer never produces them.
            while !rdn_set.is_at_end() {
                let mut atv = rdn_set.read_sequence()?;
                let oid = atv.read_oid()?;
                let value = atv.read_string()?;
                atv.finish()?;
                attributes.push(NameAttribute { oid, value });
            }
        }
        Ok(DistinguishedName { attributes })
    }

    /// Parse from standalone DER bytes.
    pub fn from_der(bytes: &[u8]) -> Result<Self, Asn1Error> {
        let mut r = DerReader::new(bytes);
        let dn = Self::read_der(&mut r)?;
        r.finish()?;
        Ok(dn)
    }
}

/// Fluent builder for [`DistinguishedName`].
#[derive(Debug, Default)]
pub struct DnBuilder {
    attributes: Vec<NameAttribute>,
}

impl DnBuilder {
    fn push(mut self, oid: Oid, value: &str) -> Self {
        self.attributes.push(NameAttribute {
            oid,
            value: value.to_owned(),
        });
        self
    }

    /// Append `CN=`.
    pub fn common_name(self, v: &str) -> Self {
        self.push(Oid::common_name(), v)
    }
    /// Append `O=`.
    pub fn organization(self, v: &str) -> Self {
        self.push(Oid::organization(), v)
    }
    /// Append `OU=`.
    pub fn organizational_unit(self, v: &str) -> Self {
        self.push(Oid::organizational_unit(), v)
    }
    /// Append `C=`.
    pub fn country(self, v: &str) -> Self {
        self.push(Oid::country(), v)
    }
    /// Append `L=`.
    pub fn locality(self, v: &str) -> Self {
        self.push(Oid::locality(), v)
    }
    /// Append `ST=`.
    pub fn state(self, v: &str) -> Self {
        self.push(Oid::state(), v)
    }
    /// Append `emailAddress=`.
    pub fn email(self, v: &str) -> Self {
        self.push(Oid::email_address(), v)
    }

    /// Finish the name.
    pub fn build(self) -> DistinguishedName {
        DistinguishedName {
            attributes: self.attributes,
        }
    }
}

fn short_name(oid: &Oid) -> Option<&'static str> {
    if *oid == Oid::common_name() {
        Some("CN")
    } else if *oid == Oid::country() {
        Some("C")
    } else if *oid == Oid::locality() {
        Some("L")
    } else if *oid == Oid::state() {
        Some("ST")
    } else if *oid == Oid::organization() {
        Some("O")
    } else if *oid == Oid::organizational_unit() {
        Some("OU")
    } else if *oid == Oid::email_address() {
        Some("emailAddress")
    } else {
        None
    }
}

impl std::fmt::Display for DistinguishedName {
    /// Render as `CN=Example Root,O=Example,C=US` (RFC 4514 order-of-writing,
    /// most significant first — matching how the paper prints subjects, e.g.
    /// `CN=DoD CLASS 3 Root CA,OU=PKI,OU=DoD,O=U.S. Government,C=US`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, attr) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match short_name(&attr.oid) {
                Some(short) => write!(f, "{short}={}", attr.value)?,
                None => write!(f, "{}={}", attr.oid, attr.value)?,
            }
        }
        Ok(())
    }
}

/// A dummy tag referenced by doc text; keeps `Tag` import used when the
/// crate is built without tests.
#[allow(dead_code)]
const _: Tag = Tag::SEQUENCE;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DistinguishedName {
        DistinguishedName::builder()
            .common_name("DoD CLASS 3 Root CA")
            .organizational_unit("PKI")
            .organizational_unit("DoD")
            .organization("U.S. Government")
            .country("US")
            .build()
    }

    #[test]
    fn display_matches_paper_convention() {
        assert_eq!(
            sample().to_string(),
            "CN=DoD CLASS 3 Root CA,OU=PKI,OU=DoD,O=U.S. Government,C=US"
        );
    }

    #[test]
    fn der_round_trip() {
        let dn = sample();
        let der = dn.to_der();
        assert_eq!(DistinguishedName::from_der(&der).unwrap(), dn);
    }

    #[test]
    fn empty_name_round_trip() {
        let dn = DistinguishedName::empty();
        assert!(dn.is_empty());
        assert_eq!(DistinguishedName::from_der(&dn.to_der()).unwrap(), dn);
        assert_eq!(dn.to_string(), "");
    }

    #[test]
    fn accessors() {
        let dn = sample();
        assert_eq!(dn.cn(), Some("DoD CLASS 3 Root CA"));
        assert_eq!(dn.organization(), Some("U.S. Government"));
        assert_eq!(dn.country(), Some("US"));
        assert_eq!(dn.get(&Oid::locality()), None);
        // First of repeated attributes wins.
        assert_eq!(dn.get(&Oid::organizational_unit()), Some("PKI"));
    }

    #[test]
    fn unknown_attribute_renders_as_oid() {
        let dn = DistinguishedName::from_attributes(vec![(
            Oid::new(&[1, 3, 6, 1, 4, 1, 99999, 1]),
            "custom".into(),
        )]);
        assert_eq!(dn.to_string(), "1.3.6.1.4.1.99999.1=custom");
        let der = dn.to_der();
        assert_eq!(DistinguishedName::from_der(&der).unwrap(), dn);
    }

    #[test]
    fn unicode_values_survive() {
        let dn = DistinguishedName::builder()
            .organization("Autoridad de Certificación Firmaprofesional")
            .country("ES")
            .build();
        let der = dn.to_der();
        assert_eq!(DistinguishedName::from_der(&der).unwrap(), dn);
    }

    #[test]
    fn ordering_is_stable() {
        // Names differing only in attribute order are distinct (X.501 names
        // are ordered) — the identity model depends on this.
        let a = DistinguishedName::builder().common_name("X").country("US").build();
        let b = DistinguishedName::builder().country("US").common_name("X").build();
        assert_ne!(a, b);
        assert_ne!(a.to_der(), b.to_der());
    }

    #[test]
    fn garbage_rejected() {
        assert!(DistinguishedName::from_der(&[0x31, 0x00]).is_err()); // SET at top
        assert!(DistinguishedName::from_der(&[]).is_err());
        // Trailing bytes after the name.
        let mut der = sample().to_der();
        der.push(0x00);
        assert!(DistinguishedName::from_der(&der).is_err());
    }
}
