//! `tangled-exec` — the deterministic parallel execution layer.
//!
//! Every offline stage of the study pipeline (ecosystem generation, chain
//! validation, device synthesis, store preloading) is embarrassingly
//! parallel *per unit*, but the paper tables must regenerate byte-identically
//! from a seed. This crate provides the contract that reconciles the two:
//!
//! * **Work is sharded by unit index, never by thread.** A unit's inputs —
//!   including its RNG, derived with [`split_seed`] — depend only on the
//!   master seed and the unit index, so the unit computes the same value on
//!   any thread of any pool size.
//! * **Results merge in index order.** [`ExecPool::par_map_indexed`] returns
//!   results positionally and [`ExecPool::par_shard_reduce`] folds shard
//!   results in ascending shard order, so downstream accumulation observes
//!   the same sequence a single-threaded run produces.
//! * **`threads == 1` is the sequential path.** A one-thread pool runs the
//!   plain `for` loop on the calling thread — no channels, no spawns — so
//!   the deterministic-equality tests compare parallel runs against the
//!   genuine sequential execution, not a simulation of it.
//!
//! Thread count resolution order: an explicit [`set_thread_override`] (the
//! CLI's `--threads`), then the `TANGLED_THREADS` environment variable,
//! then [`std::thread::available_parallelism`].
//!
//! [`StripedMap`] complements the pool: a lock-striped hash map for memo
//! tables shared across shards (chain verdicts, signature checks). Striping
//! keeps contention low; memoised values must be pure functions of their
//! key, which makes the map's fill order — the only nondeterministic thing
//! about it — unobservable in results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stripe;

pub use stripe::{StripedMap, DEFAULT_STRIPES};

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide thread-count override (0 = unset). Set by the CLI's
/// `--threads` flag; read by [`thread_count`].
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Environment variable controlling the default pool width.
pub const THREADS_ENV: &str = "TANGLED_THREADS";

/// Install (or clear, with `None`) the process-wide thread-count override.
/// Takes precedence over `TANGLED_THREADS` and detected parallelism.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::SeqCst);
}

/// The effective worker count: override → `TANGLED_THREADS` → available
/// parallelism → 1. Always at least 1.
pub fn thread_count() -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::SeqCst);
    if overridden > 0 {
        return overridden;
    }
    if let Ok(text) = std::env::var(THREADS_ENV) {
        if let Ok(n) = text.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Split a master seed into a per-unit sub-seed.
///
/// SplitMix64 finalizer over the master seed and the unit index with
/// golden-ratio spacing: statistically independent streams, stable across
/// platforms, and — crucially — a pure function of `(seed, index)`, so a
/// unit draws the same stream no matter which thread runs it.
pub fn split_seed(seed: u64, index: u64) -> u64 {
    use tangled_crypto::hash::{mix64, GOLDEN_GAMMA};
    mix64(seed.wrapping_add(GOLDEN_GAMMA.wrapping_mul(index.wrapping_add(1))))
}

/// A fixed-width scoped-thread pool.
///
/// The pool holds no threads between calls; each primitive spawns scoped
/// workers for its duration. That keeps the layer allocation-free at rest
/// and dependency-free (no channels, no work stealing) while still
/// saturating the machine for the coarse-grained shards the pipeline uses.
#[derive(Debug, Clone, Copy)]
pub struct ExecPool {
    threads: usize,
}

impl ExecPool {
    /// A pool at the effective width of [`thread_count`].
    pub fn current() -> ExecPool {
        ExecPool::with_threads(thread_count())
    }

    /// A pool with an explicit width (minimum 1).
    pub fn with_threads(threads: usize) -> ExecPool {
        ExecPool {
            threads: threads.max(1),
        }
    }

    /// The pool width.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Map `f` over `items`, returning results in item order.
    ///
    /// `f(i, &items[i])` must be a pure function of its arguments (plus any
    /// shared memo whose values are pure in their keys) — under that
    /// contract the output vector is identical at any pool width. With one
    /// thread this is a plain sequential loop on the calling thread.
    pub fn par_map_indexed<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        // Pool telemetry goes to the metrics registry only: call counts and
        // widths are scheduling facts, which the deterministic trace log
        // must never observe.
        tangled_obs::registry::add("exec.par_map.calls", 1);
        tangled_obs::registry::add("exec.par_map.items", items.len() as u64);
        tangled_obs::registry::gauge_set("exec.pool.width", self.threads as i64);
        if self.threads == 1 || items.len() <= 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }

        let workers = self.threads.min(items.len());
        let chunk = items.len().div_ceil(workers);
        let mut blocks: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let start = w * chunk;
                let end = ((w + 1) * chunk).min(items.len());
                if start >= end {
                    break;
                }
                let f = &f;
                handles.push(scope.spawn(move || {
                    items[start..end]
                        .iter()
                        .enumerate()
                        .map(|(off, item)| f(start + off, item))
                        .collect::<Vec<R>>()
                }));
            }
            for handle in handles {
                blocks.push(handle.join().expect("exec worker panicked"));
            }
        });
        let mut out = Vec::with_capacity(items.len());
        for block in blocks {
            out.extend(block);
        }
        out
    }

    /// Run `shard_fn(0..shards)` across the pool and fold the results with
    /// `merge` in ascending shard order.
    ///
    /// The fold order is the whole point: an accumulator built this way
    /// observes shard results exactly as the sequential loop would, so
    /// order-sensitive merges (ledgers, appends) stay byte-identical.
    pub fn par_shard_reduce<R, A, F, M>(
        &self,
        shards: usize,
        shard_fn: F,
        mut acc: A,
        mut merge: M,
    ) -> A
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
        M: FnMut(&mut A, R),
    {
        let results = self.par_map_indexed(&(0..shards).collect::<Vec<usize>>(), |_, &s| {
            shard_fn(s)
        });
        for r in results {
            merge(&mut acc, r);
        }
        acc
    }
}

/// A sensible fixed shard count for slicing `len` units of work: enough
/// shards that any pool width ≤ 64 stays busy, few enough that per-shard
/// overhead is negligible. Shard boundaries are a function of `len` alone
/// (never of the pool width), so per-shard derived state — sub-RNGs,
/// latency samples — is stable across thread counts.
pub fn fixed_shard_count(len: usize) -> usize {
    len.clamp(1, 64)
}

/// The contiguous index range of shard `s` of `shards` over `len` units.
/// Ranges are maximally even: the first `len % shards` shards take one
/// extra unit.
pub fn shard_range(len: usize, shards: usize, s: usize) -> std::ops::Range<usize> {
    let shards = shards.max(1);
    let base = len / shards;
    let extra = len % shards;
    let start = s * base + s.min(extra);
    let width = base + usize::from(s < extra);
    start..(start + width).min(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_at_any_width() {
        let items: Vec<u64> = (0..1_000).collect();
        let f = |i: usize, &x: &u64| split_seed(x, i as u64) % 1_000;
        let sequential = ExecPool::with_threads(1).par_map_indexed(&items, f);
        for threads in [2, 3, 4, 8, 16, 64] {
            let parallel = ExecPool::with_threads(threads).par_map_indexed(&items, f);
            assert_eq!(sequential, parallel, "width {threads} diverged");
        }
    }

    #[test]
    fn par_map_preserves_index_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = ExecPool::with_threads(7).par_map_indexed(&items, |i, &x| {
            assert_eq!(i, x, "closure sees the item's true index");
            i * 2
        });
        assert_eq!(out, (0..97).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_handles_degenerate_inputs() {
        let empty: Vec<u32> = Vec::new();
        let out = ExecPool::with_threads(8).par_map_indexed(&empty, |_, &x| x);
        assert!(out.is_empty());
        let one = [41u32];
        assert_eq!(
            ExecPool::with_threads(8).par_map_indexed(&one, |_, &x| x + 1),
            vec![42]
        );
    }

    #[test]
    fn shard_reduce_merges_in_order() {
        // Order-sensitive accumulator: concatenation detects any reorder.
        let fold = |threads: usize| {
            ExecPool::with_threads(threads).par_shard_reduce(
                10,
                |s| format!("[{s}]"),
                String::new(),
                |acc: &mut String, part| acc.push_str(&part),
            )
        };
        let want = "[0][1][2][3][4][5][6][7][8][9]";
        assert_eq!(fold(1), want);
        assert_eq!(fold(4), want);
        assert_eq!(fold(32), want);
    }

    #[test]
    fn split_seed_is_pure_and_spreads() {
        assert_eq!(split_seed(2014, 7), split_seed(2014, 7));
        assert_ne!(split_seed(2014, 7), split_seed(2014, 8));
        assert_ne!(split_seed(2014, 7), split_seed(2015, 7));
        // No short cycles over a window of indices.
        let seen: std::collections::HashSet<u64> =
            (0..10_000).map(|i| split_seed(66_000_000, i)).collect();
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn shard_ranges_partition_exactly() {
        for len in [0usize, 1, 5, 64, 65, 1_000, 15_970] {
            let shards = fixed_shard_count(len.max(1));
            let mut covered = 0usize;
            for s in 0..shards {
                let r = shard_range(len, shards, s);
                assert_eq!(r.start, covered, "len {len} shard {s} contiguous");
                covered = r.end;
            }
            assert_eq!(covered, len, "len {len} fully covered");
        }
    }

    #[test]
    fn thread_count_prefers_override() {
        set_thread_override(Some(3));
        assert_eq!(thread_count(), 3);
        set_thread_override(None);
        assert!(thread_count() >= 1);
    }
}
