//! Devices: the unit the paper's per-handset analysis runs on.

use std::sync::Arc;
use tangled_pki::store::RootStore;
use tangled_pki::trust::AnchorSource;
use tangled_pki::vocab::{AndroidVersion, Manufacturer, Operator};
use tangled_x509::CertIdentity;

/// Opaque device identifier (the paper pseudonymizes devices via
/// network/model tuples; we just number them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

/// One simulated handset.
#[derive(Debug, Clone)]
pub struct Device {
    /// Stable identifier.
    pub id: DeviceId,
    /// Marketing model name ("Galaxy SIV", "Nexus 5", …).
    pub model: String,
    /// Handset manufacturer.
    pub manufacturer: Manufacturer,
    /// Android OS version.
    pub os_version: AndroidVersion,
    /// Subscribed mobile operator.
    pub operator: Operator,
    /// Whether the handset is rooted (§6).
    pub rooted: bool,
    /// The device's effective root store (firmware base plus any user /
    /// root-app modifications). Shared between devices with identical
    /// firmware composition.
    pub store: Arc<RootStore>,
    /// Identities of AOSP anchors the user deleted (rare; the paper saw
    /// only 5 such handsets).
    pub removed_aosp: Vec<CertIdentity>,
}

impl Device {
    /// Number of anchors originating from the AOSP distribution.
    pub fn aosp_cert_count(&self) -> usize {
        self.store
            .iter()
            .filter(|a| a.source == AnchorSource::Aosp)
            .count()
    }

    /// Anchors beyond the AOSP distribution (the paper's "additional
    /// certificates").
    pub fn additional_certs(&self) -> Vec<&tangled_pki::trust::TrustAnchor> {
        self.store
            .iter()
            .filter(|a| a.source != AnchorSource::Aosp)
            .collect()
    }

    /// Count of additional certificates.
    pub fn additional_count(&self) -> usize {
        self.store
            .iter()
            .filter(|a| a.source != AnchorSource::Aosp)
            .count()
    }

    /// Does the store extend the AOSP baseline?
    pub fn has_extended_store(&self) -> bool {
        self.additional_count() > 0
    }

    /// Does the device carry anchors installed by a root-privileged app?
    pub fn has_root_app_certs(&self) -> bool {
        self.store
            .iter()
            .any(|a| a.source == AnchorSource::RootApp)
    }

    /// Is the device missing AOSP anchors relative to its distribution?
    pub fn is_missing_aosp_certs(&self) -> bool {
        !self.removed_aosp.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangled_pki::stores::ReferenceStore;
    use tangled_pki::trust::TrustAnchor;

    fn base_device(store: Arc<RootStore>) -> Device {
        Device {
            id: DeviceId(1),
            model: "Test Phone".into(),
            manufacturer: Manufacturer::Htc,
            os_version: AndroidVersion::V4_1,
            operator: Operator::AttUs,
            rooted: false,
            store,
            removed_aosp: Vec::new(),
        }
    }

    #[test]
    fn stock_device_counts() {
        let d = base_device(ReferenceStore::Aosp41.cached());
        assert_eq!(d.aosp_cert_count(), 139);
        assert_eq!(d.additional_count(), 0);
        assert!(!d.has_extended_store());
        assert!(!d.has_root_app_certs());
        assert!(!d.is_missing_aosp_certs());
    }

    #[test]
    fn extended_device_counts() {
        let base = ReferenceStore::Aosp41.cached();
        let mut store = base.cloned_as("extended");
        let mut f = tangled_pki::stores::global_factory().lock().unwrap();
        store.add(TrustAnchor::new(
            f.root("Extra Vendor CA"),
            AnchorSource::Manufacturer,
        ));
        store.add(TrustAnchor::new(
            f.root("Extra Malware CA"),
            AnchorSource::RootApp,
        ));
        drop(f);
        let d = base_device(Arc::new(store));
        assert_eq!(d.aosp_cert_count(), 139);
        assert_eq!(d.additional_count(), 2);
        assert!(d.has_extended_store());
        assert!(d.has_root_app_certs());
        assert_eq!(d.additional_certs().len(), 2);
    }
}
