//! Snapshot persistence: lossless round trips, width-invariant bytes,
//! and hostile-input safety.
//!
//! The corruption properties are the load-bearing half: a snapshot file
//! is parsed by whatever process finds it on disk, so *every* mutation
//! of the bytes — header, section table, record payloads, checksums —
//! must classify as a [`SnapError`], never panic and never allocate
//! unboundedly.

use proptest::prelude::*;
use std::sync::OnceLock;
use tangled_mass::analysis::{export, tables, Study};
use tangled_mass::exec::ExecPool;
use tangled_mass::pki::stores::{EcosystemStore, ReferenceStore};
use tangled_mass::snap::{
    decode_eco_stores, decode_stores, decode_study, encode_study, SectionId, Snapshot,
};

/// One small study and its snapshot bytes, built once for every test in
/// this binary (study synthesis is the expensive part).
fn fixture() -> &'static (Study, Vec<u8>) {
    static FIXTURE: OnceLock<(Study, Vec<u8>)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let study = Study::new(0.05, 0.02);
        let bytes = encode_study(&study, &ExecPool::current());
        (study, bytes)
    })
}

#[test]
fn round_trip_is_lossless() {
    let (study, bytes) = fixture();
    let snap = Snapshot::parse(bytes.clone()).expect("own bytes parse");
    let loaded = decode_study(&snap).expect("own bytes decode");

    // Every rendered artifact reproduces exactly.
    assert_eq!(tables::render_all(&loaded), tables::render_all(study));
    let doc = serde_json::to_string(&export::export_study(&loaded)).unwrap();
    let want = serde_json::to_string(&export::export_study(study)).unwrap();
    assert_eq!(doc, want, "schema-v2 export must survive the round trip");

    // Structural spot checks behind the renders.
    assert_eq!(loaded.population.devices.len(), study.population.devices.len());
    assert_eq!(loaded.population.sessions.len(), study.population.sessions.len());
    assert_eq!(loaded.ecosystem.len(), study.ecosystem.len());
    assert_eq!(loaded.validation.total(), study.validation.total());
    for (a, b) in study
        .population
        .devices
        .iter()
        .zip(&loaded.population.devices)
    {
        assert_eq!(a.id, b.id);
        assert_eq!(a.store.name(), b.store.name());
        assert_eq!(a.store.identities(), b.store.identities());
        assert_eq!(a.removed_aosp, b.removed_aosp);
    }
    for (a, b) in study
        .population
        .sessions
        .iter()
        .zip(&loaded.population.sessions)
    {
        assert_eq!(a.at, b.at);
        assert_eq!(a.device, b.device);
    }
    // Chains keep their exact DER.
    for (a, b) in study.ecosystem.certs.iter().zip(&loaded.ecosystem.certs) {
        assert_eq!(a.chain.len(), b.chain.len());
        assert_eq!(a.sessions, b.sessions);
        for (ca, cb) in a.chain.iter().zip(&b.chain) {
            assert_eq!(ca.to_der(), cb.to_der());
        }
    }
}

#[test]
fn snapshot_bytes_are_width_invariant() {
    let (study, ambient) = fixture();
    for threads in [1usize, 2, 8] {
        let bytes = encode_study(study, &ExecPool::with_threads(threads));
        assert_eq!(
            &bytes, ambient,
            "snapshot bytes differ at pool width {threads}"
        );
    }
}

#[test]
fn stores_section_leads_with_reference_profiles() {
    let (_, bytes) = fixture();
    let snap = Snapshot::parse(bytes.clone()).expect("parses");
    let stores = decode_stores(&snap).expect("stores decode");
    let names: Vec<&str> = stores.iter().map(|s| s.name()).take(6).collect();
    let want: Vec<&str> = ReferenceStore::ALL.iter().map(|rs| rs.name()).collect();
    assert_eq!(names, want, "warm start depends on this ordering");
    assert!(
        stores.len() > 6,
        "device stores follow the reference profiles"
    );
}

#[test]
fn eco_stores_section_round_trips_the_ecosystem_profiles() {
    let (_, bytes) = fixture();
    let snap = Snapshot::parse(bytes.clone()).expect("parses");
    let eco = decode_eco_stores(&snap).expect("eco-stores decode");
    assert_eq!(eco.len(), EcosystemStore::ALL.len());
    for (decoded, spec) in eco.iter().zip(EcosystemStore::ALL) {
        let want = spec.cached();
        assert_eq!(decoded.name(), want.name());
        assert_eq!(
            decoded.identities(),
            want.identities(),
            "'{}' must carry the exact anchor set through the snapshot",
            want.name()
        );
    }
}

/// Exercise the full lazy read path on (possibly corrupt) bytes; the
/// contract is "classified error or success", never a panic.
fn try_full_decode(data: Vec<u8>) -> Result<(), &'static str> {
    let snap = Snapshot::parse(data).map_err(|e| e.label())?;
    for id in SectionId::STUDY {
        snap.section(id).map_err(|e| e.label())?;
    }
    decode_study(&snap).map_err(|e| e.label())?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flip one byte anywhere — header, table, or body — and decode.
    #[test]
    fn mutated_snapshot_never_panics(pos in any::<u64>(), xor in 1u8..=255) {
        let (_, bytes) = fixture();
        let mut data = bytes.clone();
        let i = (pos % data.len() as u64) as usize;
        data[i] ^= xor;
        // Either the mutation lands somewhere checked (classified error)
        // or, for a handful of bytes, decodes to an equivalent value
        // (e.g. flipping a bit the checksum was computed over as well).
        // Both are fine; panicking or hanging is not.
        let _ = try_full_decode(data);
    }

    /// Truncate at an arbitrary point.
    #[test]
    fn truncated_snapshot_never_panics(len in any::<u64>()) {
        let (_, bytes) = fixture();
        let data = bytes[..(len % bytes.len() as u64) as usize].to_vec();
        let outcome = try_full_decode(data);
        prop_assert!(outcome.is_err(), "a strict prefix cannot decode");
    }

    /// Splice random garbage over a whole region.
    #[test]
    fn garbage_region_never_panics(
        start in any::<u64>(),
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let (_, bytes) = fixture();
        let mut data = bytes.clone();
        let s = (start % data.len() as u64) as usize;
        for (i, g) in garbage.iter().enumerate() {
            if s + i < data.len() {
                data[s + i] = *g;
            }
        }
        let _ = try_full_decode(data);
    }

    /// Pure noise (with and without a valid magic prefix).
    #[test]
    fn random_bytes_never_panic(mut data in proptest::collection::vec(any::<u8>(), 0..512), keep_magic in any::<bool>()) {
        if keep_magic && data.len() >= 8 {
            data[..8].copy_from_slice(b"TNGLSNP1");
        }
        let outcome = try_full_decode(data);
        prop_assert!(outcome.is_err(), "noise cannot decode as a study");
    }
}

#[test]
fn checksum_damage_in_each_section_is_attributed() {
    let (_, bytes) = fixture();
    let snap = Snapshot::parse(bytes.clone()).expect("parses");
    // Flip the last byte of every section body in turn; the error must
    // name that section.
    for (id, entry) in SectionId::STUDY.iter().zip(snap.entries()) {
        if entry.len == 0 {
            continue;
        }
        let mut data = bytes.clone();
        let last = (entry.offset + entry.len - 1) as usize;
        data[last] ^= 0xff;
        let damaged = Snapshot::parse(data).expect("table is intact");
        let err = damaged.section(*id).expect_err("checksum must fail");
        assert_eq!(err.label(), "checksum-mismatch");
        assert!(
            err.to_string().contains(id.name()),
            "error '{err}' must name section '{}'",
            id.name()
        );
    }
}
