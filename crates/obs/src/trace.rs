//! Span-based structured tracing with deterministic span IDs.
//!
//! A trace is a JSONL event log collected between [`begin`] and
//! [`finish`]. The contract that makes it testable: the log is
//! *byte-identical at any exec-pool width*. Three rules enforce that:
//!
//! * **Span IDs are derived, never drawn.** [`span_id`] hashes
//!   `(seed, stage, unit index)` — an FNV-1a over the stage name folded
//!   through a SplitMix64-style finalizer — so the same work unit gets
//!   the same ID in every run at every width. No wall clock, no RNG.
//! * **Payloads are width-invariant.** Unit counts, seeds, quarantine
//!   tallies. Anything timed or scheduling-dependent (latencies, memo
//!   hit rates, thread counts) belongs in the metrics
//!   [`registry`](crate::registry) instead.
//! * **Emission happens in sequential code.** Pipeline stages trace from
//!   phase boundaries and index-ordered merge loops, never from inside
//!   parallel closures, so event order is the sequential order.
//!
//! When no trace is active every emit is a cheap atomic-load no-op, so
//! the pipeline stages call these hooks unconditionally.

use serde_json::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Event kinds a trace line may carry (the schema's `kind` field).
pub const EVENT_KINDS: [&str; 5] =
    ["run_start", "span_start", "span_end", "point", "quarantine"];

/// Derive the deterministic span ID for a work unit: FNV-1a over the
/// stage name, mixed with the seed and unit index through the SplitMix64
/// finalizer (both from the shared [`tangled_crypto::hash`] module). A
/// pure function of its arguments.
pub fn span_id(seed: u64, stage: &str, unit: u64) -> u64 {
    let h = tangled_crypto::hash::fnv1a(stage.as_bytes());
    tangled_crypto::hash::mix64(
        h ^ seed.rotate_left(32)
            ^ unit.wrapping_mul(tangled_crypto::hash::GOLDEN_GAMMA),
    )
}

/// Render a span ID the way the event log does: 16 lowercase hex chars.
pub fn span_hex(id: u64) -> String {
    format!("{id:016x}")
}

struct Sink {
    seq: u64,
    lines: Vec<String>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn sink() -> &'static Mutex<Option<Sink>> {
    static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// Start collecting a trace, emitting the `run_start` event that records
/// the run's master seed. Replaces any active trace.
pub fn begin(seed: u64) {
    {
        let mut guard = sink().lock().expect("trace sink poisoned");
        *guard = Some(Sink {
            seq: 0,
            lines: Vec::new(),
        });
    }
    ENABLED.store(true, Ordering::SeqCst);
    emit("run_start", "run", None, &[("seed", Value::from(seed))]);
}

/// Is a trace being collected?
pub fn active() -> bool {
    ENABLED.load(Ordering::SeqCst)
}

/// Stop collecting and return the event log, one JSON object per line.
/// `None` when no trace was active.
pub fn finish() -> Option<Vec<String>> {
    ENABLED.store(false, Ordering::SeqCst);
    sink()
        .lock()
        .expect("trace sink poisoned")
        .take()
        .map(|s| s.lines)
}

fn emit(kind: &str, stage: &str, span: Option<u64>, fields: &[(&str, Value)]) {
    if !ENABLED.load(Ordering::SeqCst) {
        return;
    }
    let mut guard = sink().lock().expect("trace sink poisoned");
    let Some(sink) = guard.as_mut() else {
        return;
    };
    let mut obj: BTreeMap<String, Value> = BTreeMap::new();
    for (key, value) in fields {
        obj.insert((*key).to_owned(), value.clone());
    }
    // Reserved keys win over a colliding field.
    obj.insert("seq".to_owned(), Value::from(sink.seq));
    obj.insert("kind".to_owned(), Value::from(kind));
    obj.insert("stage".to_owned(), Value::from(stage));
    if let Some(id) = span {
        obj.insert("span".to_owned(), Value::from(span_hex(id)));
    }
    sink.seq += 1;
    sink.lines.push(
        serde_json::to_string(&Value::Object(obj)).expect("trace event serialises"),
    );
}

/// Open a span for `(stage, unit)` under `seed` and return its ID. The
/// ID is computed (and identical) whether or not a trace is active, so
/// callers can thread it unconditionally.
pub fn span_start(stage: &str, seed: u64, unit: u64, fields: &[(&str, Value)]) -> u64 {
    let id = span_id(seed, stage, unit);
    emit("span_start", stage, Some(id), fields);
    id
}

/// Close a span opened by [`span_start`].
pub fn span_end(stage: &str, id: u64, fields: &[(&str, Value)]) {
    emit("span_end", stage, Some(id), fields);
}

/// Emit a point event inside a span (per-shard tallies, phase marks).
pub fn point(stage: &str, span: u64, fields: &[(&str, Value)]) {
    emit("point", stage, Some(span), fields);
}

/// Emit a quarantine event inside a span, in the PR-1 `RunHealth`
/// vocabulary: `count` units quarantined at detection stage `q_stage`
/// under error `label`.
pub fn quarantine(stage: &str, span: u64, q_stage: &str, label: &str, count: u64) {
    emit(
        "quarantine",
        stage,
        Some(span),
        &[
            ("q_stage", Value::from(q_stage)),
            ("label", Value::from(label)),
            ("count", Value::from(count)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The sink is process-global; trace tests must not interleave.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn span_ids_are_pure_and_distinct() {
        assert_eq!(span_id(2014, "a", 0), span_id(2014, "a", 0));
        assert_ne!(span_id(2014, "a", 0), span_id(2014, "a", 1));
        assert_ne!(span_id(2014, "a", 0), span_id(2014, "b", 0));
        assert_ne!(span_id(2014, "a", 0), span_id(2015, "a", 0));
        assert_eq!(span_hex(0xab).len(), 16);
        assert_eq!(span_hex(0xab), "00000000000000ab");
    }

    #[test]
    fn collected_trace_replays_identically() {
        let _guard = lock();
        let run = || {
            begin(7);
            let span = span_start("stage.x", 7, 0, &[("units", Value::from(3u64))]);
            point("stage.x", span, &[("shard", Value::from(0u64))]);
            quarantine("stage.x", span, "parse", "malformed-der", 2);
            span_end("stage.x", span, &[("done", Value::from(true))]);
            finish().expect("trace active")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same calls, same bytes");
        assert_eq!(a.len(), 5);
        assert!(a[0].contains("\"kind\":\"run_start\""), "{}", a[0]);
        assert!(a[0].contains("\"seed\":7"), "{}", a[0]);
        assert!(a[2].contains("\"kind\":\"point\""), "{}", a[2]);
        assert!(a[3].contains("\"label\":\"malformed-der\""), "{}", a[3]);
        crate::schema::validate_lines(&a).expect("own output validates");
    }

    #[test]
    fn disabled_trace_is_a_noop_with_stable_ids() {
        let _guard = lock();
        let _ = finish(); // drain any leftover trace from another test
        let id = span_start("stage.y", 1, 2, &[]);
        span_end("stage.y", id, &[]);
        assert_eq!(id, span_id(1, "stage.y", 2), "ID computed while disabled");
        assert!(finish().is_none(), "nothing collected");
    }

    #[test]
    fn begin_replaces_an_active_trace() {
        let _guard = lock();
        begin(1);
        span_start("old", 1, 0, &[]);
        begin(2);
        let lines = finish().expect("second trace active");
        assert_eq!(lines.len(), 1, "only the fresh run_start: {lines:?}");
        assert!(lines[0].contains("\"seed\":2"));
    }
}
