//! Emulation of Android's on-disk root store layout.
//!
//! Android keeps its system root store as one file per anchor under
//! `/system/etc/security/cacerts/`, named `<subject-hash>.<n>` (footnote 2
//! of the paper). This module renders a [`RootStore`] into that layout and
//! parses it back — the format third-party apps with root permissions
//! manipulate directly in §6.

use crate::store::RootStore;
use crate::trust::AnchorSource;
use std::collections::BTreeMap;
use std::sync::Arc;
use tangled_crypto::sha1::sha1;
use tangled_x509::Certificate;

/// One file of the cacerts directory: name and contents. Android's real
/// files are PEM-armored; this emulation accepts both PEM and raw DER
/// contents and can write either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacertsFile {
    /// File name, `xxxxxxxx.n` (8 hex digits of the subject hash, then a
    /// collision counter).
    pub name: String,
    /// Certificate bytes: PEM text or raw DER.
    pub der: Vec<u8>,
}

/// The subject-hash prefix used in the file name (first 4 bytes of the
/// SHA-1 of the DER-encoded subject, rendered as 8 hex digits — a stand-in
/// for OpenSSL's `X509_NAME_hash`).
pub fn subject_hash(cert: &Certificate) -> String {
    let h = sha1(&cert.subject.to_der());
    format!("{:02x}{:02x}{:02x}{:02x}", h[0], h[1], h[2], h[3])
}

/// Render a store into the cacerts directory layout with raw DER
/// contents. Output is sorted by file name; hash collisions get increasing
/// `.n` suffixes, as on Android.
pub fn to_cacerts(store: &RootStore) -> Vec<CacertsFile> {
    let mut by_hash: BTreeMap<String, Vec<&Arc<Certificate>>> = BTreeMap::new();
    for anchor in store.iter() {
        by_hash
            .entry(subject_hash(&anchor.cert))
            .or_default()
            .push(&anchor.cert);
    }
    let mut files = Vec::with_capacity(store.len());
    for (hash, certs) in by_hash {
        for (n, cert) in certs.iter().enumerate() {
            files.push(CacertsFile {
                name: format!("{hash}.{n}"),
                der: cert.to_der().to_vec(),
            });
        }
    }
    files
}

/// Render a store into the cacerts layout with PEM-armored contents — the
/// format Android actually ships.
pub fn to_cacerts_pem(store: &RootStore) -> Vec<CacertsFile> {
    to_cacerts(store)
        .into_iter()
        .map(|f| {
            let cert = Certificate::parse(&f.der).expect("just serialized");
            CacertsFile {
                name: f.name,
                der: tangled_x509::pem::encode_certificate(&cert).into_bytes(),
            }
        })
        .collect()
}

/// Errors from reading a cacerts directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacertsError {
    /// A file's contents failed to parse as a certificate.
    BadCertificate {
        /// Offending file name.
        file: String,
    },
    /// A file name does not match the `xxxxxxxx.n` convention.
    BadFileName {
        /// Offending file name.
        file: String,
    },
    /// A file's name hash does not match its certificate's subject.
    HashMismatch {
        /// Offending file name.
        file: String,
    },
}

impl std::fmt::Display for CacertsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacertsError::BadCertificate { file } => {
                write!(f, "{file}: not a valid certificate")
            }
            CacertsError::BadFileName { file } => {
                write!(f, "{file}: invalid cacerts file name")
            }
            CacertsError::HashMismatch { file } => {
                write!(f, "{file}: name does not match subject hash")
            }
        }
    }
}

impl std::error::Error for CacertsError {}

/// Parse a cacerts directory back into a store. Every anchor is tagged with
/// the given provenance (a reader cannot tell who wrote a file).
pub fn from_cacerts(
    name: &str,
    files: &[CacertsFile],
    source: AnchorSource,
) -> Result<RootStore, CacertsError> {
    let mut store = RootStore::new(name);
    for file in files {
        let valid_name = file.name.len() >= 10
            && file.name.as_bytes()[8] == b'.'
            && file.name[..8].bytes().all(|b| b.is_ascii_hexdigit())
            && file.name[9..].bytes().all(|b| b.is_ascii_digit());
        if !valid_name {
            return Err(CacertsError::BadFileName {
                file: file.name.clone(),
            });
        }
        // Auto-detect PEM armor vs raw DER, like Android's cert loader.
        let cert = if file.der.starts_with(b"-----BEGIN") {
            std::str::from_utf8(&file.der)
                .ok()
                .and_then(|text| tangled_x509::pem::decode_certificate(text).ok())
                .ok_or(CacertsError::BadCertificate {
                    file: file.name.clone(),
                })?
        } else {
            Certificate::parse(&file.der).map_err(|_| CacertsError::BadCertificate {
                file: file.name.clone(),
            })?
        };
        if subject_hash(&cert) != file.name[..8] {
            return Err(CacertsError::HashMismatch {
                file: file.name.clone(),
            });
        }
        store.add_cert(Arc::new(cert), source);
    }
    Ok(store)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory::CaFactory;
    use crate::stores::ReferenceStore;

    #[test]
    fn round_trip_aosp_store() {
        let store = ReferenceStore::Aosp41.cached();
        let files = to_cacerts(&store);
        assert_eq!(files.len(), store.len());
        let back = from_cacerts("reread", &files, AnchorSource::Aosp).unwrap();
        assert_eq!(back.len(), store.len());
        let orig: std::collections::BTreeSet<_> =
            store.identities().iter().cloned().collect();
        let reread: std::collections::BTreeSet<_> =
            back.identities().iter().cloned().collect();
        assert_eq!(orig, reread);
    }

    #[test]
    fn file_names_are_hash_dot_counter() {
        let store = ReferenceStore::Aosp41.cached();
        for f in to_cacerts(&store) {
            assert_eq!(f.name.as_bytes()[8], b'.');
            assert!(f.name[..8].bytes().all(|b| b.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn pem_round_trip_matches_der() {
        let store = ReferenceStore::Aosp41.cached();
        let pem_files = to_cacerts_pem(&store);
        assert!(pem_files[0].der.starts_with(b"-----BEGIN CERTIFICATE-----"));
        let back = from_cacerts("pem", &pem_files, AnchorSource::Aosp).unwrap();
        assert_eq!(back.len(), store.len());
        let orig: std::collections::BTreeSet<_> =
            store.identities().iter().cloned().collect();
        let reread: std::collections::BTreeSet<_> =
            back.identities().iter().cloned().collect();
        assert_eq!(orig, reread);
    }

    #[test]
    fn corrupt_file_rejected() {
        let mut f = CaFactory::new();
        let mut store = RootStore::new("one");
        store.add_cert(f.root("Corrupt Test CA"), AnchorSource::Aosp);
        let mut files = to_cacerts(&store);
        files[0].der[30] ^= 0xff;
        let err = from_cacerts("x", &files, AnchorSource::Aosp).unwrap_err();
        assert!(matches!(
            err,
            CacertsError::BadCertificate { .. } | CacertsError::HashMismatch { .. }
        ));
    }

    #[test]
    fn wrong_name_rejected() {
        let mut f = CaFactory::new();
        let mut store = RootStore::new("one");
        store.add_cert(f.root("Name Test CA"), AnchorSource::Aosp);
        let mut files = to_cacerts(&store);
        files[0].name = "zzzz.0".into();
        assert!(matches!(
            from_cacerts("x", &files, AnchorSource::Aosp).unwrap_err(),
            CacertsError::BadFileName { .. }
        ));
        // Valid shape, wrong hash.
        let mut files2 = to_cacerts(&store);
        files2[0].name = "00000000.0".into();
        assert!(matches!(
            from_cacerts("x", &files2, AnchorSource::Aosp).unwrap_err(),
            CacertsError::HashMismatch { .. }
        ));
    }

    #[test]
    fn root_app_tampering_is_visible_via_diff() {
        // The §6 scenario end-to-end at the file level: a root app drops a
        // new file into cacerts; a diff against AOSP flags it.
        let mut f = CaFactory::new();
        let aosp = ReferenceStore::Aosp44.cached();
        let mut files = to_cacerts(&aosp);
        let mal = f.root("CRAZY HOUSE");
        let mal_hash = subject_hash(&mal);
        files.push(CacertsFile {
            name: format!("{mal_hash}.0"),
            der: mal.to_der().to_vec(),
        });
        let observed = from_cacerts("tampered", &files, AnchorSource::Unknown).unwrap();
        let d = crate::diff::diff(&aosp, &observed);
        assert_eq!(d.added.len(), 1);
        assert!(d.added[0].subject.contains("CRAZY HOUSE"));
        assert!(d.removed.is_empty());
    }
}
