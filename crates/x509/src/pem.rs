//! PEM armor (RFC 7468) with a from-scratch Base64 codec.
//!
//! Android's `/system/etc/security/cacerts/` files are PEM-encoded
//! certificates, not raw DER; this module supplies the encoding so the
//! cacerts emulation and the CLI read and write the real format.

use crate::cert::Certificate;
use crate::X509Error;

const B64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Errors from PEM decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PemError {
    /// No `-----BEGIN <label>-----` header found.
    MissingHeader,
    /// Header present but no matching `-----END <label>-----` footer.
    MissingFooter,
    /// A character outside the Base64 alphabet (and not whitespace).
    BadBase64,
    /// Base64 payload has an impossible length or malformed padding.
    BadPadding,
}

impl std::fmt::Display for PemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PemError::MissingHeader => write!(f, "missing PEM BEGIN header"),
            PemError::MissingFooter => write!(f, "missing PEM END footer"),
            PemError::BadBase64 => write!(f, "invalid base64 character"),
            PemError::BadPadding => write!(f, "invalid base64 padding"),
        }
    }
}

impl std::error::Error for PemError {}

/// Encode bytes as Base64 (no line wrapping).
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(B64_ALPHABET[(triple >> 18) as usize & 63] as char);
        out.push(B64_ALPHABET[(triple >> 12) as usize & 63] as char);
        if chunk.len() > 1 {
            out.push(B64_ALPHABET[(triple >> 6) as usize & 63] as char);
        } else {
            out.push('=');
        }
        if chunk.len() > 2 {
            out.push(B64_ALPHABET[triple as usize & 63] as char);
        } else {
            out.push('=');
        }
    }
    out
}

/// Decode canonical Base64, ignoring ASCII whitespace.
///
/// Canonical means exactly the encodings [`base64_encode`] produces:
/// `=` padding may appear only in the final group, and the unused
/// low-order bits of a padded final group must be zero. Both checks are
/// load-bearing — without them distinct wire texts alias to the same
/// bytes (`"AB=="` would decode like `"AA=="`, `"AA==QUJD"` would decode
/// at all), and the fault engine's damaged-input accounting relies on
/// one text mapping to one certificate.
pub fn base64_decode(text: &str) -> Result<Vec<u8>, PemError> {
    fn val(c: u8) -> Result<u32, PemError> {
        match c {
            b'A'..=b'Z' => Ok((c - b'A') as u32),
            b'a'..=b'z' => Ok((c - b'a' + 26) as u32),
            b'0'..=b'9' => Ok((c - b'0' + 52) as u32),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(PemError::BadBase64),
        }
    }
    let compact: Vec<u8> = text
        .bytes()
        .filter(|b| !b.is_ascii_whitespace())
        .collect();
    if !compact.len().is_multiple_of(4) {
        return Err(PemError::BadPadding);
    }
    let groups = compact.len() / 4;
    let mut out = Vec::with_capacity(groups * 3);
    for (g, group) in compact.chunks(4).enumerate() {
        let pad = group.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || group[..4 - pad].contains(&b'=') {
            return Err(PemError::BadPadding);
        }
        // Padding is only legal in the final group.
        if pad > 0 && g + 1 != groups {
            return Err(PemError::BadPadding);
        }
        let mut triple = 0u32;
        for (i, &c) in group.iter().enumerate() {
            let v = if c == b'=' { 0 } else { val(c)? };
            triple |= v << (18 - 6 * i);
        }
        // The bits a padded group does not emit must be zero, or two
        // distinct texts decode to the same bytes.
        if (pad == 2 && triple & 0xFFFF != 0) || (pad == 1 && triple & 0xFF != 0) {
            return Err(PemError::BadPadding);
        }
        out.push((triple >> 16) as u8);
        if pad < 2 {
            out.push((triple >> 8) as u8);
        }
        if pad < 1 {
            out.push(triple as u8);
        }
    }
    Ok(out)
}

/// Wrap DER bytes in PEM armor with the given label, 64-column lines.
pub fn encode(label: &str, der: &[u8]) -> String {
    let b64 = base64_encode(der);
    let mut out = String::with_capacity(b64.len() + label.len() * 2 + 40);
    out.push_str(&format!("-----BEGIN {label}-----\n"));
    for line in b64.as_bytes().chunks(64) {
        out.push_str(std::str::from_utf8(line).expect("base64 is ASCII"));
        out.push('\n');
    }
    out.push_str(&format!("-----END {label}-----\n"));
    out
}

/// Extract the first PEM block with the given label and decode its body.
pub fn decode(label: &str, text: &str) -> Result<Vec<u8>, PemError> {
    let header = format!("-----BEGIN {label}-----");
    let footer = format!("-----END {label}-----");
    let start = text.find(&header).ok_or(PemError::MissingHeader)? + header.len();
    let end = text[start..]
        .find(&footer)
        .ok_or(PemError::MissingFooter)?
        + start;
    base64_decode(&text[start..end])
}

/// Encode a certificate as a `CERTIFICATE` PEM block.
pub fn encode_certificate(cert: &Certificate) -> String {
    encode("CERTIFICATE", cert.to_der())
}

/// Parse the first `CERTIFICATE` PEM block of `text`.
pub fn decode_certificate(text: &str) -> Result<Certificate, X509Error> {
    let der = decode("CERTIFICATE", text)
        .map_err(|_| X509Error::Malformed("invalid PEM armor"))?;
    Certificate::parse(&der)
}

/// Parse every `CERTIFICATE` block in `text`, in order.
pub fn decode_certificates(text: &str) -> Result<Vec<Certificate>, X509Error> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(start) = rest.find("-----BEGIN CERTIFICATE-----") {
        let chunk = &rest[start..];
        let cert = decode_certificate(chunk)?;
        out.push(cert);
        let footer = "-----END CERTIFICATE-----";
        let end = chunk.find(footer).expect("decode succeeded") + footer.len();
        rest = &chunk[end..];
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CertificateBuilder;
    use crate::name::DistinguishedName;
    use tangled_asn1::Time;
    use tangled_crypto::rsa::RsaKeyPair;
    use tangled_crypto::SplitMix64;

    #[test]
    fn base64_rfc4648_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        for input in [&b""[..], b"f", b"fo", b"foo", b"foob", b"fooba", b"foobar"] {
            assert_eq!(base64_decode(&base64_encode(input)).unwrap(), input);
        }
    }

    #[test]
    fn base64_rejects_garbage() {
        assert_eq!(base64_decode("Zg="), Err(PemError::BadPadding));
        assert_eq!(base64_decode("Z!=="), Err(PemError::BadBase64));
        assert_eq!(base64_decode("=AAA"), Err(PemError::BadPadding));
        assert_eq!(base64_decode("A==="), Err(PemError::BadPadding));
        // Whitespace anywhere is fine.
        assert_eq!(base64_decode("Zm9v\nYmFy\t ").unwrap(), b"foobar");
    }

    #[test]
    fn base64_rejects_non_canonical_padding_position() {
        // '=' padding in a non-final group used to decode silently.
        assert_eq!(base64_decode("AA==QUJD"), Err(PemError::BadPadding));
        assert_eq!(base64_decode("Zg==Zg=="), Err(PemError::BadPadding));
        assert_eq!(base64_decode("Zm8=QUJD"), Err(PemError::BadPadding));
        // Final-group padding stays legal.
        assert_eq!(base64_decode("QUJDAA==").unwrap(), b"ABC\0");
    }

    #[test]
    fn base64_rejects_nonzero_trailing_bits() {
        // "AB==" used to alias to "AA==" (B's low bits discarded).
        assert_eq!(base64_decode("AB=="), Err(PemError::BadPadding));
        assert_eq!(base64_decode("Zm9="), Err(PemError::BadPadding));
        assert_eq!(base64_decode("//=="), Err(PemError::BadPadding));
        // The canonical spellings of the same payloads still decode.
        assert_eq!(base64_decode("AA==").unwrap(), vec![0]);
        assert_eq!(base64_decode("Zm8=").unwrap(), b"fo");
        assert_eq!(base64_decode("/w==").unwrap(), vec![0xff]);
    }

    #[test]
    fn base64_binary_round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
    }

    #[test]
    fn certificate_pem_round_trip() {
        let kp = RsaKeyPair::generate(512, &mut SplitMix64::new(314)).unwrap();
        let cert = CertificateBuilder::self_signed_root(
            DistinguishedName::common_name("PEM Round Trip CA"),
            Time::date(2010, 1, 1).unwrap(),
            Time::date(2020, 1, 1).unwrap(),
            &kp,
            tangled_crypto::Uint::one(),
        )
        .unwrap();
        let pem = encode_certificate(&cert);
        assert!(pem.starts_with("-----BEGIN CERTIFICATE-----\n"));
        assert!(pem.ends_with("-----END CERTIFICATE-----\n"));
        assert!(pem.lines().skip(1).all(|l| l.len() <= 64 || l.starts_with("-----")));
        let back = decode_certificate(&pem).unwrap();
        assert_eq!(back, cert);
    }

    #[test]
    fn multi_certificate_bundle() {
        let kp = RsaKeyPair::generate(512, &mut SplitMix64::new(315)).unwrap();
        let mk = |cn: &str| {
            CertificateBuilder::self_signed_root(
                DistinguishedName::common_name(cn),
                Time::date(2010, 1, 1).unwrap(),
                Time::date(2020, 1, 1).unwrap(),
                &kp,
                tangled_crypto::Uint::one(),
            )
            .unwrap()
        };
        let a = mk("Bundle A");
        let b = mk("Bundle B");
        let bundle = format!("{}{}", encode_certificate(&a), encode_certificate(&b));
        let parsed = decode_certificates(&bundle).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], a);
        assert_eq!(parsed[1], b);
        assert!(decode_certificates("no pem here").unwrap().is_empty());
    }

    #[test]
    fn missing_armor_errors() {
        assert_eq!(
            decode("CERTIFICATE", "plain text"),
            Err(PemError::MissingHeader)
        );
        assert_eq!(
            decode("CERTIFICATE", "-----BEGIN CERTIFICATE-----\nZm9v"),
            Err(PemError::MissingFooter)
        );
        // Wrong label is a missing header for the requested one.
        let kp = RsaKeyPair::generate(512, &mut SplitMix64::new(316)).unwrap();
        let cert = CertificateBuilder::self_signed_root(
            DistinguishedName::common_name("X"),
            Time::date(2010, 1, 1).unwrap(),
            Time::date(2020, 1, 1).unwrap(),
            &kp,
            tangled_crypto::Uint::one(),
        )
        .unwrap();
        let pem = encode("PRIVATE KEY", cert.to_der());
        assert_eq!(
            decode("CERTIFICATE", &pem),
            Err(PemError::MissingHeader)
        );
    }
}
