//! The trust-decision service: request dispatch over the store index.
//!
//! [`TrustService::handle`] is the whole protocol — the TCP server is
//! just framing around it, which is what lets the loopback tests and the
//! loadgen client assert byte-identical verdicts between the served and
//! offline paths: both run this exact function.
//!
//! Validation verdicts are memoised in a bounded LRU keyed by
//! `(profile, epoch, ChainKey)`. The epoch component makes profile swaps
//! self-invalidating: a swap bumps the epoch, so every stale entry simply
//! stops being reachable and ages out of the LRU.

use crate::cache::LruCache;
use crate::index::StoreIndex;
use crate::stats::ServiceStats;
use crate::wire::{ChainVerdict, Request, Response, WireError};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;
use tangled_core::classify::class_index;
use tangled_intercept::defect::{evaluate_session, DefectClass, SessionInput};
use tangled_intercept::detect::{probe, Verdict};
use tangled_intercept::origin::OriginServers;
use tangled_intercept::policy::Target;
use tangled_pki::audit::audit;
use tangled_pki::cacerts::from_cacerts_lenient;
use tangled_pki::extras::Figure2Class;
use tangled_pki::store::RootStore;
use tangled_pki::stores::ReferenceStore;
use tangled_pki::trust::AnchorSource;
use tangled_pki::vocab::AndroidVersion;
use tangled_x509::{Certificate, CertIdentity, ChainError, ChainKey, ChainOptions};

/// Memo-cache key: the verdict depends on the store (profile + epoch)
/// and the presented chain, nothing else.
type MemoKey = (String, u64, ChainKey);

/// Default memo-cache capacity.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// Online journal compaction: the fold accumulated so far plus where and
/// when to checkpoint it.
struct Compactor {
    /// Checkpoint destination (`<journal>.ckpt` by convention).
    path: String,
    /// Journal size (bytes) past which a swap triggers compaction.
    threshold: u64,
    /// The base snapshot file's bytes, when the server warm-started from
    /// one — checkpoints delta over it so unchanged study sections dedup
    /// away. `None` for a cold start: checkpoints are base-less.
    base: Option<Vec<u8>>,
    /// Every swap the journal has ever recorded, folded to the last
    /// record per profile (seeded from a prior checkpoint at warm start).
    state: tangled_snap::TrustState,
    /// Checkpoints written by this process.
    compactions: u64,
}

/// The trust-decision service.
pub struct TrustService {
    index: StoreIndex,
    cache: Mutex<LruCache<MemoKey, ChainVerdict>>,
    classes: HashMap<CertIdentity, Figure2Class>,
    expected_issuer: CertIdentity,
    stats: ServiceStats,
    /// Write-ahead swap journal. The mutex also serialises swaps, which
    /// is what makes the epoch recorded in each frame the epoch the
    /// install actually produces.
    journal: Mutex<Option<tangled_snap::Journal>>,
    /// Compaction config/state. Only ever locked while the journal lock
    /// is held (swap path) or for read-only stats, so the order
    /// journal → compactor is fixed and deadlock-free.
    compactor: Mutex<Option<Compactor>>,
}

impl TrustService {
    /// A service over the ten standard profiles (six reference stores
    /// plus the four ecosystem families) with the given memo capacity
    /// (0 disables caching).
    pub fn new(cache_capacity: usize) -> TrustService {
        TrustService::with_index(StoreIndex::with_standard_profiles(), cache_capacity)
    }

    /// A service over an already-populated index — the warm-start path:
    /// the caller builds the index from a snapshot (and replays a journal
    /// into it) before serving begins.
    pub fn with_index(index: StoreIndex, cache_capacity: usize) -> TrustService {
        TrustService {
            index,
            cache: Mutex::new(LruCache::new(cache_capacity)),
            classes: class_index(),
            expected_issuer: OriginServers::for_table6().issuer_identity(),
            stats: ServiceStats::new(),
            journal: Mutex::new(None),
            compactor: Mutex::new(None),
        }
    }

    /// Attach a swap journal. Every subsequent accepted `swap` is framed,
    /// appended and fsync'd *before* the store install publishes.
    pub fn attach_journal(&self, journal: tangled_snap::Journal) {
        *self.journal.lock().expect("journal poisoned") = Some(journal);
    }

    /// Enable online journal compaction: once the journal grows past
    /// `threshold` bytes, the accepted swap folds the history into a
    /// checkpoint at `path` (written atomically: tmp + fsync + rename)
    /// and truncates the journal back to its magic. `base` is the warm
    /// start's snapshot file bytes (checkpoints delta over it); `state`
    /// seeds the fold — the prior checkpoint's trust-state absorbed with
    /// whatever journal tail start-up replayed.
    pub fn configure_compaction(
        &self,
        path: String,
        threshold: u64,
        base: Option<Vec<u8>>,
        state: tangled_snap::TrustState,
    ) {
        *self.compactor.lock().expect("compactor poisoned") = Some(Compactor {
            path,
            threshold,
            base,
            state,
            compactions: 0,
        });
    }

    /// Checkpoints written by this process (test/stats introspection).
    pub fn compactions(&self) -> u64 {
        self.compactor
            .lock()
            .expect("compactor poisoned")
            .as_ref()
            .map(|c| c.compactions)
            .unwrap_or(0)
    }

    /// The service's counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// The store index (test introspection).
    pub fn index(&self) -> &StoreIndex {
        &self.index
    }

    /// Handle one request, recording counters and latency.
    pub fn handle(&self, req: &Request) -> Response {
        let started = Instant::now();
        let resp = self.dispatch(req);
        let errored = matches!(resp, Response::Error { .. });
        self.stats.record_request(
            req.kind(),
            started.elapsed().as_micros() as u64,
            errored,
        );
        resp
    }

    /// Record a framing/decode failure in the quarantine ledger and build
    /// the error reply the connection handler sends back.
    pub fn record_wire_fault(&self, err: &WireError) -> Response {
        self.stats.record_quarantined("wire", err.label());
        Response::Error {
            stage: "wire".to_owned(),
            error: err.label().to_owned(),
        }
    }

    fn dispatch(&self, req: &Request) -> Response {
        match req {
            Request::Validate { profile, chain } => self.validate(profile, chain),
            Request::Classify { cert } => self.classify(cert),
            Request::Audit { baseline, files } => self.audit(baseline, files),
            Request::Probe {
                profile,
                target,
                chain,
                pinned,
            } => self.probe(profile, target, chain, *pinned),
            Request::ProbeSession {
                profile,
                defect,
                target,
                chain,
                pinned,
                extra_anchor,
                intercepted,
            } => self.probe_session(
                profile,
                defect,
                target,
                chain,
                *pinned,
                extra_anchor.as_deref(),
                *intercepted,
            ),
            Request::Compare { chain } => self.compare(chain),
            Request::BatchValidate { profile, chains } => {
                self.batch_validate(profile, chains)
            }
            Request::Swap { profile, snapshot } => self.swap(profile, snapshot),
            Request::Stats => Response::Stats(self.stats_document()),
        }
    }

    /// The full stats document: the counter ledger plus a live view of
    /// the index — global epoch and per-profile epochs. The per-profile
    /// epochs are what a resilient client re-syncs an ambiguous `swap`
    /// against: if the profile's epoch advanced past the one observed
    /// before the attempt, the swap landed.
    pub fn stats_document(&self) -> serde_json::Value {
        let mut doc = self.stats.to_json();
        let mut profiles = serde_json::Value::Object(Default::default());
        if let serde_json::Value::Object(map) = &mut profiles {
            for name in self.index.profile_names() {
                if let Some(profile) = self.index.profile(&name) {
                    map.insert(name, serde_json::Value::from(profile.epoch));
                }
            }
        }
        if let serde_json::Value::Object(map) = &mut doc {
            map.insert(
                "index".to_owned(),
                serde_json::json!({
                    "epoch": self.index.current_epoch(),
                    "profiles": profiles,
                }),
            );
            let journal_size = self
                .journal
                .lock()
                .expect("journal poisoned")
                .as_ref()
                .map(tangled_snap::Journal::size);
            if let Some(size) = journal_size {
                map.insert(
                    "journal".to_owned(),
                    serde_json::json!({
                        "size": size,
                        "compactions": self.compactions(),
                    }),
                );
            }
        }
        doc
    }

    fn validate(&self, profile: &str, chain: &[Vec<u8>]) -> Response {
        let Some(profile) = self.index.profile(profile) else {
            return error("validate", "unknown-profile");
        };
        if chain.is_empty() {
            self.stats.record_quarantined("validate", "empty-chain");
            return error("validate", "empty-chain");
        }
        let Some(certs) = parse_chain(chain) else {
            self.stats.record_quarantined("validate", "malformed-der");
            return error("validate", "malformed-der");
        };

        let chain_key = ChainKey::exact(certs.iter().map(Arc::as_ref));
        let (verdict, cached) = self.profile_verdict(&profile, &certs, chain_key);
        Response::Validate { verdict, cached }
    }

    /// Cross-ecosystem comparison: one chain parse, one [`ChainKey`], one
    /// verdict per standard profile — the per-chain verdict vector the
    /// disparity engine is built on, amortising the index lookup that a
    /// `validate` per store would repeat ten times.
    fn compare(&self, chain: &[Vec<u8>]) -> Response {
        if chain.is_empty() {
            self.stats.record_quarantined("compare", "empty-chain");
            return error("compare", "empty-chain");
        }
        let Some(certs) = parse_chain(chain) else {
            self.stats.record_quarantined("compare", "malformed-der");
            return error("compare", "malformed-der");
        };
        let chain_key = ChainKey::exact(certs.iter().map(Arc::as_ref));
        let mut verdicts = Vec::new();
        let mut cached = 0usize;
        // Canonical store order; a profile that has been swapped *out*
        // (not merely replaced) is simply absent from the vector.
        for name in tangled_pki::stores::standard_store_names() {
            let Some(profile) = self.index.profile(name) else {
                continue;
            };
            let (verdict, hit) = self.profile_verdict(&profile, &certs, chain_key);
            cached += usize::from(hit);
            verdicts.push((profile.name, verdict));
        }
        Response::Compare {
            chain_key: chain_key.to_hex(),
            verdicts,
            cached,
        }
    }

    /// Batched validation: one profile lookup, one memo pass per chain.
    /// A bad chain (empty, malformed DER) does not fail the batch — it
    /// yields a per-chain `untrusted` verdict in its slot (recorded in the
    /// quarantine ledger like the single-chain path), so the reply vector
    /// always aligns with the request and the whole batch stays
    /// idempotent.
    fn batch_validate(&self, profile: &str, chains: &[Vec<Vec<u8>>]) -> Response {
        let Some(profile) = self.index.profile(profile) else {
            return error("batch_validate", "unknown-profile");
        };
        let mut verdicts = Vec::with_capacity(chains.len());
        let mut cached = 0usize;
        for chain in chains {
            if chain.is_empty() {
                self.stats
                    .record_quarantined("batch_validate", "empty-chain");
                verdicts.push(ChainVerdict::Untrusted {
                    error: "empty-chain".to_owned(),
                });
                continue;
            }
            let Some(certs) = parse_chain(chain) else {
                self.stats
                    .record_quarantined("batch_validate", "malformed-der");
                verdicts.push(ChainVerdict::Untrusted {
                    error: "malformed-der".to_owned(),
                });
                continue;
            };
            let chain_key = ChainKey::exact(certs.iter().map(Arc::as_ref));
            let (verdict, hit) = self.profile_verdict(&profile, &certs, chain_key);
            cached += usize::from(hit);
            verdicts.push(verdict);
        }
        Response::BatchValidate {
            profile: profile.name,
            verdicts,
            cached,
        }
    }

    /// Memoised single-profile verdict for an already-parsed chain.
    /// Returns the verdict and whether it came from the memo cache.
    fn profile_verdict(
        &self,
        profile: &crate::index::StoreProfile,
        certs: &[Arc<Certificate>],
        chain_key: ChainKey,
    ) -> (ChainVerdict, bool) {
        let key: MemoKey = (profile.name.clone(), profile.epoch, chain_key);
        if let Some(verdict) = self.cache.lock().expect("cache poisoned").get(&key) {
            self.stats.record_cache(true);
            return (verdict, true);
        }
        self.stats.record_cache(false);

        // Preloaded anchors, per-request intermediates.
        let mut verifier = (*profile.anchors).clone();
        for link in &certs[1..] {
            verifier.add_intermediate(Arc::clone(link));
        }
        let opts = ChainOptions::at(tangled_intercept::study_time());
        let verdict = match verifier.verify(&certs[0], opts) {
            Ok(path) => ChainVerdict::Trusted {
                anchor: path.anchor().subject.to_string(),
                chain_len: path.len(),
            },
            Err(e) => ChainVerdict::Untrusted {
                error: chain_error_label(&e).to_owned(),
            },
        };
        self.cache
            .lock()
            .expect("cache poisoned")
            .insert(key, verdict.clone());
        (verdict, false)
    }

    fn classify(&self, cert: &[u8]) -> Response {
        let Ok(cert) = Certificate::parse(cert) else {
            self.stats.record_quarantined("classify", "malformed-der");
            return error("classify", "malformed-der");
        };
        let id = cert.identity();
        let profiles = self.index.member_of(&id);
        let class = if profiles.iter().any(|p| p.starts_with("AOSP")) {
            "aosp"
        } else {
            match self.classes.get(&id) {
                Some(Figure2Class::MozillaAndIos7) => "mozilla+ios7",
                Some(Figure2Class::Ios7) => "ios7",
                Some(Figure2Class::OnlyAndroid) => "only-android",
                Some(Figure2Class::NotRecorded) | None => "not-recorded",
            }
        };
        Response::Classify {
            class: class.to_owned(),
            profiles,
        }
    }

    fn audit(
        &self,
        baseline: &str,
        files: &[tangled_pki::cacerts::CacertsFile],
    ) -> Response {
        let Some(reference) = reference_store(baseline) else {
            return error("audit", "unknown-baseline");
        };
        let (observed, quarantined) =
            from_cacerts_lenient("observed", files, AnchorSource::Unknown);
        for q in &quarantined {
            self.stats.record_quarantined("cacerts", q.error.label());
        }
        let report = audit(
            &reference.cached(),
            &observed,
            tangled_intercept::study_time(),
        );
        Response::Audit {
            risk: report.risk.label().to_owned(),
            added: report.diff.added_count(),
            removed: report.diff.removed_count(),
            findings: report.findings.len(),
            quarantined: quarantined
                .into_iter()
                .map(|q| (q.file, q.error.label().to_owned()))
                .collect(),
        }
    }

    fn probe(
        &self,
        profile: &str,
        target: &str,
        chain: &[Vec<u8>],
        pinned: bool,
    ) -> Response {
        let Some(profile) = self.index.profile(profile) else {
            return error("probe", "unknown-profile");
        };
        let Some(target) = Target::parse(target) else {
            return error("probe", "bad-target");
        };
        let Some(certs) = parse_chain(chain) else {
            self.stats.record_quarantined("probe", "malformed-der");
            return error("probe", "malformed-der");
        };
        let report = probe(
            &target,
            &certs,
            &profile.store,
            &self.expected_issuer,
            pinned,
        );
        Response::Probe {
            verdict: verdict_label(&report.verdict),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn probe_session(
        &self,
        profile: &str,
        defect: &str,
        target: &str,
        chain: &[Vec<u8>],
        pinned: bool,
        extra_anchor: Option<&[u8]>,
        intercepted: bool,
    ) -> Response {
        let Some(profile) = self.index.profile(profile) else {
            return error("probe_session", "unknown-profile");
        };
        let Some(defect) = DefectClass::parse(defect) else {
            return error("probe_session", "unknown-defect");
        };
        let Some(target) = Target::parse(target) else {
            return error("probe_session", "bad-target");
        };
        let Some(certs) = parse_chain(chain) else {
            self.stats
                .record_quarantined("probe_session", "malformed-der");
            return error("probe_session", "malformed-der");
        };
        let extra = match extra_anchor {
            Some(der) => match Certificate::parse(der) {
                Ok(cert) => Some(Arc::new(cert)),
                Err(_) => {
                    self.stats
                        .record_quarantined("probe_session", "malformed-der");
                    return error("probe_session", "malformed-der");
                }
            },
            None => None,
        };
        let outcome = evaluate_session(&SessionInput {
            device_store: &profile.store,
            extra_anchor: extra.as_ref(),
            defect,
            target: &target,
            chain: &certs,
            pinned,
            expected_issuer: &self.expected_issuer,
            intercepted,
        });
        Response::ProbeSession {
            outcome: outcome.label(),
        }
    }

    fn swap(
        &self,
        profile: &str,
        snapshot: &tangled_pki::store::StoreSnapshot,
    ) -> Response {
        let store = match RootStore::from_snapshot(snapshot) {
            Ok(store) => store,
            Err(_) => {
                self.stats.record_quarantined("swap", "bad-snapshot");
                return error("swap", "bad-snapshot");
            }
        };
        let anchors = store.len();

        // Write-ahead order: holding the journal lock serialises swaps,
        // so `current_epoch + 1` is exactly the epoch the install below
        // will produce; the frame is durable before the store publishes.
        // If the journal cannot be written the swap is refused — a swap
        // the journal does not record would be lost by a restart.
        let mut journal = self.journal.lock().expect("journal poisoned");
        if let Some(j) = journal.as_mut() {
            let record = tangled_snap::SwapRecord {
                profile: profile.to_owned(),
                epoch: self.index.current_epoch() + 1,
                store: snapshot.clone(),
            };
            if let Err(e) = j.append(&record) {
                self.stats.record_quarantined("swap", e.label());
                return error("swap", "journal-io");
            }
            self.maybe_compact(j, &record);
        }
        let installed = self.index.install(profile, Arc::new(store));
        drop(journal);
        Response::Swap {
            profile: installed.name,
            epoch: installed.epoch,
            anchors,
        }
    }

    /// Fold the just-journalled swap into the compaction state and, if
    /// the journal crossed the threshold, write a checkpoint and truncate
    /// it. Runs under the journal mutex (the caller holds it), so the
    /// fold, the checkpoint and the truncation are atomic with respect to
    /// concurrent swaps and WAL ordering is preserved: the checkpoint is
    /// durable (tmp + fsync + rename) *before* the journal resets, and a
    /// crash between the two merely leaves a tail that replay skips as
    /// already-covered.
    ///
    /// A failed checkpoint never fails the swap — the frame is already
    /// durable in the journal; the failure is quarantined and compaction
    /// retries at the next swap.
    fn maybe_compact(&self, journal: &mut tangled_snap::Journal, record: &tangled_snap::SwapRecord) {
        let mut compactor = self.compactor.lock().expect("compactor poisoned");
        let Some(c) = compactor.as_mut() else {
            return;
        };
        c.state.absorb(std::slice::from_ref(record));
        if journal.size() < c.threshold {
            return;
        }
        let outcome = tangled_snap::encode_checkpoint(c.base.as_deref(), &c.state)
            .and_then(|summary| {
                write_atomic(&c.path, &summary.bytes)?;
                journal.reset()
            });
        match outcome {
            Ok(()) => {
                c.compactions += 1;
                tangled_obs::registry::add("journal.compactions", 1);
            }
            Err(e) => self.stats.record_quarantined("compact", e.label()),
        }
    }
}

/// Durable file replacement: write to a sibling tmp path, fsync, rename
/// over the destination. Readers see either the old checkpoint or the
/// complete new one, never a torn file.
fn write_atomic(path: &str, bytes: &[u8]) -> Result<(), tangled_snap::SnapError> {
    use std::io::Write;
    let tmp = format!("{path}.tmp");
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_data()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn error(stage: &str, label: &str) -> Response {
    Response::Error {
        stage: stage.to_owned(),
        error: label.to_owned(),
    }
}

fn parse_chain(chain: &[Vec<u8>]) -> Option<Vec<Arc<Certificate>>> {
    chain
        .iter()
        .map(|der| Certificate::parse(der).ok().map(Arc::new))
        .collect()
}

/// Stable label for a chain-verification failure.
pub fn chain_error_label(e: &ChainError) -> &'static str {
    match e {
        ChainError::NoPathToTrustAnchor => "no-path",
        ChainError::CertCheck(_) => "cert-check",
        ChainError::BadSignature => "bad-signature",
        ChainError::PathTooLong => "path-too-long",
        ChainError::Blacklisted => "blacklisted",
    }
}

/// Stable label for a probe verdict.
pub fn verdict_label(v: &Verdict) -> String {
    match v {
        Verdict::Clean => "clean".to_owned(),
        Verdict::UntrustedChain { presented_issuer } => {
            format!("untrusted-chain({presented_issuer})")
        }
        Verdict::UnexpectedAnchor { anchor } => {
            format!("unexpected-anchor({})", anchor.subject)
        }
        Verdict::PinViolation => "pin-violation".to_owned(),
        Verdict::NoChain => "no-chain".to_owned(),
    }
}

/// Resolve a baseline name to a reference store; accepts both the short
/// CLI form (`"4.4"`, `"mozilla"`) and the canonical profile name.
pub fn reference_store(name: &str) -> Option<ReferenceStore> {
    match name {
        "4.1" | "AOSP 4.1" => Some(ReferenceStore::Aosp41),
        "4.2" | "AOSP 4.2" => Some(ReferenceStore::Aosp42),
        "4.3" | "AOSP 4.3" => Some(ReferenceStore::Aosp43),
        "4.4" | "AOSP 4.4" => Some(ReferenceStore::Aosp44),
        "mozilla" | "Mozilla" => Some(ReferenceStore::Mozilla),
        "ios7" | "iOS 7" => Some(ReferenceStore::Ios7),
        _ => None,
    }
}

/// The canonical profile name for an Android version (`"AOSP 4.4"`).
pub fn profile_for_version(v: AndroidVersion) -> &'static str {
    ReferenceStore::for_version(v).name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangled_pki::cacerts::to_cacerts_pem;

    fn origin_chain(host: &str) -> Vec<Vec<u8>> {
        let origin = OriginServers::for_table6();
        let t = Target::parse(host).expect("valid target");
        origin
            .chain(&t)
            .expect("table 6 target")
            .iter()
            .map(|c| c.to_der().to_vec())
            .collect()
    }

    #[test]
    fn validate_hits_cache_on_repeat() {
        let svc = TrustService::new(64);
        let req = Request::Validate {
            profile: "AOSP 4.4".into(),
            chain: origin_chain("gmail.com:443"),
        };
        let first = svc.handle(&req);
        let second = svc.handle(&req);
        match (&first, &second) {
            (
                Response::Validate {
                    verdict: v1,
                    cached: false,
                },
                Response::Validate {
                    verdict: v2,
                    cached: true,
                },
            ) => {
                assert_eq!(v1, v2);
                assert!(matches!(v1, ChainVerdict::Trusted { .. }), "{v1:?}");
            }
            other => panic!("expected miss then hit, got {other:?}"),
        }
        assert_eq!(svc.stats().cache_counts(), (1, 1));
    }

    #[test]
    fn validate_rejects_bad_input_into_quarantine() {
        let svc = TrustService::new(64);
        let empty = svc.handle(&Request::Validate {
            profile: "AOSP 4.4".into(),
            chain: vec![],
        });
        assert_eq!(
            empty,
            Response::Error {
                stage: "validate".into(),
                error: "empty-chain".into()
            }
        );
        let garbage = svc.handle(&Request::Validate {
            profile: "AOSP 4.4".into(),
            chain: vec![vec![0xde, 0xad]],
        });
        assert_eq!(
            garbage,
            Response::Error {
                stage: "validate".into(),
                error: "malformed-der".into()
            }
        );
        let unknown = svc.handle(&Request::Validate {
            profile: "CyanogenMod".into(),
            chain: vec![vec![0x30]],
        });
        assert_eq!(
            unknown,
            Response::Error {
                stage: "validate".into(),
                error: "unknown-profile".into()
            }
        );
        // Two quarantined inputs (the unknown profile is an error, not a
        // quarantine — the input itself was never inspected).
        assert_eq!(svc.stats().quarantined_total(), 2);
    }

    #[test]
    fn classify_separates_aosp_from_extras() {
        let svc = TrustService::new(0);
        let aosp_store = ReferenceStore::Aosp44.cached();
        let aosp_der = aosp_store.enabled_certificates()[0].to_der().to_vec();
        match svc.handle(&Request::Classify { cert: aosp_der }) {
            Response::Classify { class, profiles } => {
                assert_eq!(class, "aosp");
                assert!(profiles.iter().any(|p| p == "AOSP 4.4"), "{profiles:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn audit_quarantines_damaged_files() {
        let svc = TrustService::new(0);
        let mut files = to_cacerts_pem(&ReferenceStore::Aosp44.cached());
        files[0].der = Vec::new(); // destroy one file
        match svc.handle(&Request::Audit {
            baseline: "4.4".into(),
            files,
        }) {
            Response::Audit {
                risk,
                removed,
                quarantined,
                ..
            } => {
                // The destroyed file reads as a removal; risk reflects a
                // user-modified store.
                assert_eq!(removed, 1);
                assert_eq!(quarantined.len(), 1);
                assert_eq!(quarantined[0].1, "empty-file");
                assert!(!risk.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(svc.stats().quarantined_total(), 1);
    }

    #[test]
    fn probe_clean_chain() {
        let svc = TrustService::new(0);
        match svc.handle(&Request::Probe {
            profile: "AOSP 4.4".into(),
            target: "gmail.com:443".into(),
            chain: origin_chain("gmail.com:443"),
            pinned: false,
        }) {
            Response::Probe { verdict } => assert_eq!(verdict, "clean"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn probe_session_attributes_and_rejects_bad_input() {
        let svc = TrustService::new(0);
        // A pass-through session is whitelisted no matter the defect.
        match svc.handle(&Request::ProbeSession {
            profile: "AOSP 4.4".into(),
            defect: "accept-all".into(),
            target: "www.facebook.com:443".into(),
            chain: origin_chain("www.facebook.com:443"),
            pinned: true,
            extra_anchor: None,
            intercepted: false,
        }) {
            Response::ProbeSession { outcome } => assert_eq!(outcome, "whitelisted"),
            other => panic!("unexpected {other:?}"),
        }
        // A correct client blocks a re-signed chain; an accept-all client
        // lets it through and is attributed.
        let origin = OriginServers::for_table6();
        let mut proxy = tangled_intercept::MitmProxy::reality_mine().unwrap();
        let target = Target::parse("www.chase.com:443").unwrap();
        let minted: Vec<Vec<u8>> = proxy
            .serve(&target, &origin)
            .unwrap()
            .iter()
            .map(|c| c.to_der().to_vec())
            .collect();
        for (defect, expected) in [
            ("correct", "blocked(no-path)"),
            ("accept-all", "intercepted(accept-all)"),
        ] {
            match svc.handle(&Request::ProbeSession {
                profile: "AOSP 4.4".into(),
                defect: defect.into(),
                target: "www.chase.com:443".into(),
                chain: minted.clone(),
                pinned: false,
                extra_anchor: None,
                intercepted: true,
            }) {
                Response::ProbeSession { outcome } => assert_eq!(outcome, expected),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Unknown defect labels and malformed anchors are classified.
        match svc.handle(&Request::ProbeSession {
            profile: "AOSP 4.4".into(),
            defect: "nonsense".into(),
            target: "www.chase.com:443".into(),
            chain: minted.clone(),
            pinned: false,
            extra_anchor: None,
            intercepted: true,
        }) {
            Response::Error { stage, error } => {
                assert_eq!(stage, "probe_session");
                assert_eq!(error, "unknown-defect");
            }
            other => panic!("unexpected {other:?}"),
        }
        match svc.handle(&Request::ProbeSession {
            profile: "AOSP 4.4".into(),
            defect: "correct".into(),
            target: "www.chase.com:443".into(),
            chain: minted,
            pinned: false,
            extra_anchor: Some(vec![0xde, 0xad]),
            intercepted: true,
        }) {
            Response::Error { stage, error } => {
                assert_eq!(stage, "probe_session");
                assert_eq!(error, "malformed-der");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compare_returns_the_full_verdict_vector_in_store_order() {
        let svc = TrustService::new(256);
        let chain = origin_chain("gmail.com:443");
        match svc.handle(&Request::Compare {
            chain: chain.clone(),
        }) {
            Response::Compare {
                chain_key,
                verdicts,
                cached,
            } => {
                let order: Vec<&str> =
                    verdicts.iter().map(|(name, _)| name.as_str()).collect();
                assert_eq!(order, tangled_pki::stores::standard_store_names());
                assert_eq!(chain_key.len(), 64, "hex ChainKey");
                assert_eq!(cached, 0, "cold cache");
                // The origin chain anchors in the shared web-trust core,
                // so every standard store trusts it.
                assert!(verdicts
                    .iter()
                    .all(|(_, v)| matches!(v, ChainVerdict::Trusted { .. })));
            }
            other => panic!("unexpected {other:?}"),
        }

        // A compare shares the memo with validate: each per-profile
        // verdict is now cached.
        match svc.handle(&Request::Compare { chain }) {
            Response::Compare { cached, .. } => assert_eq!(cached, 10),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compare_agrees_with_per_profile_validate() {
        let svc = TrustService::new(256);
        let chain = origin_chain("www.chase.com:443");
        let Response::Compare { verdicts, .. } = svc.handle(&Request::Compare {
            chain: chain.clone(),
        }) else {
            panic!("expected compare reply");
        };
        for (profile, expected) in verdicts {
            match svc.handle(&Request::Validate {
                profile: profile.clone(),
                chain: chain.clone(),
            }) {
                Response::Validate { verdict, .. } => {
                    assert_eq!(verdict, expected, "{profile}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn compare_rejects_bad_input_into_quarantine() {
        let svc = TrustService::new(16);
        assert_eq!(
            svc.handle(&Request::Compare { chain: vec![] }),
            Response::Error {
                stage: "compare".into(),
                error: "empty-chain".into()
            }
        );
        assert_eq!(
            svc.handle(&Request::Compare {
                chain: vec![vec![0xde, 0xad]]
            }),
            Response::Error {
                stage: "compare".into(),
                error: "malformed-der".into()
            }
        );
        assert_eq!(svc.stats().quarantined_total(), 2);
    }

    #[test]
    fn batch_validate_agrees_with_single_validate() {
        let svc = TrustService::new(256);
        let chains = vec![
            origin_chain("gmail.com:443"),
            origin_chain("www.chase.com:443"),
            origin_chain("gmail.com:443"), // duplicate: memo hit in-batch
        ];
        let Response::BatchValidate {
            profile,
            verdicts,
            cached,
        } = svc.handle(&Request::BatchValidate {
            profile: "AOSP 4.4".into(),
            chains: chains.clone(),
        })
        else {
            panic!("expected batch reply");
        };
        assert_eq!(profile, "AOSP 4.4");
        assert_eq!(verdicts.len(), 3);
        assert_eq!(cached, 1, "duplicate chain hits the memo within a batch");
        for (chain, expected) in chains.iter().zip(&verdicts) {
            match svc.handle(&Request::Validate {
                profile: "AOSP 4.4".into(),
                chain: chain.clone(),
            }) {
                Response::Validate { verdict, .. } => assert_eq!(&verdict, expected),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn batch_validate_isolates_bad_chains_per_slot() {
        let svc = TrustService::new(64);
        let Response::BatchValidate { verdicts, .. } =
            svc.handle(&Request::BatchValidate {
                profile: "AOSP 4.4".into(),
                chains: vec![
                    vec![],                  // empty
                    vec![vec![0xde, 0xad]],  // garbage DER
                    origin_chain("gmail.com:443"),
                ],
            })
        else {
            panic!("expected batch reply");
        };
        assert_eq!(
            verdicts[0],
            ChainVerdict::Untrusted {
                error: "empty-chain".into()
            }
        );
        assert_eq!(
            verdicts[1],
            ChainVerdict::Untrusted {
                error: "malformed-der".into()
            }
        );
        assert!(matches!(verdicts[2], ChainVerdict::Trusted { .. }));
        assert_eq!(svc.stats().quarantined_total(), 2);

        // Only an unknown profile fails the whole batch.
        assert_eq!(
            svc.handle(&Request::BatchValidate {
                profile: "CyanogenMod".into(),
                chains: vec![origin_chain("gmail.com:443")],
            }),
            Response::Error {
                stage: "batch_validate".into(),
                error: "unknown-profile".into()
            }
        );
    }

    #[test]
    fn swap_invalidates_cached_verdicts_via_epoch() {
        let svc = TrustService::new(64);
        let chain = origin_chain("www.chase.com:443");
        let req = Request::Validate {
            profile: "AOSP 4.4".into(),
            chain: chain.clone(),
        };
        svc.handle(&req); // miss, fills cache
        svc.handle(&req); // hit
        assert_eq!(svc.stats().cache_counts(), (1, 1));

        // Swap the profile to an empty store: the old cache key is dead.
        let empty = RootStore::new("empty");
        let resp = svc.handle(&Request::Swap {
            profile: "AOSP 4.4".into(),
            snapshot: empty.snapshot(),
        });
        match resp {
            Response::Swap { anchors, epoch, .. } => {
                assert_eq!(anchors, 0);
                assert!(epoch > 10, "epoch advances past the 10 preloads");
            }
            other => panic!("unexpected {other:?}"),
        }
        match svc.handle(&req) {
            Response::Validate { verdict, cached } => {
                assert!(!cached, "epoch change forces a fresh verification");
                assert_eq!(
                    verdict,
                    ChainVerdict::Untrusted {
                        error: "no-path".into()
                    }
                );
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stats_request_reports_counters() {
        let svc = TrustService::new(16);
        svc.handle(&Request::Validate {
            profile: "AOSP 4.4".into(),
            chain: origin_chain("gmail.com:443"),
        });
        let resp = svc.handle(&Request::Stats);
        match resp {
            Response::Stats(doc) => {
                assert_eq!(doc["served"]["validate"], 1u64);
                assert_eq!(doc["cache"]["misses"], 1u64);
                assert!(doc["latency_us"]["validate"]["p50_us"].as_u64().is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn swap_past_threshold_compacts_journal_into_checkpoint() {
        let dir = std::env::temp_dir().join(format!(
            "tangled-svc-compact-{}-{}",
            std::process::id(),
            std::time::Instant::now().elapsed().as_nanos() as u64
                ^ std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos() as u64
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let journal_path = dir.join("swaps.journal");
        let ckpt_path = dir.join("swaps.journal.ckpt");

        let svc = TrustService::new(16);
        let (journal, _, _) =
            tangled_snap::Journal::open(journal_path.to_str().unwrap()).unwrap();
        svc.attach_journal(journal);
        svc.configure_compaction(
            ckpt_path.to_string_lossy().into_owned(),
            1, // every journalled swap crosses the threshold
            None,
            tangled_snap::TrustState::default(),
        );

        let store = ReferenceStore::Mozilla.cached();
        for profile in ["canary-a", "canary-b", "canary-a"] {
            let resp = svc.handle(&Request::Swap {
                profile: profile.into(),
                snapshot: store.snapshot(),
            });
            assert!(matches!(resp, Response::Swap { .. }), "{resp:?}");
        }
        assert_eq!(svc.compactions(), 3);

        // The journal is back to bare magic; the checkpoint holds the
        // fold — last swap per profile at its recorded epoch.
        let (_journal, replayed, recovery) =
            tangled_snap::Journal::open(journal_path.to_str().unwrap()).unwrap();
        assert!(!recovery.truncated);
        assert!(replayed.is_empty());
        let snap =
            tangled_snap::Snapshot::open(ckpt_path.to_str().unwrap()).unwrap();
        let state = tangled_snap::read_checkpoint(&snap).unwrap().unwrap();
        assert_eq!(state.epoch, 13);
        assert_eq!(state.records.len(), 2);
        assert_eq!(state.records[0].profile, "canary-b");
        assert_eq!(state.records[0].epoch, 12);
        assert_eq!(state.records[1].profile, "canary-a");
        assert_eq!(state.records[1].epoch, 13);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_document_exposes_index_epochs() {
        let svc = TrustService::new(16);
        let doc = svc.stats_document();
        assert_eq!(doc["index"]["epoch"], 10u64, "10 standard preloads");
        let before = doc["index"]["profiles"]["AOSP 4.4"]
            .as_u64()
            .expect("profile epoch");

        // A swap advances exactly that profile's epoch.
        svc.handle(&Request::Swap {
            profile: "AOSP 4.4".into(),
            snapshot: RootStore::new("empty").snapshot(),
        });
        let doc = svc.stats_document();
        let after = doc["index"]["profiles"]["AOSP 4.4"].as_u64().unwrap();
        assert!(after > before, "epoch advanced: {before} -> {after}");
        assert_eq!(doc["index"]["epoch"], after);
    }
}
