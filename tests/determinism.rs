//! Cross-thread-count determinism: the whole point of the execution layer.
//!
//! The parallel pipeline must be *bit-identical* to the sequential one at
//! any pool width: work is sharded by unit index (never by thread),
//! per-unit sub-RNGs derive from `split_seed(seed, index)`, and results
//! merge in index order. This test builds the full-scale study at 1, 2 and
//! 8 threads and asserts the schema-v2 JSON export, every rendered paper
//! table, and all figure summaries are byte-identical.
//!
//! The observability trace rides under the same contract: each width's run
//! collects the obs event log, which must validate against the trace
//! schema and be byte-identical to every other width's log.
//!
//! The binary snapshot rides under it too: the container encoded at each
//! width must be byte-identical, and a study decoded back from those
//! bytes must reproduce every export and rendering exactly.
//!
//! The cross-ecosystem disparity report is the newest rider: its verdict
//! vectors shard chain-compares over the pool, and the rendered report
//! (fingerprint line included) must be byte-identical at every width.
//!
//! The thread override and the trace sink are process-global, so this
//! binary holds exactly one test.

use tangled_mass::analysis::{export, figures, tables, Study};
use tangled_mass::exec::{set_thread_override, ExecPool};
use tangled_mass::faults::FaultPlan;
use tangled_mass::obs;
use tangled_mass::snap;

fn render_everything(study: &Study) -> (String, String) {
    let doc = export::export_study(study);
    let json = serde_json::to_string(&doc).expect("export serialises");
    let text = [
        tables::dataset_summary(&study.population).render(),
        tables::render_all(study),
        figures::figure1_render(&study.population, 20),
        figures::figure2_render(&study.population, 20),
        figures::figure3_render(&study.validation),
    ]
    .join("\n");
    (json, text)
}

#[test]
fn full_study_is_bit_identical_across_thread_counts() {
    let plan = FaultPlan::new(404).with_rate(0.05);
    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        set_thread_override(Some(threads));
        // Collect the obs trace around the pipeline: the full study plus a
        // small faulted study, so the log covers ecosystem generation,
        // validation, population synthesis, and the fault/quarantine path.
        obs::trace::begin(2014);
        let study = Study::full();
        let _faulted = Study::with_faults(0.05, 0.02, &plan);
        let trace = obs::trace::finish().expect("trace was active");
        let snapshot = snap::encode_study(&study, &ExecPool::current());
        let disparity = tangled_mass::disparity::compute(0.02).render();
        runs.push((threads, render_everything(&study), trace, snapshot, disparity));
    }
    set_thread_override(None);

    let (_, (json_base, text_base), trace_base, snap_base, disparity_base) = &runs[0];
    for (threads, (json, text), trace, snapshot, disparity) in &runs[1..] {
        assert_eq!(
            json, json_base,
            "schema-v2 export differs between 1 and {threads} threads"
        );
        assert_eq!(
            text, text_base,
            "rendered tables/figures differ between 1 and {threads} threads"
        );
        assert_eq!(
            trace, trace_base,
            "obs trace differs between 1 and {threads} threads"
        );
        assert_eq!(
            snapshot, snap_base,
            "snapshot bytes differ between 1 and {threads} threads"
        );
        assert_eq!(
            disparity, disparity_base,
            "disparity report differs between 1 and {threads} threads"
        );
    }

    // A study decoded back from the snapshot reproduces every rendering.
    let parsed = snap::Snapshot::parse(snap_base.clone()).expect("own snapshot parses");
    let loaded = snap::decode_study(&parsed).expect("own snapshot decodes");
    let (json_loaded, text_loaded) = render_everything(&loaded);
    assert_eq!(
        &json_loaded, json_base,
        "snapshot-loaded study exports differently"
    );
    assert_eq!(
        &text_loaded, text_base,
        "snapshot-loaded study renders differently"
    );

    let summary = obs::validate_lines(trace_base).expect("trace validates against schema");
    for stage in [
        "notary.ecosystem",
        "notary.validate",
        "netalyzr.population",
        "study.with_faults",
    ] {
        assert!(
            summary.stages.contains(stage),
            "trace is missing pipeline stage '{stage}': {:?}",
            summary.stages
        );
    }
    assert!(
        summary.quarantined > 0,
        "faulted study should emit quarantine events"
    );
}
