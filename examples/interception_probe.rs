//! Interception probe: replay the §7 Reality Mine discovery.
//!
//! ```text
//! cargo run --release --example interception_probe
//! ```
//!
//! Probes the Table 6 endpoint list through the intercepting proxy three
//! ways: the paper's case (proxy root NOT installed), the rooted-handset
//! case (proxy root silently installed by an app with root permissions,
//! §6), and the pinned-app case.

use std::sync::Arc;
use tangled_mass::analysis::tables::table6;
use tangled_mass::intercept::detect::probe_all;
use tangled_mass::intercept::origin::OriginServers;
use tangled_mass::intercept::proxy::PROXY_HOST;
use tangled_mass::intercept::{MitmProxy, Target, Verdict};
use tangled_mass::pki::stores::ReferenceStore;
use tangled_mass::pki::trust::AnchorSource;

fn main() {
    println!("probing via proxy {PROXY_HOST}…\n");
    println!("{}", table6().render());

    let origin = OriginServers::for_table6();

    // Case 1: the paper's user — proxy root NOT in the device store.
    let mut proxy = MitmProxy::reality_mine().expect("proxy hierarchy");
    let stock = ReferenceStore::Aosp44.cached().cloned_as("Nexus 7 (stock)");
    let reports = probe_all(&mut proxy, &origin, &stock, &[]).expect("probe");
    let visible = reports
        .iter()
        .filter(|r| matches!(r.verdict, Verdict::UntrustedChain { .. }))
        .count();
    println!(
        "stock device: {visible} of {} probes show an untrusted chain — \
         interception is VISIBLE to Netalyzr\n",
        reports.len()
    );

    // Case 2: a root app installed the proxy root (§6).
    let mut proxy = MitmProxy::reality_mine().expect("proxy hierarchy");
    let mut rooted = ReferenceStore::Aosp44.cached().cloned_as("rooted device");
    rooted.add_cert(Arc::clone(proxy.root_cert()), AnchorSource::RootApp);
    let reports = probe_all(&mut proxy, &origin, &rooted, &[]).expect("probe");
    let silent = reports
        .iter()
        .filter(|r| matches!(r.verdict, Verdict::UnexpectedAnchor { .. }))
        .count();
    let clean = reports
        .iter()
        .filter(|r| r.verdict == Verdict::Clean)
        .count();
    println!(
        "rooted device with injected proxy root: {clean} probes look clean to a \
         naive store check; only anchor comparison flags the other {silent} — \
         the supervised-store model is broken (§6)\n"
    );

    // Case 3: pinned apps (the reason the proxy whitelists them).
    let mut proxy = MitmProxy::reality_mine().expect("proxy hierarchy");
    let pinned: Vec<Target> = origin.targets().cloned().collect();
    let reports = probe_all(&mut proxy, &origin, &rooted, &pinned).expect("probe");
    let pin_violations = reports
        .iter()
        .filter(|r| r.verdict == Verdict::PinViolation)
        .count();
    println!(
        "if every app pinned its issuer: {pin_violations} of {} intercepted \
         probes raise a pin violation even with the proxy root installed — \
         which is exactly why the proxy whitelists Facebook, Twitter and \
         Google (Table 6, right column)",
        reports.len()
    );
}
