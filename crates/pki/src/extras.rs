//! The non-AOSP certificate universe of the paper.
//!
//! Figure 2's x-axis names 104 distinct root certificates found on Android
//! handsets beyond the official AOSP store, each tagged with the first 32
//! bits of its subject (the parenthesised hint). This module embeds that
//! catalogue together with:
//!
//! * store membership (in Mozilla / in iOS 7 / in neither) and Notary
//!   visibility, pinned for the certificates the paper discusses explicitly
//!   and quota-filled deterministically for the rest so the aggregate
//!   fractions match §5.1 — "Mozilla and iOS7 simultaneously (6.7 %), iOS7
//!   exclusively (16.2 %), Android-specific (37.1 %), no Notary record
//!   (40.0 %)";
//! * provenance: which Figure 2 rows (manufacturer × version, or operator)
//!   install each certificate, pinned from the §5.1 narrative (AddTrust /
//!   Deutsche Telekom / Sonera / DoD on HTC and Samsung; Certisign and PTT
//!   Post on Verizon Motorola 4.1; Microsoft Secure Server on AT&T
//!   Motorola; FOTA/SUPL on Motorola; GeoTrust UTI on Samsung 4.2/4.3 …);
//! * the rooted-device CA list of Table 5 and the §5.2 "unusual
//!   certificates" of unknown origin.

use crate::vocab::{AndroidVersion, Figure2Row, Manufacturer, Operator};

/// The legend classes of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Figure2Class {
    /// Present in both the Mozilla and iOS 7 root stores.
    MozillaAndIos7,
    /// Present in the iOS 7 root store only.
    Ios7,
    /// Android-specific but recorded by the ICSI Notary.
    OnlyAndroid,
    /// Never recorded by the ICSI Notary.
    NotRecorded,
}

impl Figure2Class {
    /// Legend label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            Figure2Class::MozillaAndIos7 => "Mozilla, and iOS7",
            Figure2Class::Ios7 => "iOS7",
            Figure2Class::OnlyAndroid => "Only Android",
            Figure2Class::NotRecorded => "Not recorded by ICSI Notary",
        }
    }
}

/// One catalogued non-AOSP certificate.
#[derive(Debug, Clone)]
pub struct ExtraCert {
    /// Display name from Figure 2's axis.
    pub name: &'static str,
    /// The paper's 32-bit subject hint (8 hex digits), unique per entry.
    pub hint: &'static str,
    /// Member of the Mozilla root store?
    pub in_mozilla: bool,
    /// Member of the iOS 7 root store?
    pub in_ios7: bool,
    /// Recorded by the ICSI Notary (appears in live traffic)?
    pub notary_seen: bool,
    /// Figure 2 rows that install this certificate, with the within-row
    /// session frequency (the paper's marker size).
    pub installers: Vec<(Figure2Row, f64)>,
}

impl ExtraCert {
    /// The factory key name for this certificate (unique even for
    /// duplicate display names).
    pub fn key_name(&self) -> String {
        format!("{} [{}]", self.name, self.hint)
    }

    /// The Figure 2 legend class.
    pub fn class(&self) -> Figure2Class {
        if self.in_mozilla && self.in_ios7 {
            Figure2Class::MozillaAndIos7
        } else if self.in_ios7 {
            Figure2Class::Ios7
        } else if self.notary_seen {
            Figure2Class::OnlyAndroid
        } else {
            Figure2Class::NotRecorded
        }
    }
}

/// Raw catalogue: (display name, subject hint), in Figure 2 axis order.
pub const FIGURE2_AXIS: [(&str, &str); 104] = [
    ("Sprint Nextel Root Authority", "979eb027"),
    ("ABA.ECOM Root CA", "b1d311e0"),
    ("AddTrust Class 1 CA Root", "9696d421"),
    ("AddTrust Public CA Root", "e91a308f"),
    ("AddTrust Qualified CA Root", "e41e9afe"),
    ("AOL Time Warner Root CA 1", "99de8fc3"),
    ("AOL Time Warner Root CA 2", "b4375a08"),
    ("Baltimore EZ by DST", "bcccb33d"),
    ("Certisign AC1S", "b0c095eb"),
    ("Certisign AC2", "b930cca5"),
    ("Certisign AC3S", "ce644ed6"),
    ("Certisign AC4", "ec83d4cc"),
    ("Certplus Class 1 Primary CA", "c36b29c8"),
    ("Certplus Class 3 Primary CA", "b794306e"),
    ("Certplus Class 3P Primary CA", "ab37ffeb"),
    ("Certplus Class 3TS Primary CA", "bd659a23"),
    ("CFCA Root CA", "c107f487"),
    ("Cingular Preferred Root CA", "db7f0a90"),
    ("Cingular Trusted Root CA", "eaaa66b1"),
    ("COMODO RSA CA", "91e85492"),
    ("COMODO Secure Certificate Services", "c0713382"),
    ("COMODO Trusted Certificate Services", "df716f36"),
    ("Deutsche Telekom Root CA 1", "d0dd9b0c"),
    ("DoD CLASS 3 Root CA", "b530fe64"),
    ("DST (ANX Network) CA", "b4481180"),
    ("DST (NRF) RootCA", "d9ac9b77"),
    ("DST (UPS) RootCA", "ef17ecaf"),
    ("DST Root CA X1", "d2c626b6"),
    ("DST RootCA X2", "dc75f08c"),
    ("DST-Entrust GTI CA", "b61df74b"),
    ("Entrust CA - L1B", "dc21f568"),
    ("Entrust.net CA", "ad4d4ba9"),
    ("Entrust.net Client CA", "9374b4b6"),
    ("Entrust.net Client CA", "c83a995e"),
    ("Entrust.net Secure Server CA", "c7c15f4e"),
    ("eSign Imperito Primary Root CA", "b6d352ea"),
    ("eSign Gatekeeper Root CA", "bdfaf7c6"),
    ("eSign Primary Utility Root CA", "a46daef2"),
    ("EUnet International Root CA", "9e413bd9"),
    ("FESTE Public Notary Certs", "e183f39b"),
    ("FESTE Verified Certs", "ea639f1f"),
    ("First Data Digital CA", "df1c141e"),
    ("Free SSL CA", "ed846000"),
    ("GeoTrust CA for Adobe", "a7e577e0"),
    ("GeoTrust CA for UTI", "b94b8f0a"),
    ("GeoTrust Mobile Device Root - Privileged", "bbec6559"),
    ("GeoTrust Mobile Device Root", "8fb1a7ee"),
    ("GeoTrust True Credentials CA 2", "b2972ca5"),
    ("GlobalSign Root CA", "da0ee699"),
    ("GoDaddy Inc", "c42dd515"),
    ("IPS CA CLASE1", "e05127a7"),
    ("IPS CA CLASE3 CA", "ab17fe0e"),
    ("IPS CA CLASEA1 CA", "bb30d7dc"),
    ("IPS CA CLASEA3", "ee8000f6"),
    ("IPS CA Timestamping CA", "bcb8ee56"),
    ("IPS Chained CAs", "dc569249"),
    ("Microsoft Secure Server Authority", "ea9f5f91"),
    ("Motorola FOTA Root CA", "bae1df7c"),
    ("Motorola SUPL Server Root CA", "caf7a0d5"),
    ("PTT Post Root CA KeyMail", "b07ee23a"),
    ("RSA Data Security CA", "92ce7ac1"),
    ("SecureSign Root CA2 Japan", "967b9223"),
    ("SecureSign Root CA3 Japan", "995e1e80"),
    ("SEVEN Open Channel Primary CA", "cc2479ed"),
    ("SIA Secure Client CA", "d2fcb040"),
    ("SIA Secure Server CA", "dbc10bcc"),
    ("Sonera Class1 CA", "b5891f2b"),
    ("Sony Computer DNAS Root 05", "d98f7b36"),
    ("Sony Ericsson Secure E2E", "ed849d0f"),
    ("Sprint XCA01", "c65c80d1"),
    ("Starfield Services Root CA", "f2cc562a"),
    ("TC TrustCenter Class 1 CA", "b029ebb4"),
    ("Thawte Personal Basic CA", "bcbc9353"),
    ("Thawte Personal Freemail CA", "d469d7d4"),
    ("Thawte Personal Premium CA", "c966d9f8"),
    ("Thawte Premium Server CA", "d236366a"),
    ("Thawte Server CA", "d3a4506e"),
    ("Thawte Timestamping CA", "d62b5878"),
    ("TrustCenter Class 2 CA", "da38e8ed"),
    ("TrustCenter Class 3 CA", "b6b4c135"),
    ("UserTrust Client Auth. and Email", "b23985a4"),
    ("UserTrust RSA Extended Val. Sec. Server CA", "949c238c"),
    ("UserTrust UTN-USERFirst", "ceaa813f"),
    ("VeriSign", "d32e20f0"),
    ("VeriSign Class 1 Public Primary CA", "dd84d4b9"),
    ("VeriSign Class 1 Public Primary CA", "e519bf6d"),
    ("VeriSign Class 2 Public Primary CA", "af0a0dc2"),
    ("VeriSign Class 2 Public Primary CA", "b65a8ba3"),
    ("VeriSign Class 3 Extended Validation SSL SGC CA", "bd5688ba"),
    ("VeriSign Class 3 International Server CA - G3", "99d69c62"),
    ("VeriSign Class 3 Public Primary CA", "c95c599e"),
    ("VeriSign Class 3 Secure Server CA - G3", "b187841f"),
    ("VeriSign Class 3 Secure Server CA", "95c32112"),
    ("VeriSign Commercial Software Publishers CA", "c3d36965"),
    ("VeriSign CPS", "d88280e8"),
    ("VeriSign Individual Software Publishers CA", "c17aca65"),
    ("VeriSign Trust Network", "a7880121"),
    ("VeriSign Trust Network", "aad0babe"),
    ("VeriSign Trust Network", "cc5ed111"),
    ("Visa Information Delivery Root CA", "c91100e1"),
    ("Vodafone (Operator Domain)", "c148b339"),
    ("Vodafone (Widget Operator Domain)", "941c5d68"),
    ("Wells Fargo CA 01", "9d29d5b9"),
    ("Xcert EZ by DST", "ad5418de"),
];

/// Hints of extras in **both** Mozilla and iOS 7 (Figure 2 class
/// "Mozilla, and iOS7" — 7 of 104 ≈ 6.7 %).
const MOZILLA_AND_IOS7: [&str; 7] = [
    "9696d421", // AddTrust Class 1 CA Root
    "c0713382", // COMODO Secure Certificate Services
    "df716f36", // COMODO Trusted Certificate Services
    "da0ee699", // GlobalSign Root CA
    "b5891f2b", // Sonera Class1 CA
    "d236366a", // Thawte Premium Server CA
    "f2cc562a", // Starfield Services Root CA
];

/// Hints of extras in Mozilla but **not** iOS 7 (9; together with the 7
/// above, "non-AOSP roots found in Mozilla's store" totals 16 — Table 4).
const MOZILLA_ONLY: [&str; 9] = [
    "e91a308f", // AddTrust Public CA Root
    "e41e9afe", // AddTrust Qualified CA Root
    "c36b29c8", // Certplus Class 1 Primary CA
    "b794306e", // Certplus Class 3 Primary CA
    "d0dd9b0c", // Deutsche Telekom Root CA 1
    "967b9223", // SecureSign Root CA2 Japan
    "995e1e80", // SecureSign Root CA3 Japan
    "b029ebb4", // TC TrustCenter Class 1 CA
    "d3a4506e", // Thawte Server CA
];

/// Hints of extras in iOS 7 only (17 of 104 ≈ 16.2 %). Includes the DoD
/// CLASS 3 root, which the paper notes ships in iOS 7 but is an Intranet CA
/// to Mozilla.
const IOS7_ONLY: [&str; 17] = [
    "b530fe64", // DoD CLASS 3 Root CA
    "99de8fc3", // AOL Time Warner Root CA 1
    "b4375a08", // AOL Time Warner Root CA 2
    "91e85492", // COMODO RSA CA
    "c42dd515", // GoDaddy Inc
    "bcbc9353", // Thawte Personal Basic CA
    "d469d7d4", // Thawte Personal Freemail CA
    "c966d9f8", // Thawte Personal Premium CA
    "dd84d4b9", // VeriSign Class 1 Public Primary CA
    "af0a0dc2", // VeriSign Class 2 Public Primary CA
    "c95c599e", // VeriSign Class 3 Public Primary CA
    "ceaa813f", // UserTrust UTN-USERFirst
    "c91100e1", // Visa Information Delivery Root CA
    "9d29d5b9", // Wells Fargo CA 01
    "ad5418de", // Xcert EZ by DST
    "bcccb33d", // Baltimore EZ by DST
    "92ce7ac1", // RSA Data Security CA
];

/// Hints pinned as "Not recorded by ICSI Notary" (§5.1: device-management,
/// code-signing and firmware/operator-service certificates never seen in
/// network traffic).
const PINNED_NOT_RECORDED: [&str; 21] = [
    "b94b8f0a", // GeoTrust CA for UTI (Java Verified programme)
    "bae1df7c", // Motorola FOTA Root CA
    "caf7a0d5", // Motorola SUPL Server Root CA
    "c148b339", // Vodafone (Operator Domain)
    "941c5d68", // Vodafone (Widget Operator Domain)
    "979eb027", // Sprint Nextel Root Authority
    "c65c80d1", // Sprint XCA01
    "db7f0a90", // Cingular Preferred Root CA
    "eaaa66b1", // Cingular Trusted Root CA
    "ea9f5f91", // Microsoft Secure Server Authority
    "d98f7b36", // Sony Computer DNAS Root 05
    "ed849d0f", // Sony Ericsson Secure E2E
    "cc2479ed", // SEVEN Open Channel Primary CA
    "bbec6559", // GeoTrust Mobile Device Root - Privileged
    "8fb1a7ee", // GeoTrust Mobile Device Root
    "a7e577e0", // GeoTrust CA for Adobe
    "b2972ca5", // GeoTrust True Credentials CA 2
    "b07ee23a", // PTT Post Root CA KeyMail (Windows store, not Notary)
    "b0c095eb", // Certisign AC1S
    "b930cca5", // Certisign AC2
    "ce644ed6", // Certisign AC3S
];

/// Of the entries with no pinned membership, how many are Notary-visible
/// ("Only Android") — chosen so the four class counts land at 7/17/38/42,
/// i.e. the paper's 6.7 % / 16.2 % / 37.1 % / 40.0 % split over the axis.
const UNPINNED_SEEN_QUOTA: usize = 29;

/// Build the full catalogue with membership, visibility and installers.
pub fn catalogue() -> Vec<ExtraCert> {
    let mut remaining_seen = UNPINNED_SEEN_QUOTA;
    FIGURE2_AXIS
        .iter()
        .map(|&(name, hint)| {
            let in_mozilla =
                MOZILLA_AND_IOS7.contains(&hint) || MOZILLA_ONLY.contains(&hint);
            let in_ios7 = MOZILLA_AND_IOS7.contains(&hint) || IOS7_ONLY.contains(&hint);
            let notary_seen = if in_mozilla || in_ios7 {
                // Store members are public CAs the Notary observes.
                true
            } else if PINNED_NOT_RECORDED.contains(&hint) {
                false
            } else if remaining_seen > 0 {
                remaining_seen -= 1;
                true
            } else {
                false
            };
            ExtraCert {
                name,
                hint,
                in_mozilla,
                in_ios7,
                notary_seen,
                installers: installers_for(name, hint),
            }
        })
        .collect()
}

/// Which Figure 2 rows install a certificate, with session frequency.
///
/// Pinned from the §5.1 narrative where the paper is explicit; the rest are
/// spread deterministically (hash of the hint) over the figure's rows.
fn installers_for(name: &str, hint: &str) -> Vec<(Figure2Row, f64)> {
    use AndroidVersion::*;
    use Manufacturer::*;
    let mfr = Figure2Row::Mfr;
    let op = Figure2Row::Op;

    // "Mobile manufacturers such as HTC and Samsung have alike additional
    // certificates (AddTrust, Deutsche Telekom, Sonera, U.S. DoD)
    // independently of the mobile operator."
    let htc_samsung: Vec<(Figure2Row, f64)> = [
        mfr(Htc, V4_1),
        mfr(Htc, V4_2),
        mfr(Htc, V4_3),
        mfr(Htc, V4_4),
        mfr(Samsung, V4_1),
        mfr(Samsung, V4_2),
        mfr(Samsung, V4_3),
        mfr(Samsung, V4_4),
    ]
    .into_iter()
    .map(|r| (r, 0.85))
    .collect();

    match hint {
        // HTC + Samsung firmware additions.
        "9696d421" | "e91a308f" | "e41e9afe" | "d0dd9b0c" | "b5891f2b" | "b530fe64" => {
            htc_samsung
        }
        // "CertiSign and ptt-post.nl exclusively on 60 to 70 % of Motorola
        // 4.1 devices, all subscribed to Verizon Wireless."
        "b0c095eb" | "b930cca5" | "ce644ed6" | "ec83d4cc" | "b07ee23a" => vec![
            (mfr(Motorola, V4_1), 0.65),
            (op(Operator::VerizonUs), 0.65),
        ],
        // "Potential AT&T-specific inclusions on Motorola handsets, such as
        // a Microsoft Secure Server certificate."
        "ea9f5f91" => vec![(mfr(Motorola, V4_1), 0.45), (op(Operator::AttUs), 0.45)],
        // Motorola's own FOTA / SUPL service roots.
        "bae1df7c" | "caf7a0d5" => vec![(mfr(Motorola, V4_1), 0.9)],
        // "GeoTrust CA for UTI certificate (installed on Samsung 4.2 and
        // 4.3 devices)."
        "b94b8f0a" => vec![(mfr(Samsung, V4_2), 0.7), (mfr(Samsung, V4_3), 0.7)],
        // Operator-branded roots.
        "979eb027" | "c65c80d1" => vec![(op(Operator::SprintUs), 0.8)],
        "db7f0a90" | "eaaa66b1" => vec![(op(Operator::AttUs), 0.6)],
        "c148b339" | "941c5d68" => vec![(op(Operator::VodafoneDe), 0.7)],
        // eSign (Australian CA) on Telstra handsets.
        "bdfaf7c6" | "b6d352ea" | "a46daef2" => vec![(op(Operator::TelstraAu), 0.55)],
        // Sony service roots on Sony firmware.
        "d98f7b36" | "ed849d0f" => vec![(mfr(Sony, V4_3), 0.8)],
        // Everything else: deterministic spread over the figure's rows.
        _ => {
            let rows = Figure2Row::paper_rows();
            let h = fxhash(name, hint);
            let n_rows = 1 + (h % 3) as usize;
            (0..n_rows)
                .map(|k| {
                    let idx = ((h >> (8 * k)) as usize + k * 7) % rows.len();
                    let freq = 0.1 + ((h >> (4 * k)) % 60) as f64 / 100.0;
                    (rows[idx], freq)
                })
                .collect()
        }
    }
}

/// Small deterministic string hash: shared FNV-1a over name, a NUL
/// separator, and hint.
fn fxhash(name: &str, hint: &str) -> u64 {
    let mut h = tangled_crypto::hash::Fnv1a::new();
    h.update(name.as_bytes()).update(&[0]).update(hint.as_bytes());
    h.finish()
}

// ---------------------------------------------------------------------------
// Rooted-device CAs (Table 5) and §5.2 unusual certificates.
// ---------------------------------------------------------------------------

/// Why an unusual certificate is on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnusualOrigin {
    /// Installed by an app running with root permissions (§6).
    RootApp,
    /// Self-signed, user-installed (VPN and similar, §5.2).
    UserVpn,
    /// Operator service certificate (location/widgets/email APIs, §5.2).
    OperatorService,
    /// Government-agency certificate (§5.2).
    Government,
}

/// An unusual certificate with its Table 5 / §5.2 provenance.
#[derive(Debug, Clone)]
pub struct UnusualCert {
    /// Issuing authority name as the paper prints it.
    pub authority: &'static str,
    /// Origin category.
    pub origin: UnusualOrigin,
    /// Number of distinct devices carrying it (Table 5 / §5.2 counts).
    pub devices: usize,
    /// For RootApp entries: the app responsible, when known.
    pub installer_app: Option<&'static str>,
}

/// Table 5: "CAs and user self-signed certificates found more frequently on
/// rooted devices", with device counts.
pub fn rooted_device_cas() -> Vec<UnusualCert> {
    vec![
        UnusualCert {
            authority: "CRAZY HOUSE",
            origin: UnusualOrigin::RootApp,
            devices: 70,
            installer_app: Some("Freedom"),
        },
        UnusualCert {
            authority: "MIND OVERFLOW",
            origin: UnusualOrigin::RootApp,
            devices: 1,
            installer_app: None,
        },
        UnusualCert {
            authority: "USER_X",
            origin: UnusualOrigin::UserVpn,
            devices: 1,
            installer_app: None,
        },
        UnusualCert {
            authority: "CDA/EMAILADDRESS",
            origin: UnusualOrigin::UserVpn,
            devices: 1,
            installer_app: None,
        },
        UnusualCert {
            authority: "CIRRUS, PRIVATE",
            origin: UnusualOrigin::UserVpn,
            devices: 1,
            installer_app: None,
        },
    ]
}

/// §5.2: unusual certificates of unknown origin on non-rooted handsets.
pub fn unusual_certs() -> Vec<UnusualCert> {
    vec![
        UnusualCert {
            authority: "Verizon Wireless Network API CA",
            origin: UnusualOrigin::OperatorService,
            devices: 3,
            installer_app: None,
        },
        UnusualCert {
            authority: "Meditel Root CA",
            origin: UnusualOrigin::OperatorService,
            devices: 4,
            installer_app: None,
        },
        UnusualCert {
            authority: "Telefonica Root CA 1",
            origin: UnusualOrigin::OperatorService,
            devices: 2,
            installer_app: None,
        },
        UnusualCert {
            authority: "Telefonica Root CA 2",
            origin: UnusualOrigin::OperatorService,
            devices: 2,
            installer_app: None,
        },
        UnusualCert {
            authority: "Venezuelan National CA",
            origin: UnusualOrigin::Government,
            devices: 2,
            installer_app: None,
        },
        UnusualCert {
            authority: "CFCA Government CA 2",
            origin: UnusualOrigin::Government,
            devices: 5,
            installer_app: None,
        },
        UnusualCert {
            authority: "CFCA Government CA 3",
            origin: UnusualOrigin::Government,
            devices: 4,
            installer_app: None,
        },
        UnusualCert {
            authority: "CFCA Government CA 4",
            origin: UnusualOrigin::Government,
            devices: 3,
            installer_app: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn axis_has_104_unique_hints() {
        let hints: std::collections::HashSet<_> =
            FIGURE2_AXIS.iter().map(|&(_, h)| h).collect();
        assert_eq!(hints.len(), 104);
    }

    #[test]
    fn class_fractions_match_paper() {
        let cat = catalogue();
        assert_eq!(cat.len(), 104);
        let mut counts: HashMap<Figure2Class, usize> = HashMap::new();
        for c in &cat {
            *counts.entry(c.class()).or_default() += 1;
        }
        // Paper §5.1: 6.7 % / 16.2 % / 37.1 % / 40.0 % of the axis.
        assert_eq!(counts[&Figure2Class::MozillaAndIos7], 7);
        assert_eq!(counts[&Figure2Class::Ios7], 17);
        assert_eq!(counts[&Figure2Class::OnlyAndroid], 38);
        assert_eq!(counts[&Figure2Class::NotRecorded], 42);
    }

    #[test]
    fn mozilla_membership_matches_table4() {
        // Table 4: "Non AOSP root certs found on Mozilla's" = 16.
        let cat = catalogue();
        assert_eq!(cat.iter().filter(|c| c.in_mozilla).count(), 16);
        // And 24 in iOS 7 (7 shared + 17 exclusive).
        assert_eq!(cat.iter().filter(|c| c.in_ios7).count(), 24);
    }

    #[test]
    fn dod_cert_membership() {
        let cat = catalogue();
        let dod = cat.iter().find(|c| c.hint == "b530fe64").unwrap();
        assert_eq!(dod.name, "DoD CLASS 3 Root CA");
        assert!(dod.in_ios7, "paper: iOS7 contains DoD by default");
        assert!(!dod.in_mozilla, "paper: Mozilla treats DoD as Intranet CA");
        assert_eq!(dod.class(), Figure2Class::Ios7);
    }

    #[test]
    fn narrative_installers_pinned() {
        let cat = catalogue();
        let by_hint: HashMap<&str, &ExtraCert> =
            cat.iter().map(|c| (c.hint, c)).collect();

        // Certisign on Verizon Motorola 4.1 at 60-70%.
        let certisign = by_hint["b0c095eb"];
        assert!(certisign.installers.iter().any(|(r, f)| {
            *r == Figure2Row::Mfr(Manufacturer::Motorola, AndroidVersion::V4_1)
                && (0.6..=0.7).contains(f)
        }));
        assert!(certisign
            .installers
            .iter()
            .any(|(r, _)| *r == Figure2Row::Op(Operator::VerizonUs)));

        // DoD on both HTC and Samsung rows, all versions.
        let dod = by_hint["b530fe64"];
        assert_eq!(dod.installers.len(), 8);

        // UTI cert only on Samsung 4.2/4.3.
        let uti = by_hint["b94b8f0a"];
        let rows: Vec<_> = uti.installers.iter().map(|(r, _)| *r).collect();
        assert_eq!(
            rows,
            vec![
                Figure2Row::Mfr(Manufacturer::Samsung, AndroidVersion::V4_2),
                Figure2Row::Mfr(Manufacturer::Samsung, AndroidVersion::V4_3),
            ]
        );
        assert!(!uti.notary_seen, "UTI cert is not used for TLS");
    }

    #[test]
    fn every_extra_has_an_installer_and_sane_freq() {
        for c in catalogue() {
            assert!(!c.installers.is_empty(), "{} has no installers", c.key_name());
            for (_, f) in &c.installers {
                assert!((0.05..=1.0).contains(f), "{} freq {f}", c.key_name());
            }
        }
    }

    #[test]
    fn key_names_unique_despite_duplicate_display_names() {
        let cat = catalogue();
        let keys: std::collections::HashSet<_> =
            cat.iter().map(|c| c.key_name()).collect();
        assert_eq!(keys.len(), cat.len());
        // There ARE duplicate display names (three "VeriSign Trust Network").
        let vtn = cat
            .iter()
            .filter(|c| c.name == "VeriSign Trust Network")
            .count();
        assert_eq!(vtn, 3);
    }

    #[test]
    fn table5_counts() {
        let rooted = rooted_device_cas();
        assert_eq!(rooted.len(), 5);
        let crazy = &rooted[0];
        assert_eq!(crazy.authority, "CRAZY HOUSE");
        assert_eq!(crazy.devices, 70);
        assert_eq!(crazy.installer_app, Some("Freedom"));
        assert!(rooted[1..].iter().all(|c| c.devices == 1));
    }

    #[test]
    fn catalogue_is_deterministic() {
        let a = catalogue();
        let b = catalogue();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.hint, y.hint);
            assert_eq!(x.notary_seen, y.notary_seen);
            assert_eq!(x.installers.len(), y.installers.len());
        }
    }
}
