//! Serving-path benchmarks: the in-process memo cache, then the wire.
//!
//! Two layers are measured:
//!
//! * **Service** — cached vs uncached `validate` through the trustd
//!   service, in process. Two identical services handle the same request
//!   stream; one with the default memo-cache capacity (every repeat is a
//!   ChainKey lookup), one with the cache disabled (every request runs
//!   full path construction and signature verification). The printed
//!   ratio is the measured value of the serving cache.
//! * **Transport** — the same warm request stream over real TCP, under
//!   three disciplines at an equal worker count: the thread-per-connection
//!   core with serial round trips, the event core with serial round
//!   trips, and the event core with depth-8 pipelining. A fourth pair
//!   compares sixteen single `validate` round trips against one
//!   `batch_validate` frame carrying the same sixteen chains. On a warm
//!   cache the service work is a memo hit, so these numbers isolate what
//!   the paper's workload actually pays per query: syscalls and
//!   round-trip scheduling. The measurements are written to
//!   `BENCH_serve.json` at the repository root.
//!
//! ```text
//! cargo bench --bench serve
//! ```

use criterion::{black_box, Criterion};
use serde_json::json;
use std::sync::Arc;
use std::time::Instant;
use tangled_bench::criterion;
use tangled_intercept::origin::OriginServers;
use tangled_intercept::policy::Target;
use tangled_trustd::wire::Request;
use tangled_trustd::{EventServer, TrustClient, TrustServer, TrustService, DEFAULT_CACHE_CAPACITY};

/// Worker count shared by both cores so the comparison is apples to
/// apples: two loop threads vs two connection threads.
const WORKERS: usize = 2;

/// Pipeline depth for the pipelined discipline.
const PIPELINE_DEPTH: usize = 8;

/// Chains per `batch_validate` frame.
const BATCH: usize = 16;

/// Timed rounds per transport discipline (after one warm-up round).
const ROUNDS: usize = 20;

fn main() {
    let mut c: Criterion = criterion();
    let cache = bench_validate(&mut c);
    let transport = bench_transport();
    c.final_summary();
    write_report(cache, transport);
}

/// The request stream: every Table 6 origin chain against every AOSP
/// profile — 84 distinct (profile, chain) keys, replayed repeatedly so
/// the warm cache answers from memory.
fn requests() -> Vec<Request> {
    let origin = OriginServers::for_table6();
    let mut targets: Vec<Target> = origin.targets().cloned().collect();
    targets.sort_by_key(|t| t.to_string());
    let profiles = ["AOSP 4.1", "AOSP 4.2", "AOSP 4.3", "AOSP 4.4"];
    let mut out = Vec::new();
    for profile in profiles {
        for t in &targets {
            out.push(Request::Validate {
                profile: profile.to_owned(),
                chain: origin
                    .chain(t)
                    .expect("table 6 chain")
                    .iter()
                    .map(|c| c.to_der().to_vec())
                    .collect(),
            });
        }
    }
    out
}

fn bench_validate(c: &mut Criterion) -> serde_json::Value {
    let reqs = requests();

    let cached = TrustService::new(DEFAULT_CACHE_CAPACITY);
    let uncached = TrustService::new(0);
    // Warm both services once so setup work (store builds) is excluded
    // and the cached service's memo is populated.
    for req in &reqs {
        cached.handle(req);
        uncached.handle(req);
    }

    c.bench_function("serve/validate_cached", |b| {
        b.iter(|| {
            for req in &reqs {
                black_box(cached.handle(req));
            }
        })
    });
    c.bench_function("serve/validate_uncached", |b| {
        b.iter(|| {
            for req in &reqs {
                black_box(uncached.handle(req));
            }
        })
    });

    let (hits, misses) = cached.stats().cache_counts();
    println!(
        "serve: warm cache answered {hits} of {} validate calls ({misses} misses)",
        hits + misses
    );
    assert!(hits > 0, "warm service must serve from cache");

    // Independent wall-clock pass for the JSON report (the criterion
    // shim prints its own summary but does not expose the mean).
    let time_service = |svc: &TrustService| {
        let start = Instant::now();
        for req in &reqs {
            black_box(svc.handle(req));
        }
        start.elapsed().as_secs_f64()
    };
    let cached_s = time_service(&cached);
    let uncached_s = time_service(&uncached);
    json!({
        "requests": reqs.len(),
        "cached_seconds": cached_s,
        "uncached_seconds": uncached_s,
        "speedup": uncached_s / cached_s.max(1e-12),
    })
}

/// Mean wall seconds per round of `run` over [`ROUNDS`] timed rounds,
/// after one warm-up round.
fn mean_round(mut run: impl FnMut()) -> f64 {
    run();
    let start = Instant::now();
    for _ in 0..ROUNDS {
        run();
    }
    start.elapsed().as_secs_f64() / ROUNDS as f64
}

/// One keep-alive connection driving `reqs` serially, `depth` = 1, or in
/// pipelined bursts of `depth`.
fn drive(client: &mut TrustClient, reqs: &[Request], depth: usize) {
    if depth <= 1 {
        for req in reqs {
            client.call(req).expect("serial reply");
        }
        return;
    }
    for chunk in reqs.chunks(depth) {
        let replies = client.pipeline(chunk).expect("pipelined replies");
        assert_eq!(replies.len(), chunk.len(), "burst answered in full");
    }
}

fn bench_transport() -> serde_json::Value {
    let reqs = requests();
    let service = Arc::new(TrustService::new(DEFAULT_CACHE_CAPACITY));
    // Warm the memo so every timed round trip is a cache hit: the
    // numbers then measure transport, not verification.
    for req in &reqs {
        service.handle(req);
    }

    // Thread core, serial round trips.
    let threads_serial = {
        let server = TrustServer::bind("127.0.0.1:0", Arc::clone(&service), WORKERS)
            .expect("bind thread core");
        let mut client = TrustClient::connect(server.local_addr()).expect("connect");
        mean_round(|| drive(&mut client, &reqs, 1))
    };

    // Event core, serial and pipelined, over one server instance.
    let (event_serial, event_pipelined, batch_singles, batch_one_frame) = {
        let server = EventServer::bind("127.0.0.1:0", Arc::clone(&service), WORKERS)
            .expect("bind event core");
        let mut client = TrustClient::connect(server.local_addr()).expect("connect");
        let serial = mean_round(|| drive(&mut client, &reqs, 1));
        let pipelined = mean_round(|| drive(&mut client, &reqs, PIPELINE_DEPTH));

        // Sixteen singles vs one batch_validate frame with the same
        // sixteen chains, against the same warm profile.
        let singles: Vec<Request> = reqs
            .iter()
            .filter(|r| matches!(r, Request::Validate { profile, .. } if profile == "AOSP 4.4"))
            .take(BATCH)
            .cloned()
            .collect();
        assert_eq!(singles.len(), BATCH, "enough AOSP 4.4 chains");
        let chains: Vec<Vec<Vec<u8>>> = singles
            .iter()
            .map(|r| match r {
                Request::Validate { chain, .. } => chain.clone(),
                _ => unreachable!(),
            })
            .collect();
        let batch_req = Request::BatchValidate {
            profile: "AOSP 4.4".to_owned(),
            chains,
        };
        let singles_s = mean_round(|| drive(&mut client, &singles, 1));
        let batch_s = mean_round(|| {
            client.call(&batch_req).expect("batch reply");
        });
        let _ = client;
        server.shutdown();
        (serial, pipelined, singles_s, batch_s)
    };

    let per_round = reqs.len() as f64;
    let report = json!({
        "workers": WORKERS,
        "requests_per_round": reqs.len(),
        "rounds": ROUNDS,
        "pipeline_depth": PIPELINE_DEPTH,
        "threads_serial": {
            "seconds_per_round": threads_serial,
            "req_per_s": per_round / threads_serial.max(1e-12),
        },
        "event_serial": {
            "seconds_per_round": event_serial,
            "req_per_s": per_round / event_serial.max(1e-12),
        },
        "event_pipelined": {
            "seconds_per_round": event_pipelined,
            "req_per_s": per_round / event_pipelined.max(1e-12),
            "speedup_vs_threads_serial": threads_serial / event_pipelined.max(1e-12),
        },
        "batch": {
            "chains": BATCH,
            "singles_seconds": batch_singles,
            "batch_frame_seconds": batch_one_frame,
            "speedup": batch_singles / batch_one_frame.max(1e-12),
        },
    });
    println!(
        "serve/tcp: threads serial {:.0} req/s · event serial {:.0} req/s · \
         event pipeline-{PIPELINE_DEPTH} {:.0} req/s ({:.2}x vs threads serial)",
        per_round / threads_serial,
        per_round / event_serial,
        per_round / event_pipelined,
        threads_serial / event_pipelined.max(1e-12),
    );
    println!(
        "serve/tcp: {BATCH} single validates {:.3} ms vs one batch_validate {:.3} ms ({:.2}x)",
        batch_singles * 1e3,
        batch_one_frame * 1e3,
        batch_singles / batch_one_frame.max(1e-12),
    );
    report
}

fn write_report(cache: serde_json::Value, transport: serde_json::Value) {
    let doc = json!({
        "benchmark": "serve",
        "service_cache": cache,
        "transport": transport,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let rendered = serde_json::to_string_pretty(&doc).expect("render report");
    std::fs::write(path, format!("{rendered}\n")).expect("write BENCH_serve.json");
    println!("serve: wrote {path}");
}
