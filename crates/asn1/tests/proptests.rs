//! Property tests for the DER codec: structured round trips and
//! never-panic on arbitrary input.

use proptest::prelude::*;
use tangled_asn1::{DerReader, DerWriter, Oid, Tag, Time};

/// A recursive random DER value we can write and read back.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Boolean(bool),
    Integer(Vec<u8>),
    OctetString(Vec<u8>),
    Utf8(String),
    Null,
    Sequence(Vec<Value>),
    Context(u8, Box<Value>),
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Value::Boolean),
        proptest::collection::vec(any::<u8>(), 0..24).prop_map(Value::Integer),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::OctetString),
        "[a-zA-Z0-9 .,:=-]{0,32}".prop_map(Value::Utf8),
        Just(Value::Null),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Sequence),
            (0u8..4, inner).prop_map(|(n, v)| Value::Context(n, Box::new(v))),
        ]
    })
}

fn write(v: &Value, w: &mut DerWriter) {
    match v {
        Value::Boolean(b) => w.boolean(*b),
        Value::Integer(m) => w.integer_bytes(m),
        Value::OctetString(b) => w.octet_string(b),
        Value::Utf8(s) => w.utf8_string(s),
        Value::Null => w.null(),
        Value::Sequence(children) => w.sequence(|w| {
            for c in children {
                write(c, w);
            }
        }),
        Value::Context(n, inner) => w.context(*n, |w| write(inner, w)),
    }
}

fn read(r: &mut DerReader<'_>) -> Result<Value, tangled_asn1::Asn1Error> {
    let tag = r.peek_tag()?;
    Ok(match tag {
        Tag::BOOLEAN => Value::Boolean(r.read_boolean()?),
        Tag::INTEGER => Value::Integer(r.read_integer_bytes()?),
        Tag::OCTET_STRING => Value::OctetString(r.read_octet_string()?.to_vec()),
        Tag::UTF8_STRING => Value::Utf8(r.read_string()?),
        Tag::NULL => {
            r.read_null()?;
            Value::Null
        }
        Tag::SEQUENCE => {
            let mut inner = r.read_sequence()?;
            let mut children = Vec::new();
            while !inner.is_at_end() {
                children.push(read(&mut inner)?);
            }
            Value::Sequence(children)
        }
        t if t.constructed => {
            let mut inner = r.read_context(t.number)?;
            let v = read(&mut inner)?;
            inner.finish()?;
            Value::Context(t.number, Box::new(v))
        }
        _ => unreachable!("writer never produces other tags"),
    })
}

/// Strip leading zero bytes (the INTEGER codec canonicalizes magnitude).
fn canonical(v: &Value) -> Value {
    match v {
        Value::Integer(m) => {
            let start = m.iter().position(|&b| b != 0).unwrap_or(m.len());
            let trimmed = &m[start..];
            Value::Integer(if trimmed.is_empty() {
                vec![0]
            } else {
                trimmed.to_vec()
            })
        }
        Value::Sequence(children) => Value::Sequence(children.iter().map(canonical).collect()),
        Value::Context(n, inner) => Value::Context(*n, Box::new(canonical(inner))),
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn structured_round_trip(v in arb_value()) {
        let mut w = DerWriter::new();
        write(&v, &mut w);
        let bytes = w.into_bytes();
        let mut r = DerReader::new(&bytes);
        let back = read(&mut r).unwrap();
        r.finish().unwrap();
        prop_assert_eq!(back, canonical(&v));
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let mut r = DerReader::new(&bytes);
        // Walk as far as the input allows; every step must return, not panic.
        for _ in 0..16 {
            if r.read_tlv().is_err() {
                break;
            }
        }
        // Typed readers on the same input must also never panic.
        let _ = DerReader::new(&bytes).read_boolean();
        let _ = DerReader::new(&bytes).read_integer_bytes();
        let _ = DerReader::new(&bytes).read_oid();
        let _ = DerReader::new(&bytes).read_string();
        let _ = DerReader::new(&bytes).read_time();
        let _ = DerReader::new(&bytes).read_bit_string();
        let _ = DerReader::new(&bytes).read_sequence();
    }

    #[test]
    fn oid_content_fuzz_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..24)) {
        let _ = Oid::from_der_content(&bytes);
    }

    #[test]
    fn time_strings_fuzz_never_panic(s in proptest::collection::vec(any::<u8>(), 0..20)) {
        let _ = Time::parse_utc_time(&s);
        let _ = Time::parse_generalized_time(&s);
    }

    #[test]
    fn mutated_valid_der_never_panics(
        v in arb_value(),
        mutations in proptest::collection::vec((any::<u64>(), any::<u8>()), 1..5),
    ) {
        let mut w = DerWriter::new();
        write(&v, &mut w);
        let mut bytes = w.into_bytes();
        prop_assume!(!bytes.is_empty());
        for (pos_seed, xor) in mutations {
            let pos = (pos_seed % bytes.len() as u64) as usize;
            bytes[pos] ^= xor;
        }
        // The mutated document may or may not still be valid DER; every
        // path through the reader must return a Result, never panic.
        // (The structured `read` helper is not used here: its tag match
        // is exhaustive only for writer-produced documents.)
        let mut walker = DerReader::new(&bytes);
        for _ in 0..16 {
            if walker.read_tlv().is_err() {
                break;
            }
        }
        let _ = DerReader::new(&bytes).read_boolean();
        let _ = DerReader::new(&bytes).read_integer_bytes();
        let _ = DerReader::new(&bytes).read_oid();
        let _ = DerReader::new(&bytes).read_string();
        let _ = DerReader::new(&bytes).read_time();
        let _ = DerReader::new(&bytes).read_bit_string();
        let _ = DerReader::new(&bytes).read_sequence();
    }

    #[test]
    fn truncation_always_detected(v in arb_value()) {
        let mut w = DerWriter::new();
        write(&v, &mut w);
        let bytes = w.into_bytes();
        prop_assume!(bytes.len() > 1);
        // Every strict prefix must fail to parse as a complete value.
        let cut = bytes.len() - 1;
        let mut r = DerReader::new(&bytes[..cut]);
        let result = read(&mut r).and_then(|val| r.finish().map(|_| val));
        prop_assert!(result.is_err(), "truncated input parsed");
    }
}
