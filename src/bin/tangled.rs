//! `tangled` — command-line interface to the tangled-mass toolkit.
//!
//! ```text
//! tangled tables  [scale]            print Tables 1–6 (default scale 0.5)
//! tangled figures [scale]            print Figures 1–3 data summaries
//! tangled export  [scale]            full result set as JSON on stdout
//! tangled mkstore <version> <dir>    write an AOSP store as a cacerts dir
//!                                    (version: 4.1 | 4.2 | 4.3 | 4.4 |
//!                                     mozilla | ios7)
//! tangled audit   <dir> <version>    audit an on-disk cacerts directory
//!                                    against an AOSP baseline
//! tangled probe                      replay the §7 interception case
//! tangled snap write <file> [scale]  generate a study and persist it as a
//!                                    binary snapshot
//! tangled snap read <file>           load a snapshot and print its tables
//! tangled snap verify <file>         checksum every snapshot section
//! tangled snap delta <base> <target> <epoch> --out <file>
//!                                    encode target as a delta over base:
//!                                    unchanged sections dedup away by
//!                                    checksum, only changed ones ride along
//! tangled snap materialize <chain...> <epoch> [--out <file>]
//!                                    rebuild the full snapshot a base+delta
//!                                    chain describes at a point in time
//! tangled serve   <addr> [--core event|threads] [--snapshot F] [--journal F]
//!                        [--compact-threshold BYTES]
//!                                    run the trustd query server — by default
//!                                    on the readiness-loop event core (a few
//!                                    loop threads multiplexing every
//!                                    connection), or thread-per-connection
//!                                    with --core threads; with --snapshot,
//!                                    warm-start the reference profiles from a
//!                                    study snapshot; with --journal, log
//!                                    every swap write-ahead and replay the
//!                                    log on restart; with
//!                                    --compact-threshold, fold the journal
//!                                    into a checkpoint delta once it grows
//!                                    past BYTES, keeping recovery O(state)
//! tangled loadgen <addr> [--sessions N] [--seed S]
//!                        [--op mixed|compare|batch|mitm] [--pipeline N]
//!                        [--chaos-rate R] [--chaos-seed S] [--swaps N]
//!                                    replay a seeded population against a
//!                                    server and verify the verdicts over one
//!                                    keep-alive connection; with --pipeline,
//!                                    burst N requests per write window; with
//!                                    --op compare, drive the disparity
//!                                    engine's per-chain verdict vectors and
//!                                    print their fingerprint; with --op
//!                                    batch, group the validate stream into
//!                                    batch_validate frames; with
//!                                    --chaos-rate, inject seeded lossy wire
//!                                    faults client-side and recover through
//!                                    the resilient retry client; with
//!                                    --swaps, drive N store swaps of a
//!                                    'canary' profile instead (exercises the
//!                                    journal/compaction write path); with
//!                                    --op mitm, replay the interception
//!                                    scenario plan through probe_session and
//!                                    cross-check the offline report's
//!                                    fingerprint
//! tangled mitm    [scale] [--seed S] adversarial interception scenarios: a
//!                                    seeded defective-client population vs a
//!                                    re-signing proxy, with per-strategy
//!                                    conservation ledger and defect
//!                                    attribution
//! tangled disparity [scale]          cross-ecosystem disparity report:
//!                                    Jaccard matrix, coverage tables,
//!                                    trusted-by-exactly-k histogram and
//!                                    verdict classes over ten root stores
//! tangled disparity --from A --to B  longitudinal drift between two
//!                                    snapshots: per-profile anchor churn,
//!                                    Jaccard similarity, exactly-k migration
//! tangled chaos   [--seed S] [--requests N] [--rate R]
//!                 [--busy-rate B] [--attempts N] [--core threads|event]
//!                 [--out FILE]
//!                                    drive a seeded client population through
//!                                    a wire fault schedule against an
//!                                    in-process server and assert the
//!                                    conservation invariant; the ledger is
//!                                    byte-identical for a fixed seed
//! tangled stats   [scale]            pipeline statistics: per-stage
//!                                    latency p50/p99, memo counters, the
//!                                    trustd serving path, metrics dump
//! tangled trace   <out.jsonl> [scale]
//!                                    run a faulted study under the obs
//!                                    trace, validate the event log against
//!                                    the schema, write it as JSONL
//! tangled bench-study [scale] [--out FILE]
//!                                    time the study stages at 1 thread and
//!                                    the ambient width; write BENCH_study.json
//! tangled bench-snap [scale] [--out FILE]
//!                                    time cold study generation vs snapshot
//!                                    load; write BENCH_snap.json
//! ```
//!
//! The global `--threads N` flag (or `TANGLED_THREADS`) pins the
//! execution-pool width for any subcommand; results are bit-identical at
//! every width — including the `trace` event log, whose bytes are part of
//! the determinism contract. The global `--metrics-dump` flag prints the
//! process-wide metrics registry to stderr after any subcommand.
//!
//! Usage errors (unknown subcommand, malformed arguments) exit with
//! status 2; runtime failures exit with status 1.

use serde_json::json;
use std::collections::HashSet;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use tangled_mass::analysis::{export, figures, survey, tables, Study};
use tangled_mass::asn1::Time;
use tangled_mass::exec::{set_thread_override, thread_count};
use tangled_mass::faults::FaultPlan;
use tangled_mass::netalyzr::{Population, PopulationSpec};
use tangled_mass::notary::ecosystem::EcosystemSpec;
use tangled_mass::notary::{Ecosystem, ValidationIndex};
use tangled_mass::pki::audit::audit;
use tangled_mass::pki::cacerts::{from_cacerts, to_cacerts_pem, CacertsFile};
use tangled_mass::pki::stores::ReferenceStore;
use tangled_mass::obs;
use tangled_mass::pki::trust::AnchorSource;
use tangled_mass::scenario;
use tangled_mass::snap::{
    encode_checkpoint, load_study, write_study, Journal, Snapshot, SwapRecord,
    TrustState,
};
use tangled_mass::trustd::{
    chaos, degraded_index_from_snapshot, index_from_chain, offline_verdicts, replay_journal,
    replay_pipelined, replay_resilient, verdict_fingerprint, ChaosSpec, EventServer,
    LatencyHistogram, ReplayOp, ReplaySpec, Request, Response, ServeCore, StoreIndex, TrustClient,
    TrustServer, TrustService, BATCH_DEPTH, DEFAULT_CACHE_CAPACITY,
};
use tangled_mass::x509::{sig_memo_clear, sig_memo_counters, sig_memo_len};

/// How a command failed: a usage error (exit 2) or a runtime failure
/// (exit 1).
enum CliError {
    Usage(String),
    Failure(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Failure(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError::Failure(msg.to_owned())
    }
}

fn usage() -> String {
    [
        "usage: tangled [--threads N] [--metrics-dump] <tables|figures|export|mkstore|audit|probe|snap|serve|loadgen|disparity|mitm|chaos|stats|trace|bench-study|bench-snap> [...]",
        "  tables  [scale]          print Tables 1-6",
        "  figures [scale]          print Figures 1-3 summaries",
        "  export  [scale]          print the result set as JSON",
        "  mkstore <version> <dir>  write a reference store as cacerts files",
        "  audit   <dir> <version>  audit a cacerts directory",
        "  probe                    replay the interception case",
        "  snap write <file> [scale]",
        "                           generate a study and persist a binary snapshot",
        "  snap read <file>         load a snapshot and print its tables",
        "  snap verify <file>       checksum every snapshot section",
        "  snap delta <base> <target> <epoch> --out <file>",
        "                           write target as a delta over base (changed",
        "                           sections only, epoch-labelled)",
        "  snap materialize <chain...> <epoch> [--out <file>]",
        "                           materialise a base+delta chain at an epoch;",
        "                           with --out, write the full snapshot",
        "  serve   <addr> [--core event|threads] [--snapshot F] [--journal F]",
        "          [--compact-threshold BYTES]",
        "                           run the trustd query server (event core by",
        "                           default, thread-per-connection with --core",
        "                           threads; warm start from a snapshot and a",
        "                           <journal>.ckpt compaction checkpoint when",
        "                           present; write-ahead journal for swaps;",
        "                           --compact-threshold folds the journal into",
        "                           the checkpoint once it crosses BYTES)",
        "  loadgen <addr> [--sessions N] [--seed S] [--op mixed|compare|batch|mitm]",
        "          [--pipeline N] [--chaos-rate R] [--chaos-seed S] [--swaps N]",
        "                           replay a seeded population against a server",
        "                           over one keep-alive connection; --pipeline",
        "                           bursts N requests per write window; --op",
        "                           batch groups validates into batch_validate",
        "                           frames; --op compare serves per-chain",
        "                           verdict vectors and prints their",
        "                           fingerprint; --op mitm replays the",
        "                           interception scenario plan and cross-checks",
        "                           the offline fingerprint; --chaos-rate",
        "                           injects lossy wire faults recovered through",
        "                           the resilient client; --swaps drives N",
        "                           store swaps on the 'canary' profile instead",
        "                           of a replay",
        "  disparity [scale]        cross-ecosystem root-store disparity report",
        "  disparity --from A --to B",
        "                           longitudinal drift between two materialised",
        "                           snapshots: per-profile anchor churn, Jaccard",
        "                           drift, exactly-k migration",
        "  mitm    [scale] [--seed S]",
        "                           adversarial interception scenarios: seeded",
        "                           defective-client population vs a re-signing",
        "                           proxy, per-strategy conservation ledger and",
        "                           defect attribution, seed-reproducible",
        "  chaos   [--seed S] [--requests N] [--rate R] [--busy-rate B]",
        "          [--attempts N] [--core threads|event] [--out FILE]",
        "                           deterministic wire-fault chaos run against an",
        "                           in-process server; asserts conservation",
        "  stats   [scale]          per-stage latency p50/p99, memo counters,",
        "                           trustd serving path, metrics dump",
        "  trace   <out.jsonl> [scale]",
        "                           run a faulted study under the obs trace and",
        "                           write the schema-validated event log",
        "  bench-study [scale] [--out FILE]",
        "                           time study stages vs 1 thread; write BENCH_study.json",
        "  bench-snap [scale] [--out FILE]",
        "                           time cold generation vs snapshot load; write BENCH_snap.json",
        "global: --threads N        pin the execution-pool width (or TANGLED_THREADS)",
        "global: --metrics-dump     print the metrics registry to stderr on exit",
    ]
    .join("\n")
}

/// Strip a global `--threads N` flag (anywhere in the argument list) and
/// apply it as the pool-width override.
fn extract_threads(args: &mut Vec<String>) -> Result<(), CliError> {
    let Some(pos) = args.iter().position(|a| a == "--threads") else {
        return Ok(());
    };
    if pos + 1 >= args.len() {
        return Err(CliError::Usage("--threads needs a value".into()));
    }
    let value = args[pos + 1].clone();
    let threads: usize = value
        .parse()
        .ok()
        .filter(|&n| n > 0)
        .ok_or_else(|| {
            CliError::Usage(format!("invalid --threads '{value}': want an integer > 0"))
        })?;
    args.drain(pos..=pos + 1);
    tangled_mass::exec::set_thread_override(Some(threads));
    Ok(())
}

/// Strip a global `--metrics-dump` flag (anywhere in the argument list).
fn extract_metrics_dump(args: &mut Vec<String>) -> bool {
    let Some(pos) = args.iter().position(|a| a == "--metrics-dump") else {
        return false;
    };
    args.remove(pos);
    true
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_dump = extract_metrics_dump(&mut args);
    let result = extract_threads(&mut args).and_then(|()| match args.first().map(String::as_str) {
        Some("tables") => no_extra(&args, 2, "tables [scale]")
            .and_then(|()| parse_scale(args.get(1)))
            .and_then(cmd_tables),
        Some("figures") => no_extra(&args, 2, "figures [scale]")
            .and_then(|()| parse_scale(args.get(1)))
            .and_then(cmd_figures),
        Some("export") => no_extra(&args, 2, "export [scale]")
            .and_then(|()| parse_scale(args.get(1)))
            .and_then(cmd_export),
        Some("mkstore") => no_extra(&args, 3, "mkstore <version> <dir>")
            .and_then(|()| cmd_mkstore(args.get(1), args.get(2))),
        Some("audit") => no_extra(&args, 3, "audit <dir> <version>")
            .and_then(|()| cmd_audit(args.get(1), args.get(2))),
        Some("probe") => no_extra(&args, 1, "probe").and_then(|()| cmd_probe()),
        Some("snap") => cmd_snap(&args[1..]),
        Some("serve") => cmd_serve(args.get(1), &args[2..]),
        Some("loadgen") => cmd_loadgen(args.get(1), &args[2..]),
        Some("disparity") if args.iter().any(|a| a == "--from" || a == "--to") => {
            cmd_disparity_drift(&args[1..])
        }
        Some("disparity") => no_extra(&args, 2, "disparity [scale]")
            .and_then(|()| parse_scale(args.get(1)))
            .and_then(cmd_disparity),
        Some("mitm") => cmd_mitm(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("stats") => no_extra(&args, 2, "stats [scale]")
            .and_then(|()| parse_scale(args.get(1)))
            .and_then(cmd_stats),
        Some("trace") => no_extra(&args, 3, "trace <out.jsonl> [scale]")
            .and_then(|()| cmd_trace(args.get(1), args.get(2))),
        Some("bench-study") => cmd_bench_study(&args[1..]),
        Some("bench-snap") => cmd_bench_snap(&args[1..]),
        Some(other) => Err(CliError::Usage(format!(
            "unknown subcommand '{other}'\n{}",
            usage()
        ))),
        None => Err(CliError::Usage(usage())),
    });
    if metrics_dump {
        eprint!("{}", obs::registry().dump_text());
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
        Err(CliError::Failure(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Reject stray positional arguments: anything beyond the first `max`
/// (subcommand included) exits 2 with a one-line usage string, matching
/// the serve/loadgen flag convention.
fn no_extra(args: &[String], max: usize, usage_line: &str) -> Result<(), CliError> {
    match args.get(max) {
        Some(extra) => Err(CliError::Usage(format!(
            "unexpected argument '{extra}' — usage: tangled {usage_line}"
        ))),
        None => Ok(()),
    }
}

/// Parse an optional scale argument strictly: absent → 0.5; present but
/// non-numeric, non-finite, or ≤ 0 → usage error.
fn parse_scale(arg: Option<&String>) -> Result<f64, CliError> {
    let Some(text) = arg else {
        return Ok(0.5);
    };
    match text.parse::<f64>() {
        Ok(scale) if scale.is_finite() && scale > 0.0 => Ok(scale),
        _ => Err(CliError::Usage(format!(
            "invalid scale '{text}': want a number > 0"
        ))),
    }
}

fn parse_store(name: &str) -> Result<ReferenceStore, CliError> {
    match name {
        "4.1" => Ok(ReferenceStore::Aosp41),
        "4.2" => Ok(ReferenceStore::Aosp42),
        "4.3" => Ok(ReferenceStore::Aosp43),
        "4.4" => Ok(ReferenceStore::Aosp44),
        "mozilla" => Ok(ReferenceStore::Mozilla),
        "ios7" => Ok(ReferenceStore::Ios7),
        other => Err(CliError::Usage(format!(
            "unknown store '{other}' (want 4.1|4.2|4.3|4.4|mozilla|ios7)"
        ))),
    }
}

fn cmd_tables(scale: f64) -> Result<(), CliError> {
    eprintln!("generating study at scale {scale}…");
    let study = Study::new(scale, scale.max(0.25));
    println!("{}", tables::dataset_summary(&study.population).render());
    print!("{}", tables::render_all(&study));
    Ok(())
}

fn cmd_figures(scale: f64) -> Result<(), CliError> {
    eprintln!("generating study at scale {scale}…");
    let study = Study::new(scale, scale.max(0.25));
    println!("{}", figures::figure1_render(&study.population, 20));
    println!("{}", figures::figure2_render(&study.population, 20));
    println!("{}", figures::figure3_render(&study.validation));
    Ok(())
}

fn cmd_export(scale: f64) -> Result<(), CliError> {
    eprintln!("generating study at scale {scale}…");
    let study = Study::new(scale, scale.max(0.25));
    let doc = export::export_study(&study);
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn cmd_mkstore(version: Option<&String>, dir: Option<&String>) -> Result<(), CliError> {
    let version = version.ok_or_else(|| CliError::Usage("mkstore needs a store name".into()))?;
    let dir = dir.ok_or_else(|| CliError::Usage("mkstore needs an output directory".into()))?;
    let store = parse_store(version)?.cached();
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let files = to_cacerts_pem(&store);
    for f in &files {
        let path = std::path::Path::new(dir).join(&f.name);
        std::fs::write(&path, &f.der).map_err(|e| e.to_string())?;
    }
    eprintln!("wrote {} certificates to {dir}", files.len());
    Ok(())
}

fn cmd_audit(dir: Option<&String>, version: Option<&String>) -> Result<(), CliError> {
    let dir = dir.ok_or_else(|| CliError::Usage("audit needs a cacerts directory".into()))?;
    let version =
        version.ok_or_else(|| CliError::Usage("audit needs a baseline store name".into()))?;
    let baseline = parse_store(version)?.cached();

    let mut files = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| e.to_string())? {
        let entry = entry.map_err(|e| e.to_string())?;
        if !entry.file_type().map_err(|e| e.to_string())?.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let der = std::fs::read(entry.path()).map_err(|e| e.to_string())?;
        files.push(CacertsFile { name, der });
    }
    files.sort_by(|a, b| a.name.cmp(&b.name));
    let observed = from_cacerts(dir, &files, AnchorSource::Unknown)
        .map_err(|e| format!("reading {dir}: {e}"))?;
    let report = audit(
        &baseline,
        &observed,
        Time::date(2014, 2, 1).expect("valid date"),
    );
    print!("{}", report.render());
    Ok(())
}

fn cmd_probe() -> Result<(), CliError> {
    println!("{}", tables::table6().render());
    let pop = Population::generate(&PopulationSpec::scaled(0.1));
    let victim = survey::nexus7_victim(&pop).ok_or("no Nexus 7 in population")?;
    let proxied: HashSet<_> = [victim].into_iter().collect();
    eprintln!(
        "surveying {} sessions with one proxied device…",
        pop.sessions.len()
    );
    let report = survey::survey(&pop, &proxied);
    println!(
        "survey: {} of {} sessions exposed interception ({} device(s))",
        report.flagged.len(),
        report.sessions,
        report.flagged_devices().len()
    );
    for f in report.flagged.iter().take(3) {
        println!(
            "  session {} on device {:?}: {} targets re-signed by {}",
            f.session,
            f.device,
            f.intercepted_targets,
            f.interfering_issuer.as_deref().unwrap_or("?")
        );
    }
    Ok(())
}

fn cmd_snap(args: &[String]) -> Result<(), CliError> {
    let sub = args.first().ok_or_else(|| {
        CliError::Usage("snap needs a mode: write|read|verify|delta|materialize".into())
    })?;
    match sub.as_str() {
        "delta" => return cmd_snap_delta(&args[1..]),
        "materialize" => return cmd_snap_materialize(&args[1..]),
        _ => {}
    }
    let file = args
        .get(1)
        .ok_or_else(|| CliError::Usage(format!("snap {sub} needs a file path")))?;
    match sub.as_str() {
        "write" => {
            no_extra(args, 3, "snap write <file> [scale]")?;
            let scale = parse_scale(args.get(2))?;
            eprintln!("generating study at scale {scale}…");
            let study = Study::new(scale, scale.max(0.25));
            let summary =
                write_study(&study, file).map_err(|e| format!("writing {file}: {e}"))?;
            eprintln!("snapshot: {} bytes -> {file}", summary.bytes);
            for (name, len, checksum) in &summary.sections {
                eprintln!("  {name:<12} {len:>10} bytes  fnv1a {checksum:016x}");
            }
            Ok(())
        }
        "read" => {
            no_extra(args, 2, "snap read <file>")?;
            eprintln!("loading study from {file}…");
            let study = load_study(file).map_err(|e| format!("loading {file}: {e}"))?;
            println!("{}", tables::dataset_summary(&study.population).render());
            print!("{}", tables::render_all(&study));
            Ok(())
        }
        "verify" => {
            no_extra(args, 2, "snap verify <file>")?;
            let snap = Snapshot::open(file).map_err(|e| format!("opening {file}: {e}"))?;
            let report = snap.verify_report();
            let mut damaged = 0usize;
            for row in &report {
                match &row.result {
                    Ok(()) => println!(
                        "  {:<12} {:>10} bytes  fnv1a {:016x}  ok",
                        row.name, row.len, row.actual
                    ),
                    Err(e) => {
                        damaged += 1;
                        println!(
                            "  {:<12} {:>10} bytes  fnv1a {:016x} (recorded {:016x})  {e}",
                            row.name, row.len, row.actual, row.expected
                        );
                    }
                }
            }
            println!(
                "verify: {} bytes, {} section(s), {damaged} damaged",
                snap.size(),
                report.len()
            );
            if damaged > 0 {
                return Err(format!("{damaged} damaged section(s) in {file}").into());
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown snap mode '{other}' (want write|read|verify|delta|materialize)"
        ))),
    }
}

/// Split a snap sub-mode's arguments into positionals and an `--out`
/// destination.
fn split_out_flag(args: &[String]) -> Result<(Vec<&String>, Option<String>), CliError> {
    let mut positional = Vec::new();
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError::Usage("--out needs a value".into()))?,
                );
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown snap flag '{flag}'")));
            }
            _ => positional.push(arg),
        }
    }
    Ok((positional, out))
}

/// Parse a trailing epoch argument.
fn parse_epoch(text: &str) -> Result<u64, CliError> {
    text.parse().map_err(|_| {
        CliError::Usage(format!("invalid epoch '{text}': want an unsigned integer"))
    })
}

/// `tangled snap delta <base> <target> <epoch> --out <file>` — encode
/// `target`'s sections as a delta over `base`: sections whose checksum
/// matches the base dedup away, the rest ride in the delta.
fn cmd_snap_delta(args: &[String]) -> Result<(), CliError> {
    let (pos, out) = split_out_flag(args)?;
    let [base_path, target_path, epoch] = pos.as_slice() else {
        return Err(CliError::Usage(
            "usage: tangled snap delta <base> <target> <epoch> --out <file>".into(),
        ));
    };
    let epoch = parse_epoch(epoch)?;
    let out = out.ok_or_else(|| CliError::Usage("snap delta needs --out <file>".into()))?;
    let base =
        std::fs::read(base_path.as_str()).map_err(|e| format!("reading {base_path}: {e}"))?;
    let target = Snapshot::open(target_path).map_err(|e| format!("opening {target_path}: {e}"))?;
    let mut sections = Vec::new();
    for entry in target.entries() {
        let id = tangled_mass::snap::SectionId::from_tag(entry.tag)
            .ok_or_else(|| format!("{target_path}: unknown section tag {}", entry.tag))?;
        let body = target
            .entry_body(entry)
            .map_err(|e| format!("reading {target_path}: {e}"))?;
        sections.push((id, body.to_vec()));
    }
    let delta = tangled_mass::snap::encode_delta(&sections, &base, epoch)
        .map_err(|e| format!("encoding delta: {e}"))?;
    std::fs::write(&out, &delta.bytes).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!(
        "delta: {} bytes -> {out} (epoch {epoch}, base {:016x})",
        delta.bytes.len(),
        tangled_mass::snap::file_id(&base)
    );
    eprintln!("  changed: {}", delta.changed.join(", "));
    eprintln!(
        "  reused:  {}",
        if delta.reused.is_empty() {
            "(none)".to_owned()
        } else {
            delta.reused.join(", ")
        }
    );
    Ok(())
}

/// `tangled snap materialize <chain...> <epoch> [--out <file>]` —
/// materialise a base+delta chain at a point in time; verify every link
/// and, with `--out`, write the reassembled full snapshot.
fn cmd_snap_materialize(args: &[String]) -> Result<(), CliError> {
    let (pos, out) = split_out_flag(args)?;
    if pos.len() < 2 {
        return Err(CliError::Usage(
            "usage: tangled snap materialize <chain...> <epoch> [--out <file>]".into(),
        ));
    }
    let epoch = parse_epoch(pos[pos.len() - 1])?;
    let chain: Vec<String> = pos[..pos.len() - 1].iter().map(|s| s.to_string()).collect();
    let m = tangled_mass::snap::materialize_chain(&chain, epoch)
        .map_err(|e| format!("materialising chain: {e}"))?;
    eprintln!(
        "materialize: {} of {} chain file(s) applied; epoch {}; {} bytes",
        m.applied,
        chain.len(),
        m.epoch,
        m.bytes.len()
    );
    let snap =
        Snapshot::parse(m.bytes.clone()).map_err(|e| format!("parsing materialised bytes: {e}"))?;
    for entry in snap.entries() {
        let name = tangled_mass::snap::SectionId::from_tag(entry.tag)
            .map(tangled_mass::snap::SectionId::name)
            .unwrap_or("unknown");
        eprintln!(
            "  {name:<12} {:>10} bytes  fnv1a {:016x}",
            entry.len, entry.checksum
        );
    }
    if let Some(out) = out {
        std::fs::write(&out, &m.bytes).map_err(|e| format!("writing {out}: {e}"))?;
        println!("materialize: wrote {out} at epoch {}", m.epoch);
    }
    Ok(())
}

fn cmd_serve(addr: Option<&String>, rest: &[String]) -> Result<(), CliError> {
    let addr = addr.ok_or_else(|| {
        CliError::Usage("serve needs a listen address (e.g. 127.0.0.1:7433)".into())
    })?;
    let mut snapshot: Option<String> = None;
    let mut journal_path: Option<String> = None;
    let mut compact_threshold: Option<u64> = None;
    // The event core is the default: a handful of readiness loops
    // multiplex every connection. `--core threads` falls back to the
    // thread-per-connection frame loop.
    let mut core = ServeCore::Event;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = |v: Option<&String>| {
            v.cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--snapshot" => snapshot = Some(value(it.next())?),
            "--journal" => journal_path = Some(value(it.next())?),
            "--compact-threshold" => {
                let v = value(it.next())?;
                let bytes: u64 = v.parse().map_err(|_| {
                    CliError::Usage(format!("invalid --compact-threshold '{v}': want bytes > 0"))
                })?;
                if bytes == 0 {
                    return Err(CliError::Usage(
                        "--compact-threshold must be > 0 bytes".into(),
                    ));
                }
                compact_threshold = Some(bytes);
            }
            "--core" => core = value(it.next())?.parse().map_err(CliError::Usage)?,
            other => match other.strip_prefix("--core=") {
                Some(name) => core = name.parse().map_err(CliError::Usage)?,
                None => return Err(CliError::Usage(format!("unknown serve flag '{other}'"))),
            },
        }
    }
    if compact_threshold.is_some() && journal_path.is_none() {
        return Err(CliError::Usage(
            "--compact-threshold needs --journal (compaction folds the swap journal)".into(),
        ));
    }

    // A prior compaction leaves a checkpoint beside the journal; when one
    // exists, warm start from the base+checkpoint chain so the folded
    // swap history is already applied before the journal tail replays.
    let ckpt_path = journal_path.as_ref().map(|p| format!("{p}.ckpt"));
    let has_ckpt = ckpt_path
        .as_ref()
        .is_some_and(|p| std::path::Path::new(p).exists());
    let mut chain_state: Option<TrustState> = None;
    let mut chain_index: Option<StoreIndex> = None;
    if has_ckpt {
        let ckpt = ckpt_path.clone().expect("checked above");
        let mut chain: Vec<String> = Vec::new();
        if let Some(path) = &snapshot {
            chain.push(path.clone());
        }
        chain.push(ckpt.clone());
        eprintln!("warm-starting from checkpoint chain {}…", chain.join(" + "));
        let start = index_from_chain(&chain).map_err(|e| format!("materialising {ckpt}: {e}"))?;
        if let Some(state) = &start.state {
            eprintln!(
                "checkpoint: folded {} profile(s); epoch {}",
                state.records.len(),
                state.epoch
            );
        }
        chain_state = start.state;
        chain_index = Some(start.index);
    }

    let service = match (chain_index, &snapshot) {
        (Some(index), _) => Arc::new(TrustService::with_index(index, DEFAULT_CACHE_CAPACITY)),
        (None, Some(path)) => {
            eprintln!("warm-starting store profiles from {path}…");
            // Degraded-mode warm start: individually corrupt sections are
            // quarantined and the server runs without them; only
            // container-level damage refuses to start.
            let start = degraded_index_from_snapshot(path)
                .map_err(|e| format!("loading {path}: {e}"))?;
            if start.fallback {
                eprintln!(
                    "warm start degraded: store section unusable; serving \
                     cold-generated reference profiles"
                );
            }
            for (unit, label) in &start.quarantined {
                eprintln!("warm start quarantined '{unit}': {label}");
            }
            let service = Arc::new(TrustService::with_index(
                start.index,
                DEFAULT_CACHE_CAPACITY,
            ));
            for (unit, label) in &start.quarantined {
                service.stats().record_degraded(unit, label);
            }
            service
        }
        (None, None) => {
            eprintln!("loading reference store profiles…");
            Arc::new(TrustService::new(DEFAULT_CACHE_CAPACITY))
        }
    };
    if let Some(path) = &journal_path {
        let (journal, records, recovery) =
            Journal::open(path).map_err(|e| format!("opening {path}: {e}"))?;
        if recovery.truncated {
            eprintln!(
                "journal: truncated a torn final record ({} bytes dropped)",
                recovery.dropped_bytes
            );
        }
        let summary = replay_journal(service.index(), &records)
            .map_err(|e| format!("replaying {path}: {e}"))?;
        if summary.skipped > 0 {
            eprintln!(
                "journal: skipped {} swap(s) the checkpoint already covers",
                summary.skipped
            );
        }
        eprintln!(
            "journal: replayed {} swap(s); epoch {}",
            summary.replayed,
            service.index().current_epoch()
        );
        service.attach_journal(journal);
        if let Some(threshold) = compact_threshold {
            // Compaction folds over everything the index already holds:
            // the checkpoint's state (if any) plus the replayed tail. The
            // base snapshot rides along so the checkpoint stays a
            // self-describing delta over it.
            let base = match &snapshot {
                Some(path) => {
                    Some(std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?)
                }
                None => None,
            };
            let mut state = chain_state.unwrap_or_default();
            state.absorb(&records);
            let ckpt = ckpt_path.expect("journal path implies checkpoint path");
            eprintln!("compaction: armed at {threshold} journal byte(s); checkpoint {ckpt}");
            service.configure_compaction(ckpt, threshold, base, state);
        }
    }
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    // The flushed "trustd listening on" line is what the loadgen smoke
    // test greps for; both cores print the same prefix. The bound server
    // must stay in scope for the lifetime of the process.
    let _server: Box<dyn std::any::Any> = match core {
        ServeCore::Event => {
            let server = EventServer::bind(addr.as_str(), service, workers)
                .map_err(|e| format!("binding {addr}: {e}"))?;
            println!(
                "trustd listening on {} ({workers} workers, event core)",
                server.local_addr()
            );
            Box::new(server)
        }
        ServeCore::Threads => {
            let server = TrustServer::bind(addr.as_str(), service, workers)
                .map_err(|e| format!("binding {addr}: {e}"))?;
            println!(
                "trustd listening on {} ({workers} workers, thread core)",
                server.local_addr()
            );
            Box::new(server)
        }
    };
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn cmd_loadgen(addr: Option<&String>, rest: &[String]) -> Result<(), CliError> {
    let addr = addr
        .ok_or_else(|| CliError::Usage("loadgen needs a server address".into()))?
        .clone();
    let mut sessions = 100usize;
    let mut seed = 2014u64;
    let mut op = ReplayOp::Mixed;
    let mut pipeline = 1usize;
    let mut chaos_rate = 0.0f64;
    let mut chaos_seed = 7u64;
    let mut swaps: Option<usize> = None;
    let mut mitm = false;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = |v: Option<&String>| {
            v.cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--sessions" => {
                let v = value(it.next())?;
                sessions = v.parse().map_err(|_| {
                    CliError::Usage(format!("invalid --sessions '{v}': want an integer > 0"))
                })?;
                if sessions == 0 {
                    return Err(CliError::Usage("--sessions must be > 0".into()));
                }
            }
            "--seed" => {
                let v = value(it.next())?;
                seed = v.parse().map_err(|_| {
                    CliError::Usage(format!("invalid --seed '{v}': want an unsigned integer"))
                })?;
            }
            "--op" => {
                let v = value(it.next())?;
                match v.as_str() {
                    "mixed" => op = ReplayOp::Mixed,
                    "compare" => op = ReplayOp::Compare,
                    "batch" => op = ReplayOp::Batch,
                    "mitm" => mitm = true,
                    other => {
                        return Err(CliError::Usage(format!(
                            "invalid --op '{other}': want mixed|compare|batch|mitm"
                        )))
                    }
                };
            }
            "--pipeline" => {
                let v = value(it.next())?;
                pipeline = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| {
                        CliError::Usage(format!(
                            "invalid --pipeline '{v}': want an integer > 0"
                        ))
                    })?;
            }
            "--chaos-rate" => {
                let v = value(it.next())?;
                chaos_rate = match v.parse::<f64>() {
                    Ok(r) if (0.0..=1.0).contains(&r) => r,
                    _ => {
                        return Err(CliError::Usage(format!(
                            "invalid --chaos-rate '{v}': want a number in [0, 1]"
                        )))
                    }
                };
            }
            "--chaos-seed" => {
                let v = value(it.next())?;
                chaos_seed = v.parse().map_err(|_| {
                    CliError::Usage(format!(
                        "invalid --chaos-seed '{v}': want an unsigned integer"
                    ))
                })?;
            }
            "--swaps" => {
                let v = value(it.next())?;
                swaps = Some(v.parse().ok().filter(|&n: &usize| n > 0).ok_or_else(
                    || CliError::Usage(format!("invalid --swaps '{v}': want an integer > 0")),
                )?);
            }
            other => {
                return Err(CliError::Usage(format!("unknown loadgen flag '{other}'")));
            }
        }
    }

    if let Some(swaps) = swaps {
        return drive_swaps(&addr, swaps);
    }

    if mitm {
        return loadgen_mitm(&addr, sessions, seed, pipeline, chaos_rate, chaos_seed);
    }

    let spec = ReplaySpec::new(seed, sessions).with_op(op);
    eprintln!("computing offline verdicts for seed {seed}, {sessions} sessions…");
    let expected = offline_verdicts(&spec);

    if chaos_rate > 0.0 {
        if pipeline > 1 {
            return Err(CliError::Usage(
                "--pipeline applies to the clean replay path; the chaos path \
                 retries one request at a time"
                    .into(),
            ));
        }
        eprintln!(
            "replaying {} requests against {addr} under wire chaos (rate {chaos_rate}, \
             seed {chaos_seed})…",
            expected.len()
        );
        let outcome = replay_resilient(addr.as_str(), &spec, chaos_seed, chaos_rate)
            .map_err(CliError::Failure)?;
        let throughput = outcome.requests as f64 / outcome.elapsed.as_secs_f64().max(1e-9);
        println!(
            "loadgen: {} requests in {:.3}s ({throughput:.0} req/s)",
            outcome.requests,
            outcome.elapsed.as_secs_f64()
        );
        println!(
            "loadgen: chaos: {} fault(s) injected, {} retries, {} busy, {} connection(s)",
            outcome.faults, outcome.retries, outcome.busy, outcome.reconnects
        );
        println!("loadgen: protocol errors: {}", outcome.wire_errors);
        if outcome.wire_errors > 0 {
            return Err(format!("{} protocol errors", outcome.wire_errors).into());
        }
        if outcome.verdicts != expected {
            let diverged = outcome
                .verdicts
                .iter()
                .zip(&expected)
                .position(|(got, want)| got != want);
            return Err(format!(
                "served verdicts diverge from the offline study (first at request {:?})",
                diverged
            )
            .into());
        }
        println!("loadgen: verdicts match the offline study exactly");
        if op == ReplayOp::Compare {
            println!("loadgen: compare replies match the offline verdict vectors exactly");
            println!(
                "loadgen: verdict-vector fingerprint: {:016x}",
                verdict_fingerprint(&outcome.verdicts)
            );
        }
        return Ok(());
    }

    eprintln!(
        "replaying {} requests against {addr} (pipeline depth {pipeline})…",
        expected.len()
    );
    let outcome =
        replay_pipelined(addr.as_str(), &spec, pipeline).map_err(|e| format!("replay: {e}"))?;

    let throughput = outcome.requests as f64 / outcome.elapsed.as_secs_f64().max(1e-9);
    let hits = outcome.stats["cache"]["hits"].as_u64().unwrap_or(0);
    let misses = outcome.stats["cache"]["misses"].as_u64().unwrap_or(0);
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    println!(
        "loadgen: {} requests in {:.3}s ({throughput:.0} req/s)",
        outcome.requests,
        outcome.elapsed.as_secs_f64()
    );
    // Keep-alive reuse: a clean run answers every request over a single
    // connection, however many frames it carries.
    println!(
        "loadgen: {} connection(s) for {} requests (keep-alive)",
        outcome.connects, outcome.requests
    );
    println!(
        "loadgen: cache hit rate {:.1}% ({hits} hits / {misses} misses)",
        hit_rate * 100.0
    );
    println!("loadgen: protocol errors: {}", outcome.wire_errors);

    if outcome.wire_errors > 0 {
        return Err(format!("{} protocol errors", outcome.wire_errors).into());
    }
    if outcome.verdicts != expected {
        let diverged = outcome
            .verdicts
            .iter()
            .zip(&expected)
            .position(|(got, want)| got != want);
        return Err(format!(
            "served verdicts diverge from the offline study (first at request {:?})",
            diverged
        )
        .into());
    }
    println!("loadgen: verdicts match the offline study exactly");
    if op == ReplayOp::Compare {
        println!("loadgen: compare replies match the offline verdict vectors exactly");
        println!(
            "loadgen: verdict-vector fingerprint: {:016x}",
            verdict_fingerprint(&outcome.verdicts)
        );
    }
    if op == ReplayOp::Batch {
        println!(
            "loadgen: batch replies match the offline study exactly (depth {BATCH_DEPTH})"
        );
        println!(
            "loadgen: verdict-vector fingerprint: {:016x}",
            verdict_fingerprint(&outcome.verdicts)
        );
    }
    Ok(())
}

/// `loadgen --op mitm`: replay the interception scenario plan through
/// the served `probe_session` op and cross-check the offline report.
fn loadgen_mitm(
    addr: &str,
    sessions: usize,
    seed: u64,
    pipeline: usize,
    chaos_rate: f64,
    chaos_seed: u64,
) -> Result<(), CliError> {
    let spec = scenario::ScenarioSpec::for_sessions(sessions, seed);
    eprintln!(
        "computing offline scenario report for seed {seed}: {} clients x {} strategies \
         ({} sessions)…",
        spec.clients,
        spec.strategies.len(),
        spec.sessions()
    );
    let expected =
        scenario::compute(&spec).map_err(|e| CliError::Failure(format!("scenario: {e}")))?;

    let outcome = if chaos_rate > 0.0 {
        if pipeline > 1 {
            return Err(CliError::Usage(
                "--pipeline applies to the clean replay path; the chaos path \
                 retries one request at a time"
                    .into(),
            ));
        }
        eprintln!(
            "replaying {} probe_session requests against {addr} under wire chaos \
             (rate {chaos_rate}, seed {chaos_seed})…",
            spec.sessions()
        );
        scenario::replay_mitm_chaos(addr, &spec, chaos_seed, chaos_rate)
    } else {
        eprintln!(
            "replaying {} probe_session requests against {addr} (pipeline depth {pipeline})…",
            spec.sessions()
        );
        scenario::replay_mitm(addr, &spec, pipeline)
    }
    .map_err(CliError::Failure)?;

    let throughput = outcome.requests as f64 / outcome.elapsed.as_secs_f64().max(1e-9);
    println!(
        "loadgen: {} requests in {:.3}s ({throughput:.0} req/s)",
        outcome.requests,
        outcome.elapsed.as_secs_f64()
    );
    println!(
        "loadgen: {} connection(s) for {} requests (keep-alive)",
        outcome.connects, outcome.requests
    );
    if outcome.faults > 0 {
        println!("loadgen: chaos: {} fault(s) injected", outcome.faults);
    }
    println!("loadgen: protocol errors: {}", outcome.wire_errors);
    if outcome.wire_errors > 0 {
        return Err(format!("{} protocol errors", outcome.wire_errors).into());
    }

    let report = &outcome.report;
    let (total, blocked, intercepted, whitelisted) = report.totals();
    let status = if report.conserved() { "ok" } else { "VIOLATED" };
    println!(
        "loadgen: conservation: {status} (sessions {total} = blocked {blocked} + \
         intercepted {intercepted} + whitelisted {whitelisted})"
    );
    if !report.conserved() {
        return Err("served scenario ledger violated conservation".into());
    }
    if report.fingerprint != expected.fingerprint {
        return Err(format!(
            "served scenario diverges from the offline report \
             (served {:016x}, offline {:016x})",
            report.fingerprint, expected.fingerprint
        )
        .into());
    }
    println!("loadgen: probe_session replies match the offline scenario exactly");
    println!(
        "loadgen: verdict-vector fingerprint: {:016x}",
        report.fingerprint
    );
    Ok(())
}

/// `loadgen --swaps N`: drive N swap requests against a fresh `canary`
/// profile, rotating its single anchor so every swap changes the store.
/// Touching only a profile of our own keeps the standard profiles —
/// and any `--op compare` fingerprints against them — unchanged.
fn drive_swaps(addr: &str, swaps: usize) -> Result<(), CliError> {
    use tangled_mass::pki::RootStore;

    let anchors = ReferenceStore::Aosp41.cached().enabled_certificates();
    if anchors.is_empty() {
        return Err("reference store has no enabled anchors".into());
    }
    let mut client =
        TrustClient::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    eprintln!("driving {swaps} swap(s) of profile 'canary' against {addr}…");
    let mut epoch = 0u64;
    for i in 0..swaps {
        let mut store = RootStore::new("canary");
        store.add_cert(anchors[i % anchors.len()].clone(), AnchorSource::Unknown);
        let request = Request::Swap {
            profile: "canary".to_owned(),
            snapshot: store.snapshot(),
        };
        match client.call(&request).map_err(|e| format!("swap {i}: {e}"))? {
            Response::Swap { epoch: e, .. } => epoch = e,
            other => return Err(format!("swap {i}: unexpected reply {other:?}").into()),
        }
    }
    println!("loadgen: {swaps} swap(s) applied to profile 'canary'; final epoch {epoch}");
    Ok(())
}

/// `tangled disparity [scale]` — compute and print the cross-ecosystem
/// disparity report. The fingerprint line matches what `loadgen --op
/// compare` prints when its session count maps to the same corpus scale
/// (via [`tangled_mass::trustd::scale_for_sessions`]), tying the offline
/// report to served replies with one grep.
fn cmd_disparity(scale: f64) -> Result<(), CliError> {
    let threads = thread_count();
    eprintln!("computing disparity report at scale {scale} ({threads} threads)…");
    let report = tangled_mass::disparity::compute(scale);
    print!("{}", report.render());
    Ok(())
}

fn cmd_mitm(rest: &[String]) -> Result<(), CliError> {
    let mut seed = 2014u64;
    let mut scale_arg: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--seed needs a value".into()))?;
                seed = v.parse().map_err(|_| {
                    CliError::Usage(format!("invalid --seed '{v}': want an unsigned integer"))
                })?;
            }
            flag if flag.starts_with("--") => {
                return Err(CliError::Usage(format!("unknown mitm flag '{flag}'")));
            }
            _ => {
                if scale_arg.replace(arg.clone()).is_some() {
                    return Err(CliError::Usage("mitm [scale] [--seed S]".into()));
                }
            }
        }
    }
    let scale = parse_scale(scale_arg.as_ref())?;
    let spec = scenario::ScenarioSpec::for_scale(scale, seed);
    eprintln!(
        "running interception scenarios at scale {scale}: {} clients x {} strategies, \
         seed {seed} ({} threads)…",
        spec.clients,
        spec.strategies.len(),
        thread_count()
    );
    let report =
        scenario::compute(&spec).map_err(|e| CliError::Failure(format!("scenario: {e}")))?;
    print!("{}", report.render());
    if !report.conserved() {
        return Err("scenario ledger violated conservation".into());
    }
    Ok(())
}

/// `tangled disparity --from a.snap --to b.snap` — longitudinal drift
/// between two point-in-time store states: per-profile anchor churn,
/// Jaccard similarity, and the exactly-k membership migration.
fn cmd_disparity_drift(args: &[String]) -> Result<(), CliError> {
    let mut from: Option<String> = None;
    let mut to: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = |v: Option<&String>| {
            v.cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--from" => from = Some(value(it.next())?),
            "--to" => to = Some(value(it.next())?),
            other => {
                return Err(CliError::Usage(format!(
                    "unknown disparity drift flag '{other}'"
                )))
            }
        }
    }
    let from = from.ok_or_else(|| CliError::Usage("drift needs --from <snap>".into()))?;
    let to = to.ok_or_else(|| CliError::Usage("drift needs --to <snap>".into()))?;
    let from_snap = Snapshot::open(&from).map_err(|e| format!("opening {from}: {e}"))?;
    let to_snap = Snapshot::open(&to).map_err(|e| format!("opening {to}: {e}"))?;
    eprintln!("computing drift {from} -> {to}…");
    let report = tangled_mass::disparity::compute_drift(&from_snap, &to_snap)
        .map_err(|e| format!("computing drift: {e}"))?;
    print!("{}", report.render());
    Ok(())
}

fn cmd_chaos(rest: &[String]) -> Result<(), CliError> {
    let mut spec = ChaosSpec::default();
    let mut out: Option<String> = None;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = |v: Option<&String>| {
            v.cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--seed" => {
                let v = value(it.next())?;
                spec.seed = v.parse().map_err(|_| {
                    CliError::Usage(format!("invalid --seed '{v}': want an unsigned integer"))
                })?;
            }
            "--requests" => {
                let v = value(it.next())?;
                spec.requests = v
                    .parse()
                    .ok()
                    .filter(|&n: &usize| n > 0)
                    .ok_or_else(|| {
                        CliError::Usage(format!(
                            "invalid --requests '{v}': want an integer > 0"
                        ))
                    })?;
            }
            "--rate" => {
                let v = value(it.next())?;
                spec.rate = match v.parse::<f64>() {
                    Ok(r) if (0.0..=1.0).contains(&r) => r,
                    _ => {
                        return Err(CliError::Usage(format!(
                            "invalid --rate '{v}': want a number in [0, 1]"
                        )))
                    }
                };
            }
            "--busy-rate" => {
                let v = value(it.next())?;
                spec.busy_rate = match v.parse::<f64>() {
                    Ok(r) if (0.0..=1.0).contains(&r) => r,
                    _ => {
                        return Err(CliError::Usage(format!(
                            "invalid --busy-rate '{v}': want a number in [0, 1]"
                        )))
                    }
                };
            }
            "--attempts" => {
                let v = value(it.next())?;
                spec.max_attempts = v
                    .parse()
                    .ok()
                    .filter(|&n: &u32| n > 0)
                    .ok_or_else(|| {
                        CliError::Usage(format!(
                            "invalid --attempts '{v}': want an integer > 0"
                        ))
                    })?;
            }
            "--out" => out = Some(value(it.next())?),
            "--core" => spec.core = value(it.next())?.parse().map_err(CliError::Usage)?,
            other => match other.strip_prefix("--core=") {
                Some(name) => spec.core = name.parse().map_err(CliError::Usage)?,
                None => return Err(CliError::Usage(format!("unknown chaos flag '{other}'"))),
            },
        }
    }

    eprintln!(
        "chaos: seed {} · {} requests · fault rate {} · busy rate {} · {} attempts · {} core",
        spec.seed,
        spec.requests,
        spec.rate,
        spec.busy_rate,
        spec.max_attempts,
        spec.core.label()
    );
    let report = chaos::run(&spec);
    match &out {
        Some(path) => {
            std::fs::write(path, &report.ledger).map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("chaos: ledger -> {path}");
        }
        None => print!("{}", report.ledger),
    }
    println!(
        "chaos: issued={} answered={} shed={} failed={} violations={} retries={}",
        report.issued, report.answered, report.shed, report.failed, report.violations,
        report.retries
    );
    for (label, n) in &report.fault_counts {
        println!("chaos: fault {label} x{n}");
    }
    if !report.conserved() {
        return Err(format!(
            "conservation invariant violated: {} request(s) unaccounted",
            report.violations
        )
        .into());
    }
    println!("chaos: conservation invariant holds");
    Ok(())
}

fn cmd_stats(scale: f64) -> Result<(), CliError> {
    let threads = thread_count();
    let eco_scale = scale.max(0.25);

    // Run every pipeline stage once: a faulted study exercises ecosystem
    // generation, population synthesis, fault injection/quarantine, and —
    // via assembly — the validation index, each recording into the obs
    // registry as it goes.
    eprintln!("generating faulted study at scale {scale} ({threads} threads)…");
    sig_memo_clear();
    let plan = FaultPlan::new(404).with_rate(0.05);
    let study = Study::with_faults(scale, eco_scale, &plan);

    // Re-build the index with per-shard latencies for the p50/p99 lines.
    let (idx, latencies) = ValidationIndex::build_with_latencies(&study.ecosystem);
    let hist = LatencyHistogram::default();
    for &us in &latencies {
        hist.record(us);
    }

    // Exercise the trustd serving path in-process: one classify over an
    // AOSP anchor, then the stats document — enough to populate the
    // per-kind request counters without a socket.
    let service = TrustService::new(DEFAULT_CACHE_CAPACITY);
    let anchor_der = ReferenceStore::Aosp44
        .cached()
        .iter()
        .next()
        .map(|a| a.cert.to_der().to_vec())
        .ok_or("AOSP 4.4 reference store is empty")?;
    let _ = service.handle(&Request::Classify {
        cert: anchor_der.clone(),
    });
    let _ = service.handle(&Request::Stats);

    // Exercise the event core end-to-end over a real socket: a pipelined
    // burst plus one batched validate populates the trustd.event.* gauges
    // (registered connections, wakeups, pipeline-depth observations,
    // partial-write continuations) that the metrics dump below prints.
    let event_service = Arc::new(TrustService::new(DEFAULT_CACHE_CAPACITY));
    let profile = event_service
        .index()
        .profile_names()
        .first()
        .cloned()
        .ok_or("trustd index has no profiles")?;
    let server = EventServer::bind("127.0.0.1:0", Arc::clone(&event_service), 1)
        .map_err(|e| format!("binding event core: {e}"))?;
    let mut burst: Vec<Request> = (0..4).map(|_| Request::Stats).collect();
    burst.push(Request::BatchValidate {
        profile,
        chains: vec![vec![anchor_der.clone()], vec![anchor_der]],
    });
    let replies = {
        let mut client = TrustClient::connect(server.local_addr())
            .map_err(|e| format!("connecting event core: {e}"))?;
        client
            .pipeline(&burst)
            .map_err(|e| format!("event-core pipeline: {e}"))?
    };
    server.shutdown();
    if replies.len() != burst.len() {
        return Err(format!(
            "event core answered {} of {} pipelined requests",
            replies.len(),
            burst.len()
        )
        .into());
    }

    // The signature memo keeps its own counters; mirror them into the
    // registry as gauges so the dump is one coherent document.
    let (hits, misses) = sig_memo_counters();
    obs::registry::gauge_set("x509.sigmemo.hits", hits as i64);
    obs::registry::gauge_set("x509.sigmemo.misses", misses as i64);
    obs::registry::gauge_set("x509.sigmemo.entries", sig_memo_len() as i64);

    println!("stats: threads {threads}");
    println!(
        "stats: ecosystem {} certificates ({} non-expired)",
        idx.total(),
        idx.total_non_expired()
    );
    println!(
        "stats: validation-index build: {} shards, shard latency p50 {} us / p99 {} us",
        latencies.len(),
        hist.percentile(50),
        hist.percentile(99)
    );
    println!(
        "stats: validated {} of {} non-expired certificates",
        idx.validated_total(),
        idx.total_non_expired()
    );
    println!(
        "stats: faults: {} injected, {} quarantined",
        study.health.injected_total(),
        study.health.quarantined_total()
    );
    println!(
        "stats: trustd: served {} requests in-process, fingerprint '{}'",
        service.stats().served_total(),
        service.stats().counters_fingerprint()
    );
    println!(
        "stats: trustd event core: {} pipelined replies over one connection ({} served)",
        replies.len(),
        event_service.stats().served_total()
    );
    println!(
        "stats: signature memo: {hits} hits / {misses} misses ({} entries)",
        sig_memo_len()
    );
    println!("stats: metrics registry:");
    print!("{}", obs::registry().dump_text());
    Ok(())
}

fn cmd_trace(out: Option<&String>, scale: Option<&String>) -> Result<(), CliError> {
    let out = out.ok_or_else(|| CliError::Usage("trace needs an output path".into()))?;
    let scale = parse_scale(scale)?;
    let eco_scale = scale.max(0.25);
    let threads = thread_count();

    // One faulted study covers every traced stage: ecosystem generation,
    // population synthesis, fault injection (with quarantine events), and
    // the validation index built during assembly.
    eprintln!("tracing faulted study at scale {scale} ({threads} threads)…");
    obs::trace::begin(2014);
    sig_memo_clear();
    let plan = FaultPlan::new(404).with_rate(0.05);
    let study = Study::with_faults(scale, eco_scale, &plan);
    let lines = obs::trace::finish().ok_or("trace was not collected")?;

    let summary = obs::validate_lines(&lines)
        .map_err(|e| format!("emitted trace violates the schema: {e}"))?;
    let mut body = lines.join("\n");
    body.push('\n');
    std::fs::write(out, body).map_err(|e| format!("writing {out}: {e}"))?;

    let stages: Vec<&str> = summary.stages.iter().map(String::as_str).collect();
    println!(
        "trace: {} events, {} spans, {} quarantined unit(s) -> {out}",
        summary.events, summary.spans, summary.quarantined
    );
    println!("trace: stages: {}", stages.join(", "));
    println!(
        "trace: study: {} certs, {} sessions, {} fault(s) injected",
        study.ecosystem.len(),
        study.population.sessions.len(),
        study.health.injected_total()
    );
    Ok(())
}

/// Run `f` and return (result, wall seconds).
fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

fn cmd_bench_study(rest: &[String]) -> Result<(), CliError> {
    let mut scale = 0.25f64;
    let mut out = String::from("BENCH_study.json");
    let mut it = rest.iter();
    let mut scale_seen = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = it
                    .next()
                    .cloned()
                    .ok_or_else(|| CliError::Usage("--out needs a value".into()))?;
            }
            text if !text.starts_with("--") && !scale_seen => {
                scale = match text.parse::<f64>() {
                    Ok(s) if s.is_finite() && s > 0.0 => s,
                    _ => {
                        return Err(CliError::Usage(format!(
                            "invalid scale '{text}': want a number > 0"
                        )))
                    }
                };
                scale_seen = true;
            }
            other => {
                return Err(CliError::Usage(format!("unknown bench-study flag '{other}'")));
            }
        }
    }

    let threads = thread_count();
    let eco_scale = scale.max(0.25);
    let eco_spec = EcosystemSpec::scaled(eco_scale);
    let pop_spec = PopulationSpec::scaled(scale);
    eprintln!("bench-study: scale {scale}, comparing 1 thread vs {threads}…");

    // Warm-up primes the process-wide CA factory (one-time RSA key
    // minting) so the stage timings measure pipeline work, not keygen.
    let _ = timed(|| Ecosystem::generate(&eco_spec));
    let _ = timed(|| Population::generate(&pop_spec));

    let mut stages = Vec::new();
    let mut record = |name: &str, t1: f64, tn: f64| {
        let speedup = t1 / tn.max(1e-9);
        eprintln!("  {name}: {t1:.3}s @1 -> {tn:.3}s @{threads} ({speedup:.2}x)");
        stages.push(json!({
            "stage": name,
            "seconds_1thread": t1,
            "seconds": tn,
            "speedup": speedup,
        }));
    };

    // Each stage runs once pinned to 1 thread and once at the ambient
    // width; the signature memo is cleared before every timed run so both
    // measure the same cold-verification work.
    set_thread_override(Some(1));
    sig_memo_clear();
    let (_, e1) = timed(|| Ecosystem::generate(&eco_spec));
    set_thread_override(Some(threads));
    sig_memo_clear();
    let (eco, en) = timed(|| Ecosystem::generate(&eco_spec));
    record("ecosystem_generate", e1, en);

    set_thread_override(Some(1));
    sig_memo_clear();
    let (_, v1) = timed(|| ValidationIndex::build(&eco));
    set_thread_override(Some(threads));
    sig_memo_clear();
    let (_, vn) = timed(|| ValidationIndex::build(&eco));
    record("validation_build", v1, vn);

    set_thread_override(Some(1));
    let (_, p1) = timed(|| Population::generate(&pop_spec));
    set_thread_override(Some(threads));
    let (_, pn) = timed(|| Population::generate(&pop_spec));
    record("population_generate", p1, pn);

    let plan = FaultPlan::new(404).with_rate(0.05);
    set_thread_override(Some(1));
    sig_memo_clear();
    let (_, f1) = timed(|| Study::with_faults(scale, eco_scale, &plan));
    set_thread_override(Some(threads));
    sig_memo_clear();
    let (_, fn_) = timed(|| Study::with_faults(scale, eco_scale, &plan));
    record("with_faults", f1, fn_);

    set_thread_override(Some(1));
    let (_, t1) = timed(StoreIndex::with_reference_profiles);
    set_thread_override(Some(threads));
    let (_, tn) = timed(StoreIndex::with_reference_profiles);
    record("trustd_preload", t1, tn);
    set_thread_override(None);

    let doc = json!({
        "benchmark": "study-pipeline",
        "scale": scale,
        "ecosystem_scale": eco_scale,
        "threads": threads,
        "stages": stages,
    });
    let rendered = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
    std::fs::write(&out, format!("{rendered}\n")).map_err(|e| e.to_string())?;
    println!("bench-study: wrote {out}");
    Ok(())
}

fn cmd_bench_snap(rest: &[String]) -> Result<(), CliError> {
    let mut scale = 0.25f64;
    let mut out = String::from("BENCH_snap.json");
    let mut it = rest.iter();
    let mut scale_seen = false;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => {
                out = it
                    .next()
                    .cloned()
                    .ok_or_else(|| CliError::Usage("--out needs a value".into()))?;
            }
            text if !text.starts_with("--") && !scale_seen => {
                scale = match text.parse::<f64>() {
                    Ok(s) if s.is_finite() && s > 0.0 => s,
                    _ => {
                        return Err(CliError::Usage(format!(
                            "invalid scale '{text}': want a number > 0"
                        )))
                    }
                };
                scale_seen = true;
            }
            other => {
                return Err(CliError::Usage(format!("unknown bench-snap flag '{other}'")));
            }
        }
    }

    let threads = thread_count();
    let eco_scale = scale.max(0.25);
    eprintln!("bench-snap: scale {scale} ({threads} threads)…");

    // The cold path is everything a fresh process pays: key minting,
    // certificate synthesis, validation. The warm path parses the same
    // corpus back out of one file.
    sig_memo_clear();
    let (study, cold_s) = timed(|| Study::new(scale, eco_scale));
    let path = std::env::temp_dir().join(format!("tangled-bench-snap-{}.bin", std::process::id()));
    let path = path.to_string_lossy().into_owned();
    let (summary, write_s) = timed(|| write_study(&study, &path));
    let summary = summary.map_err(|e| format!("writing {path}: {e}"))?;
    let (loaded, load_s) = timed(|| load_study(&path));
    let loaded = loaded.map_err(|e| format!("loading {path}: {e}"))?;
    let _ = std::fs::remove_file(&path);

    // The loaded study must be indistinguishable in every rendered table.
    if tables::render_all(&loaded) != tables::render_all(&study) {
        return Err("loaded study diverges from the generated one".into());
    }

    let speedup = cold_s / load_s.max(1e-9);
    eprintln!("  cold generate: {cold_s:.3}s");
    eprintln!("  snapshot write: {write_s:.3}s ({} bytes)", summary.bytes);
    eprintln!("  snapshot load: {load_s:.3}s ({speedup:.2}x vs cold)");

    let recovery = bench_journal_recovery()?;

    let doc = json!({
        "benchmark": "snapshot",
        "scale": scale,
        "ecosystem_scale": eco_scale,
        "threads": threads,
        "snapshot_bytes": summary.bytes,
        "cold_generate_seconds": cold_s,
        "snapshot_write_seconds": write_s,
        "snapshot_load_seconds": load_s,
        "speedup": speedup,
        "journal_recovery": recovery,
    });
    let rendered = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
    std::fs::write(&out, format!("{rendered}\n")).map_err(|e| e.to_string())?;
    println!("bench-snap: wrote {out}");
    Ok(())
}

/// Recovery-cost comparison: replaying an unbounded swap journal is
/// O(total swaps ever); recovering from a compacted checkpoint + empty
/// journal is O(current state). Both paths must land on the same epoch.
fn bench_journal_recovery() -> Result<Vec<serde_json::Value>, CliError> {
    use tangled_mass::pki::RootStore;

    let anchors = ReferenceStore::Aosp41.cached().enabled_certificates();
    let dir = std::env::temp_dir().join(format!("tangled-bench-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let mut rows = Vec::new();
    for history in [64usize, 256] {
        // A churn history: swaps rotate over four profiles so the fold
        // keeps 4 records however long the journal grows.
        let records: Vec<SwapRecord> = (0..history)
            .map(|i| {
                let mut store = RootStore::new("canary");
                store.add_cert(anchors[i % anchors.len()].clone(), AnchorSource::Unknown);
                SwapRecord {
                    profile: format!("canary-{}", i % 4),
                    epoch: 11 + i as u64,
                    store: store.snapshot(),
                }
            })
            .collect();

        let journal_path = dir.join(format!("swaps-{history}.journal"));
        let journal_path = journal_path.to_string_lossy().into_owned();
        let (mut journal, _, _) =
            Journal::open(&journal_path).map_err(|e| format!("opening {journal_path}: {e}"))?;
        for record in &records {
            journal.append(record).map_err(|e| e.to_string())?;
        }
        let journal_bytes = journal.size();
        drop(journal);

        // Unbounded: replay the full history.
        let (unbounded, unbounded_s) = timed(|| -> Result<u64, String> {
            let (_, replayed, _) =
                Journal::open(&journal_path).map_err(|e| e.to_string())?;
            let index = StoreIndex::with_standard_profiles();
            replay_journal(&index, &replayed).map_err(|e| e.to_string())?;
            Ok(index.current_epoch())
        });
        let unbounded_epoch = unbounded?;

        // Compacted: fold the history into a checkpoint, truncate the
        // journal, then recover from checkpoint + empty journal.
        let state = TrustState::fold(&records);
        let ckpt = encode_checkpoint(None, &state).map_err(|e| e.to_string())?;
        let ckpt_path = dir.join(format!("swaps-{history}.journal.ckpt"));
        let ckpt_path = ckpt_path.to_string_lossy().into_owned();
        std::fs::write(&ckpt_path, &ckpt.bytes).map_err(|e| e.to_string())?;
        let (mut journal, _, _) =
            Journal::open(&journal_path).map_err(|e| e.to_string())?;
        journal.reset().map_err(|e| e.to_string())?;
        let ckpt_bytes = journal.size() + ckpt.bytes.len() as u64;
        drop(journal);

        let (compacted, compacted_s) = timed(|| -> Result<u64, String> {
            let start = index_from_chain(std::slice::from_ref(&ckpt_path))
                .map_err(|e| e.to_string())?;
            let (_, tail, _) = Journal::open(&journal_path).map_err(|e| e.to_string())?;
            replay_journal(&start.index, &tail).map_err(|e| e.to_string())?;
            Ok(start.index.current_epoch())
        });
        let compacted_epoch = compacted?;
        if compacted_epoch != unbounded_epoch {
            return Err(format!(
                "compacted recovery lands on epoch {compacted_epoch}, unbounded on \
                 {unbounded_epoch}"
            )
            .into());
        }

        let recovery_speedup = unbounded_s / compacted_s.max(1e-9);
        eprintln!(
            "  journal recovery ({history} swaps): unbounded {unbounded_s:.4}s \
             ({journal_bytes} bytes), compacted {compacted_s:.4}s ({ckpt_bytes} bytes, \
             {recovery_speedup:.2}x)"
        );
        rows.push(json!({
            "history_swaps": history,
            "journal_bytes": journal_bytes,
            "checkpoint_bytes": ckpt_bytes,
            "unbounded_replay_seconds": unbounded_s,
            "compacted_recovery_seconds": compacted_s,
            "speedup": recovery_speedup,
            "epoch": unbounded_epoch,
        }));
    }
    let _ = std::fs::remove_dir_all(&dir);
    Ok(rows)
}
