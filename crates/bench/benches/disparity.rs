//! Disparity-engine benchmark: the pairwise Jaccard matrix over the ten
//! standard stores vs the full cross-ecosystem report (whose verdict
//! vectors shard chain-compares over the exec pool).
//!
//! ```text
//! cargo bench --bench disparity
//! ```

use criterion::{black_box, Criterion};
use tangled_bench::criterion;
use tangled_disparity::{compute, jaccard_matrix, standard_stores};

fn main() {
    let mut c: Criterion = criterion();
    bench_disparity(&mut c);
    c.final_summary();
}

fn bench_disparity(c: &mut Criterion) {
    let stores = standard_stores();
    c.bench_function("disparity/jaccard_matrix", |b| {
        b.iter(|| black_box(jaccard_matrix(&stores)))
    });
    c.bench_function("disparity/report_scale_0.02", |b| {
        b.iter(|| black_box(compute(0.02)))
    });

    let report = compute(0.02);
    println!(
        "disparity: {} chains, fingerprint {:016x}",
        report.verdicts.len(),
        report.fingerprint
    );
}
