//! The `trustd` wire protocol: length-prefixed JSON frames.
//!
//! Every message is a 4-byte big-endian length followed by that many bytes
//! of UTF-8 JSON. Frames are bounded by [`MAX_FRAME`]; anything larger is
//! rejected before allocation. Certificate bytes travel as standard Base64
//! (the same alphabet as PEM bodies), store snapshots reuse the
//! [`StoreSnapshot`] JSON schema of `tangled-pki`.
//!
//! Malformed input is a *classified* failure, not a dropped connection:
//! every decode error carries a stable [`WireError::label`] that the
//! server records in its quarantine ledger — the PR-1 graceful-degradation
//! vocabulary extended to the serving path.

use serde_json::{json, Value};
use std::io::{self, Read, Write};
use tangled_pki::cacerts::CacertsFile;
use tangled_pki::store::StoreSnapshot;
use tangled_x509::pem::{base64_decode, base64_encode};

/// Maximum frame size in bytes (header excluded). Large enough for a full
/// 150-anchor cacerts snapshot, small enough to bound per-connection
/// memory.
pub const MAX_FRAME: usize = 1 << 20;

/// Why a frame or message failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The declared frame length exceeds [`MAX_FRAME`].
    Oversized {
        /// The declared length.
        len: usize,
    },
    /// The peer closed the connection mid-frame.
    Truncated,
    /// The frame body is not valid UTF-8 JSON.
    BadJson,
    /// The JSON parsed but is not a well-formed message.
    BadRequest(&'static str),
}

impl WireError {
    /// Stable quarantine label (health-ledger key).
    pub fn label(&self) -> &'static str {
        match self {
            WireError::Oversized { .. } => "oversized-frame",
            WireError::Truncated => "truncated-frame",
            WireError::BadJson => "bad-json",
            WireError::BadRequest(_) => "bad-request",
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            WireError::Truncated => write!(f, "connection closed mid-frame"),
            WireError::BadJson => write!(f, "frame body is not valid JSON"),
            WireError::BadRequest(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// A frame-layer failure: transport error or protocol violation.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (including read timeouts).
    Io(io::Error),
    /// The peer violated the framing protocol.
    Wire(WireError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Wire(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Is this I/O error a read-timeout (the server's idle poll tick)?
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// How many *consecutive* idle timeout ticks a mid-frame read tolerates
/// before the peer is declared dead. 200 ticks ≈ tens of seconds at the
/// server's poll interval — a stalled peer cannot pin a worker forever,
/// but any progress resets the clock, so a slow-but-live peer is never
/// misclassified as truncated.
pub(crate) const STALL_BUDGET: u32 = 200;

/// Fill `buf` completely. `Ok(false)` means clean EOF before the first
/// byte (only legal when `at_boundary`); EOF mid-buffer is
/// [`WireError::Truncated`]. A read timeout with nothing buffered
/// propagates as [`FrameError::Io`] so the caller can poll a stop flag; a
/// timeout *mid-frame* keeps waiting (bounded by [`STALL_BUDGET`]
/// consecutive idle ticks).
fn read_full(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<bool, FrameError> {
    let mut filled = 0usize;
    let mut stalls = 0u32;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 && at_boundary {
                    Ok(false)
                } else {
                    Err(FrameError::Wire(WireError::Truncated))
                };
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                if filled == 0 && at_boundary {
                    return Err(FrameError::Io(e));
                }
                stalls += 1;
                if stalls > STALL_BUDGET {
                    return Err(FrameError::Wire(WireError::Truncated));
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(true)
}

/// Read one frame. `Ok(None)` is a clean end-of-stream at a frame
/// boundary.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    if !read_full(r, &mut header, true)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Wire(WireError::Oversized { len }));
    }
    let mut body = vec![0u8; len];
    read_full(r, &mut body, false)?;
    Ok(Some(body))
}

/// Discard exactly `len` body bytes from the stream, leaving it at the
/// next frame boundary. An oversized header is a *recoverable* protocol
/// violation: the peer declared exactly where the next frame starts, so
/// the server can reject the frame yet keep the connection. Stalls are
/// bounded the same way as [`read_full`] ([`STALL_BUDGET`] consecutive
/// idle ticks); EOF mid-drain is [`WireError::Truncated`].
pub fn drain_frame_body(r: &mut impl Read, len: usize) -> Result<(), FrameError> {
    let mut scratch = [0u8; 4096];
    let mut remaining = len;
    let mut stalls = 0u32;
    while remaining > 0 {
        let want = remaining.min(scratch.len());
        match r.read(&mut scratch[..want]) {
            Ok(0) => return Err(FrameError::Wire(WireError::Truncated)),
            Ok(n) => {
                remaining -= n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > STALL_BUDGET {
                    return Err(FrameError::Wire(WireError::Truncated));
                }
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

/// Write `buf` completely, tolerating short writes on a nonblocking (or
/// write-timeout) peer: a `WouldBlock`/`TimedOut` counts as one stall,
/// bounded by the same *consecutive* [`STALL_BUDGET`] as the read path —
/// any written byte resets the clock, so a slow-but-draining peer is
/// never abandoned, while a peer that stops draining entirely cannot
/// block the writer forever.
fn write_full(w: &mut impl Write, buf: &[u8]) -> io::Result<()> {
    let mut written = 0usize;
    let mut stalls = 0u32;
    while written < buf.len() {
        match w.write(&buf[written..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "peer accepts no more bytes",
                ))
            }
            Ok(n) => {
                written += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => {
                stalls += 1;
                if stalls > STALL_BUDGET {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "peer stalled mid-frame write",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Write one frame. Partial writes are retried under the consecutive
/// stall budget (see [`write_full`]) — the write-side twin of the read
/// deadline, so a large pipelined burst against a slow-draining peer
/// completes instead of failing on the first short write.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    write_full(w, &(body.len() as u32).to_be_bytes())?;
    write_full(w, body)?;
    w.flush()
}

/// A query to the trust service.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Validate a presented chain (leaf first) against a named store
    /// profile.
    Validate {
        /// Store profile name (e.g. `"AOSP 4.4"`).
        profile: String,
        /// DER certificates, leaf first, intermediates after.
        chain: Vec<Vec<u8>>,
    },
    /// Classify a root certificate per the paper's extra-root taxonomy.
    Classify {
        /// DER certificate.
        cert: Vec<u8>,
    },
    /// Audit a cacerts snapshot against an AOSP baseline
    /// (damaged files are quarantined, not fatal).
    Audit {
        /// Baseline store name (`"4.4"` or `"AOSP 4.4"`).
        baseline: String,
        /// The snapshot's files.
        files: Vec<CacertsFile>,
    },
    /// Interception verdict for a presented chain on a target.
    Probe {
        /// Store profile the probing device runs.
        profile: String,
        /// Probed endpoint, `host:port`.
        target: String,
        /// Presented DER chain, leaf first.
        chain: Vec<Vec<u8>>,
        /// Does the client app pin the expected issuer?
        pinned: bool,
    },
    /// One adversarial-interception scenario session: a client with a
    /// named validator defect sees a (possibly re-signed) chain for a
    /// target, and the server returns the conservation-ledger outcome —
    /// whitelisted, blocked(reason) or intercepted(attributed-defect).
    /// Idempotent: a pure function of its inputs and the named profile.
    ProbeSession {
        /// Store profile the device runs (e.g. `"AOSP 4.4"`).
        profile: String,
        /// The client's validator-defect label
        /// ([`tangled_intercept::DefectClass`]).
        defect: String,
        /// Probed endpoint, `host:port`.
        target: String,
        /// Presented DER chain, leaf first.
        chain: Vec<Vec<u8>>,
        /// Does the client app pin the expected issuer?
        pinned: bool,
        /// A root the interceptor installed on the device, if any (DER).
        extra_anchor: Option<Vec<u8>>,
        /// Did the proxy interpose on this session (false = whitelisted
        /// pass-through)?
        intercepted: bool,
    },
    /// Cross-ecosystem comparison: validate one presented chain against
    /// *every* standard store profile in a single round trip (the
    /// disparity engine's per-chain verdict vector, amortising one index
    /// lookup across all ecosystems).
    Compare {
        /// DER certificates, leaf first, intermediates after.
        chain: Vec<Vec<u8>>,
    },
    /// Batched validation: many chains against one named store profile
    /// in a single round trip, amortising one index/profile lookup and
    /// one verdict-memo pass across the whole batch. Per-chain failures
    /// (empty chain, malformed DER) become per-chain `untrusted`
    /// verdicts so the reply vector always lines up with the request.
    BatchValidate {
        /// Store profile name (e.g. `"AOSP 4.4"`).
        profile: String,
        /// One DER chain per slot, each leaf first.
        chains: Vec<Vec<Vec<u8>>>,
    },
    /// Install or replace a store profile (bumps its epoch).
    Swap {
        /// Profile name to (re)install.
        profile: String,
        /// The new store contents.
        snapshot: StoreSnapshot,
    },
    /// Fetch the server's counters.
    Stats,
}

impl Request {
    /// The request-type tag (stats key).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Validate { .. } => "validate",
            Request::Classify { .. } => "classify",
            Request::Audit { .. } => "audit",
            Request::Probe { .. } => "probe",
            Request::ProbeSession { .. } => "probe_session",
            Request::Compare { .. } => "compare",
            Request::BatchValidate { .. } => "batch_validate",
            Request::Swap { .. } => "swap",
            Request::Stats => "stats",
        }
    }

    /// May this request be blindly retried after a transport failure?
    ///
    /// Queries (`validate`, `classify`, `audit`, `probe`,
    /// `probe_session`, `stats`) are pure reads: executing one twice is
    /// indistinguishable from once.
    /// `swap` mutates the index and bumps the profile epoch, so a retry
    /// after an ambiguous failure could double-install; resilient callers
    /// must re-sync via the profile's epoch instead (see
    /// `resilient::ResilientClient`).
    pub fn is_idempotent(&self) -> bool {
        !matches!(self, Request::Swap { .. })
    }

    /// JSON form.
    pub fn to_value(&self) -> Value {
        match self {
            Request::Validate { profile, chain } => json!({
                "type": "validate",
                "profile": profile.as_str(),
                "chain": encode_chain(chain),
            }),
            Request::Classify { cert } => json!({
                "type": "classify",
                "cert": base64_encode(cert),
            }),
            Request::Audit { baseline, files } => json!({
                "type": "audit",
                "baseline": baseline.as_str(),
                "files": files
                    .iter()
                    .map(|f| json!({
                        "name": f.name.as_str(),
                        "body": base64_encode(&f.der),
                    }))
                    .collect::<Vec<_>>(),
            }),
            Request::Probe {
                profile,
                target,
                chain,
                pinned,
            } => json!({
                "type": "probe",
                "profile": profile.as_str(),
                "target": target.as_str(),
                "chain": encode_chain(chain),
                "pinned": *pinned,
            }),
            Request::ProbeSession {
                profile,
                defect,
                target,
                chain,
                pinned,
                extra_anchor,
                intercepted,
            } => {
                let extra = match extra_anchor {
                    Some(anchor) => Value::from(base64_encode(anchor)),
                    None => Value::Null,
                };
                json!({
                    "type": "probe_session",
                    "profile": profile.as_str(),
                    "defect": defect.as_str(),
                    "target": target.as_str(),
                    "chain": encode_chain(chain),
                    "pinned": *pinned,
                    "extra_anchor": extra,
                    "intercepted": *intercepted,
                })
            }
            Request::Compare { chain } => json!({
                "type": "compare",
                "chain": encode_chain(chain),
            }),
            Request::BatchValidate { profile, chains } => json!({
                "type": "batch_validate",
                "profile": profile.as_str(),
                "chains": chains
                    .iter()
                    .map(|chain| Value::from(encode_chain(chain)))
                    .collect::<Vec<_>>(),
            }),
            Request::Swap { profile, snapshot } => json!({
                "type": "swap",
                "profile": profile.as_str(),
                "snapshot": serde_json::Serialize::to_json_value(snapshot),
            }),
            Request::Stats => json!({ "type": "stats" }),
        }
    }

    /// Parse a request from its JSON form.
    pub fn from_value(v: &Value) -> Result<Request, WireError> {
        match str_field(v, "type")? {
            "validate" => Ok(Request::Validate {
                profile: str_field(v, "profile")?.to_owned(),
                chain: decode_chain(v.get("chain"))?,
            }),
            "classify" => Ok(Request::Classify {
                cert: decode_blob(v.get("cert"))?,
            }),
            "audit" => {
                let files = v
                    .get("files")
                    .and_then(Value::as_array)
                    .ok_or(WireError::BadRequest("missing files array"))?
                    .iter()
                    .map(|f| {
                        Ok(CacertsFile {
                            name: str_field(f, "name")?.to_owned(),
                            der: decode_blob(f.get("body"))?,
                        })
                    })
                    .collect::<Result<Vec<_>, WireError>>()?;
                Ok(Request::Audit {
                    baseline: str_field(v, "baseline")?.to_owned(),
                    files,
                })
            }
            "probe" => Ok(Request::Probe {
                profile: str_field(v, "profile")?.to_owned(),
                target: str_field(v, "target")?.to_owned(),
                chain: decode_chain(v.get("chain"))?,
                pinned: v
                    .get("pinned")
                    .and_then(Value::as_bool)
                    .ok_or(WireError::BadRequest("missing pinned flag"))?,
            }),
            "probe_session" => {
                let extra_anchor = match v.get("extra_anchor") {
                    None | Some(Value::Null) => None,
                    some => Some(decode_blob(some)?),
                };
                Ok(Request::ProbeSession {
                    profile: str_field(v, "profile")?.to_owned(),
                    defect: str_field(v, "defect")?.to_owned(),
                    target: str_field(v, "target")?.to_owned(),
                    chain: decode_chain(v.get("chain"))?,
                    pinned: v
                        .get("pinned")
                        .and_then(Value::as_bool)
                        .ok_or(WireError::BadRequest("missing pinned flag"))?,
                    extra_anchor,
                    intercepted: v
                        .get("intercepted")
                        .and_then(Value::as_bool)
                        .ok_or(WireError::BadRequest("missing intercepted flag"))?,
                })
            }
            "compare" => Ok(Request::Compare {
                chain: decode_chain(v.get("chain"))?,
            }),
            "batch_validate" => Ok(Request::BatchValidate {
                profile: str_field(v, "profile")?.to_owned(),
                chains: v
                    .get("chains")
                    .and_then(Value::as_array)
                    .ok_or(WireError::BadRequest("missing chains array"))?
                    .iter()
                    .map(|chain| decode_chain(Some(chain)))
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "swap" => {
                let snap = v
                    .get("snapshot")
                    .ok_or(WireError::BadRequest("missing snapshot"))?;
                let snapshot: StoreSnapshot =
                    serde_json::Deserialize::from_json_value(snap)
                        .map_err(|_| WireError::BadRequest("malformed snapshot"))?;
                Ok(Request::Swap {
                    profile: str_field(v, "profile")?.to_owned(),
                    snapshot,
                })
            }
            "stats" => Ok(Request::Stats),
            _ => Err(WireError::BadRequest("unknown request type")),
        }
    }

    /// Serialize to frame-body bytes.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_string(&self.to_value())
            .expect("request serialization is infallible")
            .into_bytes()
    }

    /// Parse frame-body bytes.
    pub fn decode(body: &[u8]) -> Result<Request, WireError> {
        Request::from_value(&parse_body(body)?)
    }
}

/// The trust decision a `validate` request resolves to. Cache-friendly:
/// the *hit/miss* marker lives on the response, not here, so one cached
/// verdict answers any number of requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainVerdict {
    /// The chain anchors in the profile's store.
    Trusted {
        /// Subject of the anchoring trust anchor.
        anchor: String,
        /// Full path length, leaf to anchor inclusive.
        chain_len: usize,
    },
    /// No acceptable path exists.
    Untrusted {
        /// Stable failure label (`no-path`, `bad-signature`, …).
        error: String,
    },
}

/// A reply from the trust service.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Validate result.
    Validate {
        /// The verdict.
        verdict: ChainVerdict,
        /// Served from the memo cache?
        cached: bool,
    },
    /// Classify result.
    Classify {
        /// Taxonomy class (`aosp`, `mozilla+ios7`, `ios7`, `only-android`,
        /// `not-recorded`).
        class: String,
        /// Profiles whose store contains this identity (sorted).
        profiles: Vec<String>,
    },
    /// Audit result.
    Audit {
        /// Rolled-up risk label.
        risk: String,
        /// Additions vs the baseline.
        added: usize,
        /// Removals vs the baseline.
        removed: usize,
        /// Total findings.
        findings: usize,
        /// Snapshot files refused by the lenient loader: (file, label).
        quarantined: Vec<(String, String)>,
    },
    /// Probe result.
    Probe {
        /// Canonical verdict string (`clean`, `pin-violation`, …).
        verdict: String,
    },
    /// Scenario-session result: the conservation-ledger bucket.
    ProbeSession {
        /// Canonical outcome label (`whitelisted`, `blocked(reason)`,
        /// `intercepted(defect)`).
        outcome: String,
    },
    /// Compare result: the per-chain ecosystem verdict vector.
    Compare {
        /// Hex [`tangled_x509::ChainKey`] of the presented chain — the
        /// key the disparity engine's verdict vectors are indexed by.
        chain_key: String,
        /// One `(profile, verdict)` per standard store, in the canonical
        /// store order (reference stores first, then ecosystem families).
        verdicts: Vec<(String, ChainVerdict)>,
        /// How many of the per-profile verdicts came from the memo cache.
        cached: usize,
    },
    /// Batched validate result: one verdict per requested chain, in
    /// request order.
    BatchValidate {
        /// The profile the batch was validated against.
        profile: String,
        /// One verdict per chain slot, aligned with the request.
        verdicts: Vec<ChainVerdict>,
        /// How many of the verdicts came from the memo cache.
        cached: usize,
    },
    /// Swap result.
    Swap {
        /// The profile installed.
        profile: String,
        /// Its new epoch.
        epoch: u64,
        /// Anchors in the installed store.
        anchors: usize,
    },
    /// Stats document (free-form JSON).
    Stats(Value),
    /// The server is at its admission budget and shed this connection
    /// before reading a request. Clients should back off and retry.
    Busy,
    /// A classified failure; `stage` is `wire` for framing/decode errors,
    /// otherwise the request type that rejected its input.
    Error {
        /// Which stage refused the input.
        stage: String,
        /// Stable error label.
        error: String,
    },
}

impl Response {
    /// JSON form.
    pub fn to_value(&self) -> Value {
        match self {
            Response::Validate { verdict, cached } => match verdict {
                ChainVerdict::Trusted { anchor, chain_len } => json!({
                    "type": "validate",
                    "verdict": "trusted",
                    "anchor": anchor.as_str(),
                    "chain_len": *chain_len as u64,
                    "cached": *cached,
                }),
                ChainVerdict::Untrusted { error } => json!({
                    "type": "validate",
                    "verdict": "untrusted",
                    "error": error.as_str(),
                    "cached": *cached,
                }),
            },
            Response::Classify { class, profiles } => json!({
                "type": "classify",
                "class": class.as_str(),
                "profiles": profiles.iter().map(String::as_str).collect::<Vec<_>>(),
            }),
            Response::Audit {
                risk,
                added,
                removed,
                findings,
                quarantined,
            } => json!({
                "type": "audit",
                "risk": risk.as_str(),
                "added": *added as u64,
                "removed": *removed as u64,
                "findings": *findings as u64,
                "quarantined": quarantined
                    .iter()
                    .map(|(file, label)| json!({
                        "file": file.as_str(),
                        "error": label.as_str(),
                    }))
                    .collect::<Vec<_>>(),
            }),
            Response::Probe { verdict } => json!({
                "type": "probe",
                "verdict": verdict.as_str(),
            }),
            Response::ProbeSession { outcome } => json!({
                "type": "probe_session",
                "outcome": outcome.as_str(),
            }),
            Response::Compare {
                chain_key,
                verdicts,
                cached,
            } => json!({
                "type": "compare",
                "chain_key": chain_key.as_str(),
                "verdicts": verdicts
                    .iter()
                    .map(|(store, verdict)| match verdict {
                        ChainVerdict::Trusted { anchor, chain_len } => json!({
                            "store": store.as_str(),
                            "verdict": "trusted",
                            "anchor": anchor.as_str(),
                            "chain_len": *chain_len as u64,
                        }),
                        ChainVerdict::Untrusted { error } => json!({
                            "store": store.as_str(),
                            "verdict": "untrusted",
                            "error": error.as_str(),
                        }),
                    })
                    .collect::<Vec<_>>(),
                "cached": *cached as u64,
            }),
            Response::BatchValidate {
                profile,
                verdicts,
                cached,
            } => json!({
                "type": "batch_validate",
                "profile": profile.as_str(),
                "verdicts": verdicts
                    .iter()
                    .map(|verdict| match verdict {
                        ChainVerdict::Trusted { anchor, chain_len } => json!({
                            "verdict": "trusted",
                            "anchor": anchor.as_str(),
                            "chain_len": *chain_len as u64,
                        }),
                        ChainVerdict::Untrusted { error } => json!({
                            "verdict": "untrusted",
                            "error": error.as_str(),
                        }),
                    })
                    .collect::<Vec<_>>(),
                "cached": *cached as u64,
            }),
            Response::Swap {
                profile,
                epoch,
                anchors,
            } => json!({
                "type": "swap",
                "profile": profile.as_str(),
                "epoch": *epoch,
                "anchors": *anchors as u64,
            }),
            Response::Stats(doc) => json!({
                "type": "stats",
                "stats": doc.clone(),
            }),
            Response::Busy => json!({ "type": "busy" }),
            Response::Error { stage, error } => json!({
                "type": "error",
                "stage": stage.as_str(),
                "error": error.as_str(),
            }),
        }
    }

    /// Parse a response from its JSON form.
    pub fn from_value(v: &Value) -> Result<Response, WireError> {
        match str_field(v, "type")? {
            "validate" => {
                let cached = v
                    .get("cached")
                    .and_then(Value::as_bool)
                    .ok_or(WireError::BadRequest("missing cached flag"))?;
                let verdict = match str_field(v, "verdict")? {
                    "trusted" => ChainVerdict::Trusted {
                        anchor: str_field(v, "anchor")?.to_owned(),
                        chain_len: usize_field(v, "chain_len")?,
                    },
                    "untrusted" => ChainVerdict::Untrusted {
                        error: str_field(v, "error")?.to_owned(),
                    },
                    _ => return Err(WireError::BadRequest("unknown verdict")),
                };
                Ok(Response::Validate { verdict, cached })
            }
            "classify" => Ok(Response::Classify {
                class: str_field(v, "class")?.to_owned(),
                profiles: v
                    .get("profiles")
                    .and_then(Value::as_array)
                    .ok_or(WireError::BadRequest("missing profiles"))?
                    .iter()
                    .map(|p| {
                        p.as_str()
                            .map(str::to_owned)
                            .ok_or(WireError::BadRequest("non-string profile"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "audit" => Ok(Response::Audit {
                risk: str_field(v, "risk")?.to_owned(),
                added: usize_field(v, "added")?,
                removed: usize_field(v, "removed")?,
                findings: usize_field(v, "findings")?,
                quarantined: v
                    .get("quarantined")
                    .and_then(Value::as_array)
                    .ok_or(WireError::BadRequest("missing quarantined"))?
                    .iter()
                    .map(|q| {
                        Ok((
                            str_field(q, "file")?.to_owned(),
                            str_field(q, "error")?.to_owned(),
                        ))
                    })
                    .collect::<Result<Vec<_>, WireError>>()?,
            }),
            "probe" => Ok(Response::Probe {
                verdict: str_field(v, "verdict")?.to_owned(),
            }),
            "probe_session" => Ok(Response::ProbeSession {
                outcome: str_field(v, "outcome")?.to_owned(),
            }),
            "compare" => Ok(Response::Compare {
                chain_key: str_field(v, "chain_key")?.to_owned(),
                verdicts: v
                    .get("verdicts")
                    .and_then(Value::as_array)
                    .ok_or(WireError::BadRequest("missing verdicts"))?
                    .iter()
                    .map(|entry| {
                        let store = str_field(entry, "store")?.to_owned();
                        let verdict = match str_field(entry, "verdict")? {
                            "trusted" => ChainVerdict::Trusted {
                                anchor: str_field(entry, "anchor")?.to_owned(),
                                chain_len: usize_field(entry, "chain_len")?,
                            },
                            "untrusted" => ChainVerdict::Untrusted {
                                error: str_field(entry, "error")?.to_owned(),
                            },
                            _ => return Err(WireError::BadRequest("unknown verdict")),
                        };
                        Ok((store, verdict))
                    })
                    .collect::<Result<Vec<_>, WireError>>()?,
                cached: usize_field(v, "cached")?,
            }),
            "batch_validate" => Ok(Response::BatchValidate {
                profile: str_field(v, "profile")?.to_owned(),
                verdicts: v
                    .get("verdicts")
                    .and_then(Value::as_array)
                    .ok_or(WireError::BadRequest("missing verdicts"))?
                    .iter()
                    .map(|entry| match str_field(entry, "verdict")? {
                        "trusted" => Ok(ChainVerdict::Trusted {
                            anchor: str_field(entry, "anchor")?.to_owned(),
                            chain_len: usize_field(entry, "chain_len")?,
                        }),
                        "untrusted" => Ok(ChainVerdict::Untrusted {
                            error: str_field(entry, "error")?.to_owned(),
                        }),
                        _ => Err(WireError::BadRequest("unknown verdict")),
                    })
                    .collect::<Result<Vec<_>, WireError>>()?,
                cached: usize_field(v, "cached")?,
            }),
            "swap" => Ok(Response::Swap {
                profile: str_field(v, "profile")?.to_owned(),
                epoch: v
                    .get("epoch")
                    .and_then(Value::as_u64)
                    .ok_or(WireError::BadRequest("missing epoch"))?,
                anchors: usize_field(v, "anchors")?,
            }),
            "stats" => Ok(Response::Stats(
                v.get("stats")
                    .cloned()
                    .ok_or(WireError::BadRequest("missing stats document"))?,
            )),
            "busy" => Ok(Response::Busy),
            "error" => Ok(Response::Error {
                stage: str_field(v, "stage")?.to_owned(),
                error: str_field(v, "error")?.to_owned(),
            }),
            _ => Err(WireError::BadRequest("unknown response type")),
        }
    }

    /// Serialize to frame-body bytes.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_string(&self.to_value())
            .expect("response serialization is infallible")
            .into_bytes()
    }

    /// Parse frame-body bytes.
    pub fn decode(body: &[u8]) -> Result<Response, WireError> {
        Response::from_value(&parse_body(body)?)
    }
}

fn parse_body(body: &[u8]) -> Result<Value, WireError> {
    let text = std::str::from_utf8(body).map_err(|_| WireError::BadJson)?;
    serde_json::from_str(text).map_err(|_| WireError::BadJson)
}

fn str_field<'a>(v: &'a Value, key: &'static str) -> Result<&'a str, WireError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or(WireError::BadRequest("missing string field"))
}

fn usize_field(v: &Value, key: &'static str) -> Result<usize, WireError> {
    v.get(key)
        .and_then(Value::as_u64)
        .map(|n| n as usize)
        .ok_or(WireError::BadRequest("missing integer field"))
}

fn encode_chain(chain: &[Vec<u8>]) -> Vec<Value> {
    chain
        .iter()
        .map(|der| Value::from(base64_encode(der)))
        .collect()
}

fn decode_chain(v: Option<&Value>) -> Result<Vec<Vec<u8>>, WireError> {
    v.and_then(Value::as_array)
        .ok_or(WireError::BadRequest("missing chain array"))?
        .iter()
        .map(|blob| decode_blob(Some(blob)))
        .collect()
}

fn decode_blob(v: Option<&Value>) -> Result<Vec<u8>, WireError> {
    let text = v
        .and_then(Value::as_str)
        .ok_or(WireError::BadRequest("missing base64 blob"))?;
    base64_decode(text).map_err(|_| WireError::BadRequest("invalid base64"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), Some(Vec::new()));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        match read_frame(&mut Cursor::new(buf)) {
            Err(FrameError::Wire(WireError::Oversized { len })) => {
                assert_eq!(len, u32::MAX as usize);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // Writing oversized frames is refused too.
        let big = vec![0u8; MAX_FRAME + 1];
        assert!(write_frame(&mut Vec::new(), &big).is_err());
    }

    #[test]
    fn truncated_frames_detected() {
        // EOF inside the header.
        let mut r = Cursor::new(vec![0u8, 0, 0]);
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Wire(WireError::Truncated))
        ));
        // EOF inside the body.
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_be_bytes());
        buf.extend_from_slice(b"1234");
        assert!(matches!(
            read_frame(&mut Cursor::new(buf)),
            Err(FrameError::Wire(WireError::Truncated))
        ));
    }

    /// Yields its body one byte at a time, reporting `WouldBlock` between
    /// every byte — a slow-but-live peer. The total stall count far
    /// exceeds [`STALL_BUDGET`], but no two stalls are consecutive, so a
    /// correct (consecutive-stall) budget never fires. The first read
    /// succeeds immediately: `read_full` treats a timeout with nothing
    /// buffered at a boundary as an idle poll tick, not a stall.
    struct TricklingReader {
        data: Vec<u8>,
        pos: usize,
        stall_next: bool,
    }

    impl Read for TricklingReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.stall_next {
                self.stall_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            self.stall_next = true;
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn trickling_peer_is_not_misclassified_as_truncated() {
        // Body longer than the stall budget: a *cumulative* stall counter
        // would trip partway through; the consecutive counter must not.
        let body = vec![0x2a; STALL_BUDGET as usize + 100];
        let mut framed = Vec::new();
        write_frame(&mut framed, &body).unwrap();
        let mut r = TricklingReader {
            data: framed,
            pos: 0,
            stall_next: false,
        };
        let got = read_frame(&mut r).expect("slow peer still delivers").unwrap();
        assert_eq!(got, body);
    }

    /// Delivers a few bytes, then stalls forever.
    struct StalledReader {
        data: Vec<u8>,
        pos: usize,
    }

    impl Read for StalledReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos < self.data.len() {
                buf[0] = self.data[self.pos];
                self.pos += 1;
                return Ok(1);
            }
            Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"))
        }
    }

    #[test]
    fn dead_stall_mid_frame_still_bounded() {
        // Header promises 8 bytes; only 4 arrive, then silence. The stall
        // budget must still declare the frame truncated.
        let mut framed = Vec::new();
        framed.extend_from_slice(&8u32.to_be_bytes());
        framed.extend_from_slice(b"1234");
        let mut r = StalledReader {
            data: framed,
            pos: 0,
        };
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Wire(WireError::Truncated))
        ));
    }

    /// Accepts one byte per call, reporting `WouldBlock` between every
    /// byte — the write-side twin of [`TricklingReader`]. Total stalls far
    /// exceed [`STALL_BUDGET`], but never two in a row, so a correct
    /// consecutive-stall budget never fires.
    struct TricklingWriter {
        data: Vec<u8>,
        stall_next: bool,
    }

    impl Write for TricklingWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.stall_next {
                self.stall_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            self.stall_next = true;
            self.data.push(buf[0]);
            Ok(1)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn trickling_peer_still_receives_the_whole_frame() {
        // Body longer than the stall budget: a cumulative counter (or the
        // old write_all, which fails on the first WouldBlock) would give
        // up; the consecutive budget delivers every byte.
        let body = vec![0x5a; STALL_BUDGET as usize + 100];
        let mut w = TricklingWriter {
            data: Vec::new(),
            stall_next: false,
        };
        write_frame(&mut w, &body).expect("slow-draining peer still accepts");
        let mut r = Cursor::new(w.data);
        assert_eq!(read_frame(&mut r).unwrap(), Some(body));
    }

    /// Accepts a few bytes, then stalls forever.
    struct StalledWriter {
        accepted: usize,
        cap: usize,
    }

    impl Write for StalledWriter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.accepted < self.cap {
                let n = buf.len().min(self.cap - self.accepted);
                self.accepted += n;
                return Ok(n);
            }
            Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"))
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn dead_stall_mid_frame_write_still_bounded() {
        let mut w = StalledWriter {
            accepted: 0,
            cap: 6,
        };
        let err = write_frame(&mut w, b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn drain_frame_body_resynchronises_the_stream() {
        // 10 000 junk bytes (an oversized frame's declared body), then a
        // valid frame: draining must land exactly on the boundary.
        let mut buf = vec![0xeeu8; 10_000];
        write_frame(&mut buf, b"after").unwrap();
        let mut r = Cursor::new(buf);
        drain_frame_body(&mut r, 10_000).expect("drain succeeds");
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"after".to_vec()));

        // EOF before the declared length is truncation.
        let mut short = Cursor::new(vec![0u8; 9]);
        assert!(matches!(
            drain_frame_body(&mut short, 10),
            Err(FrameError::Wire(WireError::Truncated))
        ));
    }

    #[test]
    fn request_json_round_trips() {
        let reqs = vec![
            Request::Validate {
                profile: "AOSP 4.4".into(),
                chain: vec![vec![0x30, 0x03, 1, 2, 3], vec![0xff]],
            },
            Request::Classify { cert: vec![1, 2, 3] },
            Request::Audit {
                baseline: "4.1".into(),
                files: vec![CacertsFile {
                    name: "00aabbcc.0".into(),
                    der: b"-----BEGIN CERTIFICATE-----".to_vec(),
                }],
            },
            Request::Probe {
                profile: "Mozilla".into(),
                target: "gmail.com:443".into(),
                chain: vec![],
                pinned: true,
            },
            Request::ProbeSession {
                profile: "AOSP 4.4".into(),
                defect: "accept-all".into(),
                target: "www.chase.com:443".into(),
                chain: vec![vec![0x30, 0x03, 1, 2, 3]],
                pinned: false,
                extra_anchor: Some(vec![0x30, 0x01, 0xaa]),
                intercepted: true,
            },
            Request::ProbeSession {
                profile: "AOSP 4.1".into(),
                defect: "correct".into(),
                target: "supl.google.com:7275".into(),
                chain: vec![],
                pinned: true,
                extra_anchor: None,
                intercepted: false,
            },
            Request::Compare {
                chain: vec![vec![0x30, 0x03, 1, 2, 3], vec![0xab]],
            },
            Request::BatchValidate {
                profile: "AOSP 4.4".into(),
                chains: vec![
                    vec![vec![0x30, 0x03, 1, 2, 3], vec![0xff]],
                    vec![],
                    vec![vec![0xab]],
                ],
            },
            Request::Stats,
        ];
        for req in reqs {
            let back = Request::decode(&req.encode()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_json_round_trips() {
        let resps = vec![
            Response::Validate {
                verdict: ChainVerdict::Trusted {
                    anchor: "CN=Root".into(),
                    chain_len: 3,
                },
                cached: true,
            },
            Response::Validate {
                verdict: ChainVerdict::Untrusted {
                    error: "no-path".into(),
                },
                cached: false,
            },
            Response::Classify {
                class: "ios7".into(),
                profiles: vec!["iOS 7".into()],
            },
            Response::Audit {
                risk: "stock".into(),
                added: 0,
                removed: 1,
                findings: 2,
                quarantined: vec![("x.0".into(), "malformed-der".into())],
            },
            Response::Probe {
                verdict: "clean".into(),
            },
            Response::ProbeSession {
                outcome: "intercepted(accept-all)".into(),
            },
            Response::Compare {
                chain_key: "ab12".into(),
                verdicts: vec![
                    (
                        "AOSP 4.4".into(),
                        ChainVerdict::Trusted {
                            anchor: "CN=Root".into(),
                            chain_len: 3,
                        },
                    ),
                    (
                        "Java".into(),
                        ChainVerdict::Untrusted {
                            error: "no-path".into(),
                        },
                    ),
                ],
                cached: 1,
            },
            Response::BatchValidate {
                profile: "AOSP 4.4".into(),
                verdicts: vec![
                    ChainVerdict::Trusted {
                        anchor: "CN=Root".into(),
                        chain_len: 2,
                    },
                    ChainVerdict::Untrusted {
                        error: "empty-chain".into(),
                    },
                ],
                cached: 1,
            },
            Response::Swap {
                profile: "device".into(),
                epoch: 7,
                anchors: 150,
            },
            Response::Stats(json!({"served": {"validate": 3u64}})),
            Response::Busy,
            Response::Error {
                stage: "wire".into(),
                error: "bad-json".into(),
            },
        ];
        for resp in resps {
            let back = Response::decode(&resp.encode()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn malformed_bodies_classified() {
        assert_eq!(
            Request::decode(b"\xff\xfe").unwrap_err().label(),
            "bad-json"
        );
        assert_eq!(Request::decode(b"[1,2]").unwrap_err().label(), "bad-request");
        assert_eq!(
            Request::decode(br#"{"type":"warp"}"#).unwrap_err().label(),
            "bad-request"
        );
        assert_eq!(
            Request::decode(br#"{"type":"validate","profile":"x","chain":["!!"]}"#)
                .unwrap_err()
                .label(),
            "bad-request"
        );
    }
}
