//! `tangled` — command-line interface to the tangled-mass toolkit.
//!
//! ```text
//! tangled tables  [scale]            print Tables 1–6 (default scale 0.5)
//! tangled figures [scale]            print Figures 1–3 data summaries
//! tangled export  [scale]            full result set as JSON on stdout
//! tangled mkstore <version> <dir>    write an AOSP store as a cacerts dir
//!                                    (version: 4.1 | 4.2 | 4.3 | 4.4 |
//!                                     mozilla | ios7)
//! tangled audit   <dir> <version>    audit an on-disk cacerts directory
//!                                    against an AOSP baseline
//! tangled probe                      replay the §7 interception case
//! tangled serve   <addr>             run the trustd query server
//! tangled loadgen <addr> [--sessions N] [--seed S]
//!                                    replay a seeded population against a
//!                                    server and verify the verdicts
//! ```
//!
//! Usage errors (unknown subcommand, malformed arguments) exit with
//! status 2; runtime failures exit with status 1.

use std::collections::HashSet;
use std::process::ExitCode;
use std::sync::Arc;
use tangled_mass::analysis::{export, figures, survey, tables, Study};
use tangled_mass::asn1::Time;
use tangled_mass::netalyzr::{Population, PopulationSpec};
use tangled_mass::pki::audit::audit;
use tangled_mass::pki::cacerts::{from_cacerts, to_cacerts_pem, CacertsFile};
use tangled_mass::pki::stores::ReferenceStore;
use tangled_mass::pki::trust::AnchorSource;
use tangled_mass::trustd::{
    offline_verdicts, replay, ReplaySpec, TrustServer, TrustService, DEFAULT_CACHE_CAPACITY,
};

/// How a command failed: a usage error (exit 2) or a runtime failure
/// (exit 1).
enum CliError {
    Usage(String),
    Failure(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> CliError {
        CliError::Failure(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> CliError {
        CliError::Failure(msg.to_owned())
    }
}

fn usage() -> String {
    [
        "usage: tangled <tables|figures|export|mkstore|audit|probe|serve|loadgen> [...]",
        "  tables  [scale]          print Tables 1-6",
        "  figures [scale]          print Figures 1-3 summaries",
        "  export  [scale]          print the result set as JSON",
        "  mkstore <version> <dir>  write a reference store as cacerts files",
        "  audit   <dir> <version>  audit a cacerts directory",
        "  probe                    replay the interception case",
        "  serve   <addr>           run the trustd query server",
        "  loadgen <addr> [--sessions N] [--seed S]",
        "                           replay a seeded population against a server",
    ]
    .join("\n")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("tables") => parse_scale(args.get(1)).and_then(cmd_tables),
        Some("figures") => parse_scale(args.get(1)).and_then(cmd_figures),
        Some("export") => parse_scale(args.get(1)).and_then(cmd_export),
        Some("mkstore") => cmd_mkstore(args.get(1), args.get(2)),
        Some("audit") => cmd_audit(args.get(1), args.get(2)),
        Some("probe") => cmd_probe(),
        Some("serve") => cmd_serve(args.get(1)),
        Some("loadgen") => cmd_loadgen(args.get(1), &args[2..]),
        Some(other) => Err(CliError::Usage(format!(
            "unknown subcommand '{other}'\n{}",
            usage()
        ))),
        None => Err(CliError::Usage(usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
        Err(CliError::Failure(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Parse an optional scale argument strictly: absent → 0.5; present but
/// non-numeric, non-finite, or ≤ 0 → usage error.
fn parse_scale(arg: Option<&String>) -> Result<f64, CliError> {
    let Some(text) = arg else {
        return Ok(0.5);
    };
    match text.parse::<f64>() {
        Ok(scale) if scale.is_finite() && scale > 0.0 => Ok(scale),
        _ => Err(CliError::Usage(format!(
            "invalid scale '{text}': want a number > 0"
        ))),
    }
}

fn parse_store(name: &str) -> Result<ReferenceStore, CliError> {
    match name {
        "4.1" => Ok(ReferenceStore::Aosp41),
        "4.2" => Ok(ReferenceStore::Aosp42),
        "4.3" => Ok(ReferenceStore::Aosp43),
        "4.4" => Ok(ReferenceStore::Aosp44),
        "mozilla" => Ok(ReferenceStore::Mozilla),
        "ios7" => Ok(ReferenceStore::Ios7),
        other => Err(CliError::Usage(format!(
            "unknown store '{other}' (want 4.1|4.2|4.3|4.4|mozilla|ios7)"
        ))),
    }
}

fn cmd_tables(scale: f64) -> Result<(), CliError> {
    eprintln!("generating study at scale {scale}…");
    let study = Study::new(scale, scale.max(0.25));
    println!("{}", tables::dataset_summary(&study.population).render());
    print!("{}", tables::render_all(&study));
    Ok(())
}

fn cmd_figures(scale: f64) -> Result<(), CliError> {
    eprintln!("generating study at scale {scale}…");
    let study = Study::new(scale, scale.max(0.25));
    println!("{}", figures::figure1_render(&study.population, 20));
    println!("{}", figures::figure2_render(&study.population, 20));
    println!("{}", figures::figure3_render(&study.validation));
    Ok(())
}

fn cmd_export(scale: f64) -> Result<(), CliError> {
    eprintln!("generating study at scale {scale}…");
    let study = Study::new(scale, scale.max(0.25));
    let doc = export::export_study(&study);
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?
    );
    Ok(())
}

fn cmd_mkstore(version: Option<&String>, dir: Option<&String>) -> Result<(), CliError> {
    let version = version.ok_or_else(|| CliError::Usage("mkstore needs a store name".into()))?;
    let dir = dir.ok_or_else(|| CliError::Usage("mkstore needs an output directory".into()))?;
    let store = parse_store(version)?.cached();
    std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
    let files = to_cacerts_pem(&store);
    for f in &files {
        let path = std::path::Path::new(dir).join(&f.name);
        std::fs::write(&path, &f.der).map_err(|e| e.to_string())?;
    }
    eprintln!("wrote {} certificates to {dir}", files.len());
    Ok(())
}

fn cmd_audit(dir: Option<&String>, version: Option<&String>) -> Result<(), CliError> {
    let dir = dir.ok_or_else(|| CliError::Usage("audit needs a cacerts directory".into()))?;
    let version =
        version.ok_or_else(|| CliError::Usage("audit needs a baseline store name".into()))?;
    let baseline = parse_store(version)?.cached();

    let mut files = Vec::new();
    for entry in std::fs::read_dir(dir).map_err(|e| e.to_string())? {
        let entry = entry.map_err(|e| e.to_string())?;
        if !entry.file_type().map_err(|e| e.to_string())?.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let der = std::fs::read(entry.path()).map_err(|e| e.to_string())?;
        files.push(CacertsFile { name, der });
    }
    files.sort_by(|a, b| a.name.cmp(&b.name));
    let observed = from_cacerts(dir, &files, AnchorSource::Unknown)
        .map_err(|e| format!("reading {dir}: {e}"))?;
    let report = audit(
        &baseline,
        &observed,
        Time::date(2014, 2, 1).expect("valid date"),
    );
    print!("{}", report.render());
    Ok(())
}

fn cmd_probe() -> Result<(), CliError> {
    println!("{}", tables::table6().render());
    let pop = Population::generate(&PopulationSpec::scaled(0.1));
    let victim = survey::nexus7_victim(&pop).ok_or("no Nexus 7 in population")?;
    let proxied: HashSet<_> = [victim].into_iter().collect();
    eprintln!(
        "surveying {} sessions with one proxied device…",
        pop.sessions.len()
    );
    let report = survey::survey(&pop, &proxied);
    println!(
        "survey: {} of {} sessions exposed interception ({} device(s))",
        report.flagged.len(),
        report.sessions,
        report.flagged_devices().len()
    );
    for f in report.flagged.iter().take(3) {
        println!(
            "  session {} on device {:?}: {} targets re-signed by {}",
            f.session,
            f.device,
            f.intercepted_targets,
            f.interfering_issuer.as_deref().unwrap_or("?")
        );
    }
    Ok(())
}

fn cmd_serve(addr: Option<&String>) -> Result<(), CliError> {
    let addr = addr.ok_or_else(|| {
        CliError::Usage("serve needs a listen address (e.g. 127.0.0.1:7433)".into())
    })?;
    eprintln!("loading reference store profiles…");
    let service = Arc::new(TrustService::new(DEFAULT_CACHE_CAPACITY));
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(8);
    let server = TrustServer::bind(addr.as_str(), service, workers)
        .map_err(|e| format!("binding {addr}: {e}"))?;
    // Flushed line the loadgen smoke test greps for.
    println!("trustd listening on {} ({workers} workers)", server.local_addr());
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn cmd_loadgen(addr: Option<&String>, rest: &[String]) -> Result<(), CliError> {
    let addr = addr
        .ok_or_else(|| CliError::Usage("loadgen needs a server address".into()))?
        .clone();
    let mut sessions = 100usize;
    let mut seed = 2014u64;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = |v: Option<&String>| {
            v.cloned()
                .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--sessions" => {
                let v = value(it.next())?;
                sessions = v.parse().map_err(|_| {
                    CliError::Usage(format!("invalid --sessions '{v}': want an integer > 0"))
                })?;
                if sessions == 0 {
                    return Err(CliError::Usage("--sessions must be > 0".into()));
                }
            }
            "--seed" => {
                let v = value(it.next())?;
                seed = v.parse().map_err(|_| {
                    CliError::Usage(format!("invalid --seed '{v}': want an unsigned integer"))
                })?;
            }
            other => {
                return Err(CliError::Usage(format!("unknown loadgen flag '{other}'")));
            }
        }
    }

    let spec = ReplaySpec::new(seed, sessions);
    eprintln!("computing offline verdicts for seed {seed}, {sessions} sessions…");
    let expected = offline_verdicts(&spec);
    eprintln!("replaying {} requests against {addr}…", expected.len());
    let outcome = replay(addr.as_str(), &spec).map_err(|e| format!("replay: {e}"))?;

    let throughput = outcome.requests as f64 / outcome.elapsed.as_secs_f64().max(1e-9);
    let hits = outcome.stats["cache"]["hits"].as_u64().unwrap_or(0);
    let misses = outcome.stats["cache"]["misses"].as_u64().unwrap_or(0);
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    println!(
        "loadgen: {} requests in {:.3}s ({throughput:.0} req/s)",
        outcome.requests,
        outcome.elapsed.as_secs_f64()
    );
    println!(
        "loadgen: cache hit rate {:.1}% ({hits} hits / {misses} misses)",
        hit_rate * 100.0
    );
    println!("loadgen: protocol errors: {}", outcome.wire_errors);

    if outcome.wire_errors > 0 {
        return Err(format!("{} protocol errors", outcome.wire_errors).into());
    }
    if outcome.verdicts != expected {
        let diverged = outcome
            .verdicts
            .iter()
            .zip(&expected)
            .position(|(got, want)| got != want);
        return Err(format!(
            "served verdicts diverge from the offline study (first at request {:?})",
            diverged
        )
        .into());
    }
    println!("loadgen: verdicts match the offline study exactly");
    Ok(())
}
