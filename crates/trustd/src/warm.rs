//! Warm start: rebuild the store index from a snapshot and a journal.
//!
//! A cold trustd start generates the ten standard stores from scratch
//! (certificate synthesis plus verifier builds). A warm start instead
//! loads them from a study snapshot and then replays the swap journal,
//! reproducing the exact epoch sequence the previous process served:
//! the six reference profiles install as epochs 1–6 in
//! [`ReferenceStore::ALL`] order and the four ecosystem families as
//! epochs 7–10 in [`EcosystemStore::ALL`] order — identical to
//! [`StoreIndex::with_standard_profiles`] — and each journalled swap
//! re-installs at the epoch its frame recorded. Any divergence is a
//! classified [`SnapError::EpochMismatch`], not a silently different
//! server.

use crate::index::{build_anchor_verifier, StoreIndex, DEFAULT_SHARDS};
use std::sync::Arc;
use tangled_pki::store::RootStore;
use tangled_pki::stores::{EcosystemStore, ReferenceStore};
use tangled_snap::{
    decode_eco_stores, decode_stores, materialize_chain, read_checkpoint, SectionId, SnapError,
    Snapshot, SwapRecord, TrustState,
};

/// Build the verifiers for `picked` in parallel on the ambient pool and
/// install the profiles sequentially, in slice order — the epoch of each
/// profile is its position plus one, exactly as a cold start assigns.
fn install_all(picked: Vec<(&'static str, Arc<RootStore>)>) -> StoreIndex {
    let verifiers = tangled_exec::ExecPool::current()
        .par_map_indexed(&picked, |_, (_, store)| build_anchor_verifier(store));
    let index = StoreIndex::new(DEFAULT_SHARDS);
    for ((name, store), verifier) in picked.into_iter().zip(verifiers) {
        index.install_with_verifier(name, store, Arc::new(verifier));
    }
    index
}

/// The snapshot section a decode failure should be quarantined under.
fn failed_section(e: &SnapError, default: &'static str) -> &'static str {
    match e {
        SnapError::ChecksumMismatch { section }
        | SnapError::MissingSection { section }
        | SnapError::Malformed { section, .. } => section,
        _ => default,
    }
}

/// Build a standard-profile index from a study snapshot.
///
/// The snapshot's store section leads with the six reference profiles;
/// they are selected *by canonical name* (so extra device stores in the
/// section are ignored) and installed in [`ReferenceStore::ALL`] order,
/// then the four ecosystem families follow from the `eco-stores` section
/// in [`EcosystemStore::ALL`] order — yielding epochs 1–10 exactly as a
/// cold start would. A snapshot without an `eco-stores` section (written
/// before the disparity engine existed) fails strict warm start; use
/// [`degraded_index_from_snapshot`] to serve it with cold-generated
/// ecosystem stores instead. Anchor verifiers build in parallel on the
/// ambient pool; installs publish sequentially.
pub fn index_from_snapshot(path: &str) -> Result<StoreIndex, SnapError> {
    let snap = Snapshot::open(path)?;
    let index = install_all(standard_picked(&snap)?);
    tangled_obs::registry::add("trustd.warm_starts", 1);
    Ok(index)
}

/// Select the ten standard profiles out of a decoded snapshot, in
/// canonical install order (reference stores then ecosystem families).
fn standard_picked(snap: &Snapshot) -> Result<Vec<(&'static str, Arc<RootStore>)>, SnapError> {
    let stores = decode_stores(snap)?;
    let eco = decode_eco_stores(snap)?;
    let mut picked = Vec::with_capacity(ReferenceStore::ALL.len() + eco.len());
    for rs in ReferenceStore::ALL {
        let store = stores
            .iter()
            .find(|s| s.name() == rs.name())
            .ok_or(SnapError::Malformed {
                section: "stores",
                detail: "snapshot lacks a reference profile",
            })?;
        picked.push((rs.name(), Arc::clone(store)));
    }
    for (es, store) in EcosystemStore::ALL.into_iter().zip(&eco) {
        picked.push((es.name(), Arc::clone(store)));
    }
    Ok(picked)
}

/// The outcome of a base+delta chain warm start.
pub struct ChainStart {
    /// The rebuilt index: standard profiles plus every folded swap,
    /// re-installed at its recorded epoch.
    pub index: StoreIndex,
    /// The trust-state the chain carried (absent when the chain is a
    /// plain study snapshot with no checkpoint).
    pub state: Option<TrustState>,
    /// How many chain files were applied by materialisation.
    pub applied: usize,
}

/// Warm-start from a snapshot chain: a base study snapshot followed by
/// delta files (typically one compaction checkpoint).
///
/// The chain is materialised at the latest epoch and verified link by
/// link (see [`tangled_snap::materialize`]). The standard profiles load
/// from the materialised store sections — or generate cold when the
/// chain is a base-less checkpoint carrying only trust-state — and the
/// folded swap records then re-install **at their recorded epochs** via
/// [`StoreIndex::install_at_epoch`], so the resulting epoch sequence is
/// indistinguishable from replaying the full pre-compaction journal.
pub fn index_from_chain(paths: &[String]) -> Result<ChainStart, SnapError> {
    let m = materialize_chain(paths, u64::MAX)?;
    let applied = m.applied;
    let snap = Snapshot::parse(m.bytes)?;
    let has_stores = snap
        .entries()
        .iter()
        .any(|e| e.tag == SectionId::Stores.tag());
    let index = if has_stores {
        install_all(standard_picked(&snap)?)
    } else {
        // A base-less checkpoint: the previous server cold-started, so
        // this start does too — epochs 1–10 match by construction.
        StoreIndex::with_standard_profiles()
    };
    let state = read_checkpoint(&snap)?;
    if let Some(state) = &state {
        for record in &state.records {
            let store =
                RootStore::from_snapshot(&record.store).map_err(|_| SnapError::Malformed {
                    section: SectionId::TrustState.name(),
                    detail: "folded store fails to reconstruct",
                })?;
            index
                .install_at_epoch(&record.profile, Arc::new(store), record.epoch)
                .map_err(|current| SnapError::EpochMismatch {
                    recorded: record.epoch,
                    produced: current + 1,
                })?;
        }
    }
    tangled_obs::registry::add("trustd.warm_starts", 1);
    Ok(ChainStart {
        index,
        state,
        applied,
    })
}

/// The outcome of a degraded-mode warm start: an index that serves, plus
/// the quarantine ledger of what it is serving *without*.
pub struct DegradedStart {
    /// The (possibly partial) store index.
    pub index: StoreIndex,
    /// Quarantined snapshot units: `(section-or-profile, error label)`.
    pub quarantined: Vec<(String, String)>,
    /// True when a store section was unusable and the corresponding
    /// profiles fell back to cold generation.
    pub fallback: bool,
}

/// Build an index from a snapshot, quarantining individually corrupt
/// sections instead of refusing to start.
///
/// Only *container-level* damage is fatal (unreadable file, bad magic or
/// version, truncation, inconsistent section table): without a section
/// table there is nothing to salvage. Past that point every failure is
/// per-section:
///
/// * auxiliary sections (`meta`, `ecosystem`, `population`, `validation`,
///   `health`) are checksummed individually; a corrupt one is quarantined
///   and the server runs without it — none of them feed the serving path;
/// * a corrupt or undecodable store section (the stores cursor is
///   sequential, so record-level resync is impossible) quarantines the
///   whole section and falls back to cold-generated reference profiles —
///   the server still answers with correct stores, it just paid the cold
///   synthesis cost;
/// * the `eco-stores` section degrades the same way, independently: a
///   pre-disparity snapshot (no such section) or a damaged one is
///   quarantined and the four ecosystem families regenerate cold, so
///   `compare` still answers the full ten-store verdict vector;
/// * a decodable store section that lacks some reference profile
///   quarantines the missing profile (`missing-profile`) and serves the
///   rest.
///
/// Whatever degrades, surviving profiles install in the canonical
/// reference-then-ecosystem order, so epochs stay aligned with a cold
/// start wherever alignment is possible. The caller surfaces the
/// quarantine ledger through
/// [`crate::stats::ServiceStats::record_degraded`], so a degraded start
/// is visible in every `stats` reply.
pub fn degraded_index_from_snapshot(path: &str) -> Result<DegradedStart, SnapError> {
    let snap = Snapshot::open(path)?;
    let mut quarantined: Vec<(String, String)> = Vec::new();
    let quarantine = |q: &mut Vec<(String, String)>, unit: &str, label: &str| {
        let entry = (unit.to_owned(), label.to_owned());
        if !q.contains(&entry) {
            q.push(entry);
        }
    };

    // Auxiliary sections: checksum each one; corruption is quarantined,
    // not fatal. (Corpus and the two store sections feed the index build
    // below.)
    for id in SectionId::STUDY {
        if matches!(
            id,
            SectionId::Corpus | SectionId::Stores | SectionId::EcoStores
        ) {
            continue;
        }
        if let Err(e) = snap.section(id) {
            quarantine(&mut quarantined, id.name(), e.label());
        }
    }

    let mut fallback = false;
    let mut picked: Vec<(&'static str, Arc<RootStore>)> =
        Vec::with_capacity(ReferenceStore::ALL.len() + EcosystemStore::ALL.len());
    match decode_stores(&snap) {
        Ok(stores) => {
            for rs in ReferenceStore::ALL {
                match stores.iter().find(|s| s.name() == rs.name()) {
                    Some(store) => picked.push((rs.name(), Arc::clone(store))),
                    None => quarantine(&mut quarantined, rs.name(), "missing-profile"),
                }
            }
        }
        Err(e) => {
            // The store payload is unusable: quarantine it under the
            // section the error names and serve cold-generated reference
            // profiles instead of nothing.
            quarantine(&mut quarantined, failed_section(&e, "stores"), e.label());
            fallback = true;
            for rs in ReferenceStore::ALL {
                picked.push((rs.name(), rs.cached()));
            }
        }
    }
    match decode_eco_stores(&snap) {
        Ok(eco) => {
            for (es, store) in EcosystemStore::ALL.into_iter().zip(&eco) {
                picked.push((es.name(), Arc::clone(store)));
            }
        }
        Err(e) => {
            quarantine(
                &mut quarantined,
                failed_section(&e, SectionId::EcoStores.name()),
                e.label(),
            );
            fallback = true;
            for es in EcosystemStore::ALL {
                picked.push((es.name(), es.cached()));
            }
        }
    }

    let index = install_all(picked);
    if !fallback {
        tangled_obs::registry::add("trustd.warm_starts", 1);
    }
    if !quarantined.is_empty() {
        tangled_obs::registry::add("trustd.warm_starts.degraded", 1);
    }
    Ok(DegradedStart {
        index,
        quarantined,
        fallback,
    })
}

/// What [`replay_journal`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplaySummary {
    /// Records re-installed at their recorded epochs.
    pub replayed: usize,
    /// Records skipped because the index was already at or past their
    /// epoch — the compaction crash window (checkpoint durable, journal
    /// tail not yet truncated) replays the same swaps twice; skipping
    /// makes that idempotent.
    pub skipped: usize,
}

/// Replay journalled swaps over a freshly warm-started index.
///
/// Each record re-installs its store snapshot under its profile name and
/// must land on the epoch recorded at append time; the journal and
/// snapshot belong to one server history, and a mismatch means they were
/// mixed from different ones. Records whose epoch the index has already
/// reached (a checkpoint written just before a crash left the journal
/// tail in place) are skipped, not errors — the folded state already
/// covers them.
pub fn replay_journal(index: &StoreIndex, records: &[SwapRecord]) -> Result<ReplaySummary, SnapError> {
    let mut summary = ReplaySummary {
        replayed: 0,
        skipped: 0,
    };
    for record in records {
        if record.epoch <= index.current_epoch() {
            summary.skipped += 1;
            continue;
        }
        let store = RootStore::from_snapshot(&record.store).map_err(|_| SnapError::Malformed {
            section: "journal",
            detail: "journalled store fails to reconstruct",
        })?;
        let installed = index.install(&record.profile, Arc::new(store));
        if installed.epoch != record.epoch {
            return Err(SnapError::EpochMismatch {
                recorded: record.epoch,
                produced: installed.epoch,
            });
        }
        summary.replayed += 1;
    }
    tangled_obs::registry::add("journal.replayed", summary.replayed as u64);
    if summary.skipped > 0 {
        tangled_obs::registry::add("journal.replay_skipped", summary.skipped as u64);
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_detects_epoch_divergence() {
        let index = StoreIndex::with_reference_profiles();
        let store = ReferenceStore::Aosp44.cached();
        let record = SwapRecord {
            profile: "device".into(),
            epoch: 42, // a cold index's next epoch is 7, not 42
            store: store.snapshot(),
        };
        let err = replay_journal(&index, &[record]).unwrap_err();
        assert_eq!(
            err,
            SnapError::EpochMismatch {
                recorded: 42,
                produced: 7
            }
        );
    }

    #[test]
    fn replay_reproduces_recorded_epochs() {
        let index = StoreIndex::with_reference_profiles();
        let store = ReferenceStore::Mozilla.cached();
        let records = vec![
            SwapRecord {
                profile: "device".into(),
                epoch: 7,
                store: store.snapshot(),
            },
            SwapRecord {
                profile: "AOSP 4.4".into(),
                epoch: 8,
                store: store.snapshot(),
            },
        ];
        replay_journal(&index, &records).unwrap();
        assert_eq!(index.current_epoch(), 8);
        assert_eq!(index.profile("device").unwrap().epoch, 7);
        assert_eq!(index.profile("AOSP 4.4").unwrap().epoch, 8);
    }

    #[test]
    fn replay_skips_records_the_index_already_covers() {
        // The compaction crash window: the checkpoint reached epoch 6,
        // but the untruncated journal still holds frames 5 and 7.
        let index = StoreIndex::with_reference_profiles();
        let store = ReferenceStore::Mozilla.cached();
        let records = vec![
            SwapRecord {
                profile: "device".into(),
                epoch: 5,
                store: store.snapshot(),
            },
            SwapRecord {
                profile: "device".into(),
                epoch: 7,
                store: store.snapshot(),
            },
        ];
        let summary = replay_journal(&index, &records).unwrap();
        assert_eq!(
            summary,
            ReplaySummary {
                replayed: 1,
                skipped: 1
            }
        );
        assert_eq!(index.current_epoch(), 7);
    }

    #[test]
    fn chain_start_reinstalls_folded_swaps_at_recorded_epochs() {
        let store = ReferenceStore::Mozilla.cached();
        let state = TrustState::fold(&[
            SwapRecord {
                profile: "canary".into(),
                epoch: 11,
                store: store.snapshot(),
            },
            SwapRecord {
                profile: "other".into(),
                epoch: 12,
                store: store.snapshot(),
            },
            SwapRecord {
                profile: "canary".into(),
                epoch: 13,
                store: store.snapshot(),
            },
        ]);
        let ckpt = tangled_snap::encode_checkpoint(None, &state).unwrap();
        let dir = std::env::temp_dir().join(format!(
            "tangled-warm-chain-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.ckpt");
        std::fs::write(&path, &ckpt.bytes).unwrap();

        let start = index_from_chain(&[path.to_string_lossy().into_owned()]).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(start.applied, 1);
        assert_eq!(start.index.current_epoch(), 13);
        assert_eq!(start.index.profile("other").unwrap().epoch, 12);
        assert_eq!(start.index.profile("canary").unwrap().epoch, 13);
        // Standard profiles still underneath, at cold-start epochs.
        assert!(start.index.profile("Mozilla").unwrap().epoch <= 10);
        assert_eq!(start.state.unwrap().epoch, 13);
    }
}
