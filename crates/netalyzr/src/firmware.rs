//! Firmware root-store composition.
//!
//! Given a device's manufacturer, OS version and operator, this module
//! derives the root store its firmware ships: the AOSP baseline for the
//! version plus a draw of additional certificates from the Figure 2
//! catalogue. The per-row addition-count distributions are calibrated to
//! Figure 1 of the paper:
//!
//! * 39 % of sessions overall carry additions;
//! * HTC (all versions), Motorola 4.1/4.2, LG 4.1/4.2 and Samsung 4.4
//!   produce devices with **more than 40** additions at >10 % rate;
//! * Motorola 4.3/4.4, Huawei, Sony and ASUS stay **below 10** additions.
//!
//! Identical compositions share one [`RootStore`] allocation via a cache,
//! mirroring reality: devices on the same firmware image have the same
//! store.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;
use std::sync::Arc;
use tangled_pki::extras::{catalogue, ExtraCert};
use tangled_pki::store::RootStore;
use tangled_pki::stores::{global_factory, mint_extra, ReferenceStore};
use tangled_pki::trust::AnchorSource;
use tangled_pki::vocab::{AndroidVersion, Figure2Row, Manufacturer, Operator};

/// Per-(manufacturer, version) firmware behaviour.
#[derive(Debug, Clone, Copy)]
pub struct RowProfile {
    /// Probability that a device has *no* additions at all.
    pub p_none: f64,
    /// Probability (of all devices) that a device carries a big vendor
    /// bundle (40–60 additions).
    pub p_big: f64,
    /// Range of addition counts for ordinary extended devices.
    pub small_range: (usize, usize),
    /// Range for big-bundle devices.
    pub big_range: (usize, usize),
}

/// The calibrated Figure 1 profile for a manufacturer × version cell.
pub fn row_profile(mfr: Manufacturer, ver: AndroidVersion) -> RowProfile {
    use AndroidVersion::*;
    use Manufacturer::*;
    let profile = |p_none: f64, p_big: f64, small: (usize, usize)| RowProfile {
        p_none,
        p_big,
        small_range: small,
        big_range: (41, 60),
    };
    match (mfr, ver) {
        // HTC ships heavily extended firmware on every release.
        (Htc, V4_1) | (Htc, V4_2) => profile(0.10, 0.40, (5, 39)),
        (Htc, V4_3) | (Htc, V4_4) => profile(0.10, 0.12, (4, 30)),
        // Motorola 4.1/4.2 heavy (CertiSign/PTT Post era), 4.3/4.4 near-stock.
        (Motorola, V4_1) | (Motorola, V4_2) => profile(0.15, 0.35, (5, 39)),
        (Motorola, V4_3) | (Motorola, V4_4) => profile(0.70, 0.0, (1, 9)),
        // LG 4.1/4.2 extended, later releases close to AOSP.
        (Lg, V4_1) | (Lg, V4_2) => profile(0.50, 0.20, (3, 35)),
        (Lg, V4_3) | (Lg, V4_4) => profile(0.80, 0.0, (1, 8)),
        // Samsung: 4.1/4.2 lightly touched, 4.3 extended, 4.4 heavily.
        (Samsung, V4_1) | (Samsung, V4_2) => profile(0.75, 0.0, (2, 12)),
        (Samsung, V4_3) => profile(0.50, 0.02, (4, 25)),
        (Samsung, V4_4) => profile(0.45, 0.15, (5, 35)),
        // Near-stock vendors (<10 additions when touched at all).
        (Sony, _) => profile(0.70, 0.0, (1, 9)),
        (Asus, _) => profile(0.85, 0.0, (1, 7)),
        (Huawei, _) => profile(0.80, 0.0, (1, 9)),
        _ => profile(0.70, 0.0, (1, 9)),
    }
}

/// The extras catalogue indexed for composition, built once.
pub struct ExtrasIndex {
    all: Vec<ExtraCert>,
    /// For each catalogue index: the rows it installs on, with frequency.
    by_row: HashMap<Figure2Row, Vec<(usize, f64)>>,
}

impl ExtrasIndex {
    /// Build the index from [`tangled_pki::extras::catalogue`].
    pub fn new() -> ExtrasIndex {
        let all = catalogue();
        let mut by_row: HashMap<Figure2Row, Vec<(usize, f64)>> = HashMap::new();
        for (i, extra) in all.iter().enumerate() {
            for &(row, freq) in &extra.installers {
                by_row.entry(row).or_default().push((i, freq));
            }
        }
        // High-frequency extras first within each row.
        for list in by_row.values_mut() {
            list.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        }
        ExtrasIndex { all, by_row }
    }

    /// The full catalogue.
    pub fn all(&self) -> &[ExtraCert] {
        &self.all
    }

    /// Candidate extras for a device: manufacturer-row extras first, then
    /// operator-row extras, then the rest of the catalogue in stable order.
    fn candidates(
        &self,
        mfr: Manufacturer,
        ver: AndroidVersion,
        op: Operator,
    ) -> Vec<usize> {
        let mut seen = vec![false; self.all.len()];
        let mut out = Vec::new();
        let push_row = |row: Figure2Row, out: &mut Vec<usize>, seen: &mut Vec<bool>| {
            if let Some(list) = self.by_row.get(&row) {
                for &(i, _) in list {
                    if !seen[i] {
                        seen[i] = true;
                        out.push(i);
                    }
                }
            }
        };
        push_row(Figure2Row::Mfr(mfr, ver), &mut out, &mut seen);
        push_row(Figure2Row::Op(op), &mut out, &mut seen);
        for (i, taken) in seen.iter().enumerate() {
            if !taken {
                out.push(i);
            }
        }
        out
    }
}

impl Default for ExtrasIndex {
    fn default() -> Self {
        ExtrasIndex::new()
    }
}

/// Cache of composed firmware stores, keyed by composition fingerprint.
#[derive(Default)]
pub struct FirmwareCache {
    stores: HashMap<(AndroidVersion, Vec<usize>), Arc<RootStore>>,
}

impl FirmwareCache {
    /// An empty cache.
    pub fn new() -> FirmwareCache {
        FirmwareCache::default()
    }

    /// Number of distinct firmware images composed so far.
    pub fn distinct_images(&self) -> usize {
        self.stores.len()
    }
}

/// Draw the number of additional certificates a device of this
/// (manufacturer, version) cell carries. This is the *only* random step of
/// firmware composition — splitting it out lets the population generator
/// run the draws on per-device sub-RNGs in parallel and materialise the
/// stores afterwards through the shared cache in device order.
pub fn draw_addition_count(mfr: Manufacturer, ver: AndroidVersion, rng: &mut StdRng) -> usize {
    let profile = row_profile(mfr, ver);
    let roll: f64 = rng.gen();
    if roll < profile.p_none {
        0
    } else if roll < profile.p_none + profile.p_big {
        rng.gen_range(profile.big_range.0..=profile.big_range.1)
    } else {
        rng.gen_range(profile.small_range.0..=profile.small_range.1)
    }
}

/// Compose (or fetch) the firmware store for a device.
///
/// `rng` drives the addition-count draw; the *set* of extras for a given
/// count is deterministic in (manufacturer, version, operator), so devices
/// of the same cell and count share an image.
pub fn compose(
    index: &ExtrasIndex,
    cache: &mut FirmwareCache,
    mfr: Manufacturer,
    ver: AndroidVersion,
    op: Operator,
    rng: &mut StdRng,
) -> Arc<RootStore> {
    let count = draw_addition_count(mfr, ver, rng);
    compose_with_count(index, cache, mfr, ver, op, count)
}

/// Materialise the firmware store for an already-drawn addition count.
/// Pure in its arguments (no RNG): callers that pre-draw counts in
/// parallel feed them through here sequentially for deterministic
/// [`Arc`]-sharing of identical images.
pub fn compose_with_count(
    index: &ExtrasIndex,
    cache: &mut FirmwareCache,
    mfr: Manufacturer,
    ver: AndroidVersion,
    op: Operator,
    count: usize,
) -> Arc<RootStore> {
    if count == 0 {
        return ReferenceStore::for_version(ver).cached();
    }

    let candidates = index.candidates(mfr, ver, op);
    let chosen: Vec<usize> = candidates.into_iter().take(count).collect();
    let key = (ver, chosen.clone());
    if let Some(store) = cache.stores.get(&key) {
        return Arc::clone(store);
    }

    // The name carries a digest of the chosen extras set: two images of
    // the same version and count can differ by operator-contributed
    // extras, and downstream fault plans address stores *by name*, so
    // every distinct composition needs a distinct name.
    let mut fp = Vec::with_capacity(8 + chosen.len() * 8);
    fp.extend_from_slice(ver.label().as_bytes());
    for &i in &chosen {
        fp.extend_from_slice(&(i as u64).to_be_bytes());
    }
    let h = tangled_crypto::sha256::sha256(&fp);
    let base = ReferenceStore::for_version(ver).cached();
    let mut store = base.cloned_as(&format!(
        "{} {} firmware (+{}) [{:02x}{:02x}{:02x}{:02x}]",
        mfr.label(),
        ver.label(),
        count,
        h[0],
        h[1],
        h[2],
        h[3]
    ));
    {
        let mut factory = global_factory().lock().expect("factory poisoned");
        for &i in &chosen {
            let extra = &index.all()[i];
            let source = if extra
                .installers
                .iter()
                .any(|(row, _)| matches!(row, Figure2Row::Op(_)))
            {
                AnchorSource::Operator
            } else {
                AnchorSource::Manufacturer
            };
            store.add_cert(mint_extra(&mut factory, extra), source);
        }
    }
    let store = Arc::new(store);
    cache.stores.insert(key, Arc::clone(&store));
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn stock_devices_share_the_reference_store() {
        let index = ExtrasIndex::new();
        let mut cache = FirmwareCache::new();
        let mut rng = StdRng::seed_from_u64(1);
        // ASUS is 85% stock: drawing a few devices must hit the cached
        // AOSP store object for the stock ones.
        let mut stock = 0;
        for _ in 0..50 {
            let s = compose(
                &index,
                &mut cache,
                Manufacturer::Asus,
                AndroidVersion::V4_3,
                Operator::Other,
                &mut rng,
            );
            if s.len() == 146 {
                stock += 1;
                assert!(Arc::ptr_eq(&s, &ReferenceStore::Aosp43.cached()));
            }
        }
        assert!(stock > 30, "most ASUS devices are stock, got {stock}");
    }

    #[test]
    fn heavy_rows_produce_big_bundles() {
        let index = ExtrasIndex::new();
        let mut cache = FirmwareCache::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut big = 0;
        let n = 200;
        for _ in 0..n {
            let s = compose(
                &index,
                &mut cache,
                Manufacturer::Htc,
                AndroidVersion::V4_1,
                Operator::ThreeUk,
                &mut rng,
            );
            let additions = s.len() - 139;
            if additions > 40 {
                big += 1;
            }
        }
        // Paper: >10% of such devices exceed 40 additions (we calibrate ~40%).
        assert!(
            big as f64 / n as f64 > 0.10,
            "expected >10% big bundles, got {big}/{n}"
        );
    }

    #[test]
    fn near_stock_rows_stay_below_10() {
        let index = ExtrasIndex::new();
        let mut cache = FirmwareCache::new();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = compose(
                &index,
                &mut cache,
                Manufacturer::Motorola,
                AndroidVersion::V4_4,
                Operator::VerizonUs,
                &mut rng,
            );
            assert!(s.len() - 150 < 10, "Motorola 4.4 must stay near stock");
        }
    }

    #[test]
    fn verizon_motorola_41_gets_certisign() {
        // §5.1: CertiSign and ptt-post on Verizon Motorola 4.1 devices.
        let index = ExtrasIndex::new();
        let mut cache = FirmwareCache::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut certisign_devices = 0;
        let mut extended = 0;
        for _ in 0..100 {
            let s = compose(
                &index,
                &mut cache,
                Manufacturer::Motorola,
                AndroidVersion::V4_1,
                Operator::VerizonUs,
                &mut rng,
            );
            if s.len() > 139 {
                extended += 1;
                if s.iter().any(|a| a.cert.subject.to_string().contains("Certisign")) {
                    certisign_devices += 1;
                }
            }
        }
        assert!(extended > 50);
        assert!(
            certisign_devices * 2 > extended,
            "most extended Verizon Moto 4.1 devices carry Certisign: {certisign_devices}/{extended}"
        );
    }

    #[test]
    fn firmware_images_are_shared() {
        let index = ExtrasIndex::new();
        let mut cache = FirmwareCache::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..300 {
            compose(
                &index,
                &mut cache,
                Manufacturer::Samsung,
                AndroidVersion::V4_4,
                Operator::TmobileUs,
                &mut rng,
            );
        }
        // Addition counts cluster, so images are far fewer than devices.
        assert!(cache.distinct_images() < 60);
    }

    #[test]
    fn extras_index_covers_catalogue() {
        let index = ExtrasIndex::new();
        assert_eq!(index.all().len(), 104);
        let cands = index.candidates(
            Manufacturer::Htc,
            AndroidVersion::V4_1,
            Operator::AttUs,
        );
        assert_eq!(cands.len(), 104, "candidates cover the whole catalogue");
        // First candidates are HTC-row extras.
        let first = &index.all()[cands[0]];
        assert!(first
            .installers
            .iter()
            .any(|(r, _)| *r == Figure2Row::Mfr(Manufacturer::Htc, AndroidVersion::V4_1)));
    }
}
