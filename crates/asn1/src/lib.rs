//! `tangled-asn1` — a strict DER (Distinguished Encoding Rules) codec.
//!
//! X.509 certificates are DER structures; the measurement methodology of the
//! paper (certificate identity from subject + RSA modulus, signature-string
//! comparison, manual subject/issuer inspection) all operate on parsed DER.
//! The offline dependency allowlist has no ASN.1 crate, so this one
//! implements the subset of DER that X.509 v3 requires, from scratch:
//!
//! * tag/length/value framing with definite lengths ([`reader`], [`writer`]),
//! * INTEGER (arbitrary precision, via big-endian byte strings), BOOLEAN,
//!   NULL, OBJECT IDENTIFIER, BIT STRING, OCTET STRING,
//! * UTF8String / PrintableString / IA5String,
//! * SEQUENCE, SET, and context-specific constructed tags,
//! * UTCTime and GeneralizedTime ([`time`]).
//!
//! Parsing is strict: indefinite lengths, non-minimal lengths, and trailing
//! garbage are all rejected, as RFC 5280 demands of DER consumers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod oid;
pub mod reader;
pub mod tag;
pub mod time;
pub mod writer;

pub use oid::Oid;
pub use reader::DerReader;
pub use tag::{Tag, TagClass};
pub use time::Time;
pub use writer::DerWriter;

/// Errors produced while reading DER.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Asn1Error {
    /// Input ended before a complete TLV was read.
    Truncated,
    /// A length field was indefinite or not minimally encoded.
    BadLength,
    /// The tag encountered did not match what the caller expected.
    UnexpectedTag {
        /// Tag the caller required.
        expected: Tag,
        /// Tag actually present in the input.
        actual: Tag,
    },
    /// Content bytes violate the type's encoding rules (e.g. a non-minimal
    /// INTEGER, an invalid OID, an out-of-range time).
    BadValue(&'static str),
    /// Bytes remained after the caller finished reading a structure.
    TrailingData,
    /// High tag numbers (>= 31) are not used by X.509 and are unsupported.
    UnsupportedTag,
}

impl std::fmt::Display for Asn1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Asn1Error::Truncated => write!(f, "truncated DER input"),
            Asn1Error::BadLength => write!(f, "invalid DER length encoding"),
            Asn1Error::UnexpectedTag { expected, actual } => {
                write!(f, "unexpected tag: expected {expected:?}, found {actual:?}")
            }
            Asn1Error::BadValue(what) => write!(f, "invalid DER value: {what}"),
            Asn1Error::TrailingData => write!(f, "trailing data after DER structure"),
            Asn1Error::UnsupportedTag => write!(f, "unsupported high tag number"),
        }
    }
}

impl std::error::Error for Asn1Error {}

#[cfg(test)]
mod round_trip_tests {
    use super::*;

    #[test]
    fn nested_structure_round_trip() {
        // SEQUENCE { INTEGER 5, SEQUENCE { UTF8String "hi" }, BOOLEAN true }
        let mut w = DerWriter::new();
        w.sequence(|w| {
            w.integer_bytes(&[5]);
            w.sequence(|w| {
                w.utf8_string("hi");
            });
            w.boolean(true);
        });
        let bytes = w.into_bytes();

        let mut r = DerReader::new(&bytes);
        let mut seq = r.read_sequence().unwrap();
        assert_eq!(seq.read_integer_bytes().unwrap(), vec![5]);
        let mut inner = seq.read_sequence().unwrap();
        assert_eq!(inner.read_string().unwrap(), "hi");
        inner.finish().unwrap();
        assert!(seq.read_boolean().unwrap());
        seq.finish().unwrap();
        r.finish().unwrap();
    }
}
