//! `tangled-netalyzr` — a calibrated simulator of the paper's Netalyzr
//! for Android dataset.
//!
//! The real dataset (15,970 sessions, ≥3,835 handsets, 435 device models,
//! Nov 2013 – Apr 2014) is closed; this crate generates a synthetic
//! population with the same marginal structure so every downstream analysis
//! runs on realistic input:
//!
//! * manufacturer and device-model session mix of **Table 2** (Samsung
//!   7,709 sessions, LG 2,908, ASUS 1,876, HTC 963, Motorola 837; Galaxy
//!   S4/S3, Nexus 4/5/7 on top);
//! * per-(manufacturer, OS version) firmware profiles that reproduce
//!   **Figure 1**: 39 % of sessions carry additional certificates, the
//!   heavy rows (HTC 4.1/4.2, Motorola 4.1/4.2, LG 4.1/4.2, Samsung 4.4)
//!   exceed 40 additions on >10 % of their devices, Motorola 4.3/4.4 /
//!   Huawei / Sony / ASUS stay below 10, and exactly 5 handsets are
//!   *missing* AOSP certificates;
//! * the extras installed per firmware come from the Figure 2 catalogue in
//!   [`tangled_pki::extras`], honouring its pinned provenance narrative;
//! * rooting (**§6**): 24 % of sessions run on rooted handsets; ~6 % of
//!   rooted sessions expose rooted-only certificates, dominated by the
//!   Freedom app's CRAZY HOUSE CA on 70 devices (Table 5);
//! * the §5.2 "unusual certificates" sprinkled on a handful of devices.
//!
//! Everything is deterministic in the [`population::PopulationSpec`] seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod firmware;
pub mod population;
pub mod rooted;
pub mod session;

pub use device::{Device, DeviceId};
pub use population::{Population, PopulationSpec};
pub use session::Session;
