//! Figures 1–3: print each regenerated figure's data series, then
//! benchmark its computation.
//!
//! ```text
//! cargo bench --bench paper_figures
//! ```

use criterion::{black_box, Criterion};
use tangled_bench::{criterion, ECOSYSTEM_SCALE, POPULATION_SCALE};
use tangled_core::classify::{addition_class_distribution, headline_stats};
use tangled_core::figures;
use tangled_core::Study;
use tangled_pki::extras::Figure2Class;

fn main() {
    eprintln!(
        "[paper_figures] generating study (population ×{POPULATION_SCALE}, \
         ecosystem ×{ECOSYSTEM_SCALE})…"
    );
    let study = Study::new(POPULATION_SCALE, ECOSYSTEM_SCALE);

    // ---- Figure 1 ---------------------------------------------------------
    println!("{}", figures::figure1_render(&study.population, 20));
    let summary = figures::figure1_summary(&study.population);
    println!(
        "figure1 headline: {:.1}% of sessions extended (paper: 39%); \
         {} devices missing certs (paper: 5)\n",
        summary.extended_session_fraction * 100.0,
        summary.missing_devices
    );

    // ---- Figure 2 ---------------------------------------------------------
    println!("{}", figures::figure2_render(&study.population, 20));
    let cells = figures::figure2(&study.population);
    let dist = figures::figure2_class_distribution(&cells);
    println!("figure2 classes (paper: 6.7 / 16.2 / 37.1 / 40.0):");
    for class in [
        Figure2Class::MozillaAndIos7,
        Figure2Class::Ios7,
        Figure2Class::OnlyAndroid,
        Figure2Class::NotRecorded,
    ] {
        println!(
            "  {:<30} {:>5.1}%",
            class.label(),
            dist.get(&class).copied().unwrap_or(0.0) * 100.0
        );
    }
    println!();

    // ---- Figure 3 ---------------------------------------------------------
    println!("{}", figures::figure3_render(&study.validation));

    // ---- §5/§6 headline statistics ---------------------------------------
    let stats = headline_stats(&study.population);
    println!(
        "headlines: extended {:.1}% | rooted {:.1}% | rooted-only {:.1}% of rooted",
        stats.extended_session_fraction * 100.0,
        stats.rooted_session_fraction * 100.0,
        stats.rooted_only_share_of_rooted * 100.0,
    );

    // ---- benchmarks --------------------------------------------------------
    let mut c: Criterion = criterion();
    c.bench_function("fig1_scatter/aggregate_points", |b| {
        b.iter(|| black_box(figures::figure1(&study.population).len()))
    });
    c.bench_function("fig2_matrix/presence_cells", |b| {
        b.iter(|| black_box(figures::figure2(&study.population).len()))
    });
    c.bench_function("fig3_ecdf/series", |b| {
        b.iter(|| black_box(figures::figure3(&study.validation).len()))
    });
    c.bench_function("headline_stats/full_pass", |b| {
        b.iter(|| black_box(headline_stats(&study.population)))
    });
    c.bench_function("headline_stats/class_distribution", |b| {
        b.iter(|| black_box(addition_class_distribution(&study.population).len()))
    });
    c.final_summary();
}
