//! trustd: a concurrent trust-decision query service over the
//! root-store corpus.
//!
//! The analysis crates answer trust questions in batch — build a study,
//! run it, read the tables. `trustd` turns the same decision machinery
//! into a long-lived query service: a multi-threaded TCP server (std
//! only, no async runtime) speaking a length-prefixed JSON protocol with
//! four request types mirroring the paper's four measurement angles:
//!
//! * `validate` — chain validation against a named device store profile
//!   (§4's per-store validation counts, one chain at a time);
//! * `classify` — extra-root classification per the Figure 2 taxonomy;
//! * `audit` — cacerts snapshot diff against an AOSP baseline (§5);
//! * `probe` — interception verdict for a presented chain (§7).
//!
//! Three properties carry over from the batch pipeline:
//!
//! * **Determinism** — the service is a pure function of its request
//!   sequence (modulo latency numbers), so a seeded replay through the
//!   server must match the same requests handled offline, byte for byte.
//! * **Graceful degradation** — malformed wire input is quarantined
//!   under the PR-1 `(stage, error)` vocabulary and answered with a
//!   classified `error` reply; connections are not dropped for bad
//!   *messages*, only for unrecoverable *framing* faults.
//! * **Shared substrate** — verification memoisation uses the same
//!   [`tangled_x509::ChainKey`] as the batch validation counter; store
//!   profiles are plain [`tangled_pki::store::RootStore`] snapshots.

pub mod cache;
pub mod chaos;
pub mod client;
pub mod event;
pub mod index;
pub mod replay;
pub mod resilient;
pub mod server;
pub mod service;
pub mod stats;
pub mod warm;
pub mod wire;

pub use cache::LruCache;
pub use chaos::{ChaosReport, ChaosSpec, ServeCore};
pub use client::{ClientError, TrustClient};
pub use event::{serve_stream, EventServer};
pub use index::{StoreIndex, StoreProfile};
pub use replay::{
    canonical, offline_verdicts, queries_for, replay, replay_pipelined, replay_resilient,
    scale_for_sessions, verdict_fingerprint, ReplayOp, ReplayOutcome, ReplaySpec,
    ResilientOutcome, BATCH_DEPTH,
};
pub use resilient::{
    Connect, ResilientClient, ResilientError, RetryPolicy, SwapOutcome, TcpConnector,
};
pub use server::{ServerConfig, TrustServer};
pub use service::{TrustService, DEFAULT_CACHE_CAPACITY};
pub use stats::{LatencyHistogram, ServiceStats};
pub use warm::{
    degraded_index_from_snapshot, index_from_chain, index_from_snapshot, replay_journal,
    ChainStart, DegradedStart, ReplaySummary,
};
pub use wire::{ChainVerdict, FrameError, Request, Response, WireError, MAX_FRAME};
