//! A retrying client wrapper: bounded attempts, deterministic seeded
//! backoff, and idempotency-aware recovery.
//!
//! [`ResilientClient`] wraps the plain [`TrustClient`] with the retry
//! discipline the chaos tests demand:
//!
//! * **Bounded retries with seeded backoff.** Every transport failure or
//!   explicit `busy` shed is retried up to [`RetryPolicy::max_attempts`]
//!   times, sleeping an exponentially growing, jittered delay between
//!   attempts. The jitter is drawn from a seeded RNG, so a simulated run
//!   retries at exactly the same points every time.
//! * **Idempotency rules.** Pure queries (`validate`, `classify`,
//!   `audit`, `probe`, `stats`) are blindly retryable — running one twice
//!   is indistinguishable from once. `swap` is not: an ambiguous
//!   transport failure leaves "did it land?" unknown, so instead of
//!   re-sending, [`ResilientClient::swap`] re-reads the profile's epoch
//!   from the server's stats document (PR 5 made every install bump it)
//!   and treats an advanced epoch as proof the swap applied.
//! * **Classified exhaustion.** When retries run out the caller gets a
//!   [`ResilientError`] naming the terminal fault — shed, or a transport
//!   label — never a bare hang.

use crate::client::{ClientError, TrustClient};
use crate::wire::{Request, Response};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;
use tangled_obs::registry as metrics;

/// Retry schedule: attempt budget plus seeded exponential backoff.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per logical request (first try included).
    pub max_attempts: u32,
    /// Delay before the second attempt; doubles per retry.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Jitter seed: same seed, same delays.
    pub seed: u64,
}

impl RetryPolicy {
    /// The serving default: 4 attempts, 50 ms base, 2 s ceiling.
    pub fn new(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            seed,
        }
    }

    /// Zero-delay variant for tests and in-process simulation: same
    /// attempt accounting, no wall-clock sleeps.
    pub fn immediate(seed: u64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            seed,
        }
    }

    /// The delay before retry number `attempt` (1 = first retry):
    /// exponential growth capped at `max_delay`, jittered uniformly into
    /// `[half, full]` so synchronized clients decorrelate.
    fn delay(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        if self.base_delay.is_zero() {
            return Duration::ZERO;
        }
        let exp = self
            .base_delay
            .saturating_mul(1u32 << (attempt.saturating_sub(1)).min(16))
            .min(self.max_delay);
        let micros = exp.as_micros() as u64;
        if micros == 0 {
            return Duration::ZERO;
        }
        Duration::from_micros(rng.gen_range(micros / 2..=micros))
    }
}

/// How a [`ResilientClient`] obtains connections. Implementations decide
/// the transport: real TCP ([`TcpConnector`]), TCP under a chaos wrapper,
/// or fully simulated streams in tests.
pub trait Connect {
    /// The stream type of produced connections.
    type Stream: Read + Write;

    /// Open one connection, ready to carry calls.
    fn connect(&mut self) -> io::Result<TrustClient<Self::Stream>>;
}

/// Plain TCP connections to a fixed address.
#[derive(Debug, Clone)]
pub struct TcpConnector {
    /// The server address.
    pub addr: SocketAddr,
    /// Optional reply-deadline override (consecutive idle ticks).
    pub response_ticks: Option<u32>,
}

impl TcpConnector {
    /// A connector for `addr` with default deadlines.
    pub fn new(addr: SocketAddr) -> TcpConnector {
        TcpConnector {
            addr,
            response_ticks: None,
        }
    }
}

impl Connect for TcpConnector {
    type Stream = TcpStream;

    fn connect(&mut self) -> io::Result<TrustClient<TcpStream>> {
        let mut client = TrustClient::connect(self.addr)?;
        if let Some(ticks) = self.response_ticks {
            client.set_response_ticks(ticks);
        }
        Ok(client)
    }
}

/// Why a resilient call gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResilientError {
    /// Every attempt was shed with an explicit `busy` reply.
    Shed {
        /// Attempts made.
        attempts: u32,
    },
    /// Retries exhausted on a classified transport fault.
    Exhausted {
        /// The terminal fault label (`disconnect`, `timeout`,
        /// `transport`, `protocol`, `connect-failed`).
        label: &'static str,
        /// Attempts made.
        attempts: u32,
    },
}

impl std::fmt::Display for ResilientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResilientError::Shed { attempts } => {
                write!(f, "shed with busy after {attempts} attempts")
            }
            ResilientError::Exhausted { label, attempts } => {
                write!(f, "gave up after {attempts} attempts: {label}")
            }
        }
    }
}

impl std::error::Error for ResilientError {}

/// Outcome of a resilient `swap`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapOutcome {
    /// The profile installed.
    pub profile: String,
    /// Its epoch after the swap.
    pub epoch: u64,
    /// Anchor count, when the server's reply was observed directly
    /// (`None` after an epoch re-sync — the reply was lost in transit).
    pub anchors: Option<usize>,
    /// True when the install was confirmed by epoch re-sync rather than
    /// by the swap reply itself.
    pub resynced: bool,
}

/// A [`TrustClient`] with retries, backoff and idempotency rules.
pub struct ResilientClient<C: Connect> {
    connector: C,
    policy: RetryPolicy,
    rng: StdRng,
    conn: Option<TrustClient<C::Stream>>,
    retries: u64,
    busy: u64,
    resyncs: u64,
    reconnects: u64,
}

impl<C: Connect> ResilientClient<C> {
    /// Wrap `connector` under `policy`.
    pub fn new(connector: C, policy: RetryPolicy) -> ResilientClient<C> {
        let rng = StdRng::seed_from_u64(policy.seed);
        ResilientClient {
            connector,
            policy,
            rng,
            conn: None,
            retries: 0,
            busy: 0,
            resyncs: 0,
            reconnects: 0,
        }
    }

    /// Retries performed (attempts beyond the first, all calls).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// `busy` sheds received.
    pub fn busy_count(&self) -> u64 {
        self.busy
    }

    /// Swaps confirmed by epoch re-sync.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Connections opened.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Issue one request with the full retry discipline. `swap` requests
    /// are routed through [`ResilientClient::swap`] (epoch re-sync, never
    /// a blind retry); everything else retries directly.
    pub fn call(&mut self, req: &Request) -> Result<Response, ResilientError> {
        if let Request::Swap { profile, snapshot } = req {
            let outcome = self.swap(profile, snapshot)?;
            return Ok(Response::Swap {
                profile: outcome.profile,
                epoch: outcome.epoch,
                anchors: outcome.anchors.unwrap_or(0),
            });
        }
        debug_assert!(req.is_idempotent());
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.try_once(req) {
                Ok(Response::Busy) => {
                    if attempt >= self.policy.max_attempts {
                        return Err(ResilientError::Shed { attempts: attempt });
                    }
                }
                Ok(resp) => return Ok(resp),
                Err(label) => {
                    if attempt >= self.policy.max_attempts {
                        return Err(ResilientError::Exhausted {
                            label,
                            attempts: attempt,
                        });
                    }
                }
            }
            self.note_retry(attempt);
        }
    }

    /// Issue an idempotent request chunk as one pipelined burst, with the
    /// full retry discipline applied to the *chunk*: every request in it
    /// must be idempotent (a transport fault mid-burst leaves unknown
    /// which requests executed, so the whole chunk is re-sent — harmless
    /// for pure reads, which is why `swap` is excluded). An admission
    /// shed (`busy`) likewise retries the whole chunk on a fresh
    /// connection. Replies come back in request order.
    pub fn call_pipelined(
        &mut self,
        reqs: &[Request],
    ) -> Result<Vec<Response>, ResilientError> {
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        debug_assert!(reqs.iter().all(Request::is_idempotent));
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.try_pipeline_once(reqs) {
                Ok(Some(replies)) => return Ok(replies),
                Ok(None) => {
                    if attempt >= self.policy.max_attempts {
                        return Err(ResilientError::Shed { attempts: attempt });
                    }
                }
                Err(label) => {
                    if attempt >= self.policy.max_attempts {
                        return Err(ResilientError::Exhausted {
                            label,
                            attempts: attempt,
                        });
                    }
                }
            }
            self.note_retry(attempt);
        }
    }

    /// One pipelined attempt. `Ok(None)` is an admission shed (the burst
    /// was answered with `busy`); any failure tears the connection down.
    fn try_pipeline_once(
        &mut self,
        reqs: &[Request],
    ) -> Result<Option<Vec<Response>>, &'static str> {
        if self.conn.is_none() {
            match self.connector.connect() {
                Ok(client) => {
                    self.reconnects += 1;
                    self.conn = Some(client);
                }
                Err(_) => return Err("connect-failed"),
            }
        }
        let client = self.conn.as_mut().expect("connection just ensured");
        match client.pipeline(reqs) {
            Ok(replies)
                if replies.last().is_some_and(|r| matches!(r, Response::Busy)) =>
            {
                self.busy += 1;
                metrics::add("trustd.client.busy", 1);
                self.conn = None;
                Ok(None)
            }
            Ok(replies) if replies.len() == reqs.len() => Ok(Some(replies)),
            // Short reply vector without a busy cannot happen (pipeline
            // only truncates on shed) — classify defensively.
            Ok(_) => {
                self.conn = None;
                Err("protocol")
            }
            Err(e) => {
                self.conn = None;
                Err(classify(&e))
            }
        }
    }

    /// Install a store profile without ever blind-retrying the mutation.
    ///
    /// Before each attempt the profile's current epoch is read from the
    /// server's stats document. If the attempt then fails ambiguously
    /// (transport error after the request may have been sent), the epoch
    /// is re-read: an advance proves the swap landed — the outcome is
    /// reported as `resynced` instead of re-sending. Only a provably
    /// un-applied swap (epoch unchanged) is attempted again.
    pub fn swap(
        &mut self,
        profile: &str,
        snapshot: &tangled_pki::store::StoreSnapshot,
    ) -> Result<SwapOutcome, ResilientError> {
        let req = Request::Swap {
            profile: profile.to_owned(),
            snapshot: snapshot.clone(),
        };
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let before = self.profile_epoch(profile)?;
            match self.try_once(&req) {
                Ok(Response::Swap {
                    profile,
                    epoch,
                    anchors,
                }) => {
                    return Ok(SwapOutcome {
                        profile,
                        epoch,
                        anchors: Some(anchors),
                        resynced: false,
                    });
                }
                Ok(Response::Busy) => {
                    // Shed at admission: the request was never read, so
                    // retrying is safe.
                    if attempt >= self.policy.max_attempts {
                        return Err(ResilientError::Shed { attempts: attempt });
                    }
                }
                Ok(other) => {
                    // A classified rejection (`error` reply) or a
                    // mismatched response type: the server answered, the
                    // swap did not apply. Surface it via epoch logic? No —
                    // hand the response back as a terminal protocol fault.
                    let _ = other;
                    return Err(ResilientError::Exhausted {
                        label: "rejected",
                        attempts: attempt,
                    });
                }
                Err(_label) => {
                    // Ambiguous: the swap may or may not have landed.
                    // Re-sync on the epoch instead of re-sending.
                    let after = self.profile_epoch(profile)?;
                    if after > before {
                        self.resyncs += 1;
                        metrics::add("trustd.client.resyncs", 1);
                        return Ok(SwapOutcome {
                            profile: profile.to_owned(),
                            epoch: after,
                            anchors: None,
                            resynced: true,
                        });
                    }
                    // Provably not applied: safe to try again.
                    if attempt >= self.policy.max_attempts {
                        return Err(ResilientError::Exhausted {
                            label: "swap-unconfirmed",
                            attempts: attempt,
                        });
                    }
                }
            }
            self.note_retry(attempt);
        }
    }

    /// The server's current epoch for `profile` (0 when unknown), via an
    /// idempotent — and therefore itself retried — stats call.
    fn profile_epoch(&mut self, profile: &str) -> Result<u64, ResilientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(doc) => {
                Ok(doc["index"]["profiles"][profile].as_u64().unwrap_or(0))
            }
            _ => Ok(0),
        }
    }

    /// One attempt: connect if needed, send, classify failures. Any
    /// failure (and any `busy`) tears the connection down so the next
    /// attempt starts fresh.
    fn try_once(&mut self, req: &Request) -> Result<Response, &'static str> {
        if self.conn.is_none() {
            match self.connector.connect() {
                Ok(client) => {
                    self.reconnects += 1;
                    self.conn = Some(client);
                }
                Err(_) => return Err("connect-failed"),
            }
        }
        let client = self.conn.as_mut().expect("connection just ensured");
        match client.call(req) {
            Ok(Response::Busy) => {
                self.busy += 1;
                metrics::add("trustd.client.busy", 1);
                self.conn = None;
                Ok(Response::Busy)
            }
            Ok(resp) => Ok(resp),
            Err(e) => {
                self.conn = None;
                Err(classify(&e))
            }
        }
    }

    /// Count a retry and sleep the seeded backoff.
    fn note_retry(&mut self, attempt: u32) {
        self.retries += 1;
        metrics::add("trustd.client.retries", 1);
        let delay = self.policy.delay(attempt, &mut self.rng);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
    }
}

/// Stable label for a transport-layer client failure.
fn classify(e: &ClientError) -> &'static str {
    match e {
        ClientError::Io(_) => "transport",
        ClientError::Protocol(_) => "protocol",
        ClientError::Closed => "disconnect",
        ClientError::TimedOut => "timeout",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire;
    use serde_json::json;
    use std::collections::VecDeque;

    /// A scripted connection: ignores writes, serves a fixed reply byte
    /// stream, then reports clean EOF.
    struct Scripted {
        reply: Vec<u8>,
        pos: usize,
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pos >= self.reply.len() {
                return Ok(0);
            }
            let n = buf.len().min(self.reply.len() - self.pos);
            buf[..n].copy_from_slice(&self.reply[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    impl Write for Scripted {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// Hands out scripted connections in order; connect fails when the
    /// script runs dry.
    struct ScriptConnector {
        scripts: VecDeque<Vec<u8>>,
    }

    impl Connect for ScriptConnector {
        type Stream = Scripted;

        fn connect(&mut self) -> io::Result<TrustClient<Scripted>> {
            match self.scripts.pop_front() {
                Some(reply) => Ok(TrustClient::from_stream(Scripted { reply, pos: 0 })),
                None => Err(io::Error::new(io::ErrorKind::ConnectionRefused, "dry")),
            }
        }
    }

    fn framed(resps: &[Response]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in resps {
            wire::write_frame(&mut out, &r.encode()).unwrap();
        }
        out
    }

    fn stats_with_epoch(profile: &str, epoch: u64) -> Response {
        Response::Stats(json!({
            "index": { "profiles": { profile: epoch } },
        }))
    }

    #[test]
    fn busy_then_success_retries_through() {
        let connector = ScriptConnector {
            scripts: VecDeque::from(vec![
                framed(&[Response::Busy]),
                framed(&[Response::Probe {
                    verdict: "clean".into(),
                }]),
            ]),
        };
        let mut client = ResilientClient::new(connector, RetryPolicy::immediate(7));
        let resp = client
            .call(&Request::Probe {
                profile: "AOSP 4.4".into(),
                target: "gmail.com:443".into(),
                chain: vec![],
                pinned: false,
            })
            .expect("retried past the shed");
        assert!(matches!(resp, Response::Probe { .. }));
        assert_eq!(client.busy_count(), 1);
        assert_eq!(client.retries(), 1);
        assert_eq!(client.reconnects(), 2);
    }

    #[test]
    fn shed_pipelined_chunk_retries_whole_burst() {
        // Connection 1 sheds the burst with one busy frame; connection 2
        // answers both requests. The whole chunk is re-sent — replies
        // stay aligned with requests.
        let connector = ScriptConnector {
            scripts: VecDeque::from(vec![
                framed(&[Response::Busy]),
                framed(&[
                    Response::Stats(json!({"a": 1u64})),
                    Response::Stats(json!({"b": 2u64})),
                ]),
            ]),
        };
        let mut client = ResilientClient::new(connector, RetryPolicy::immediate(7));
        let replies = client
            .call_pipelined(&[Request::Stats, Request::Stats])
            .expect("retried past the shed");
        assert_eq!(replies.len(), 2);
        assert!(replies.iter().all(|r| matches!(r, Response::Stats(_))));
        assert_eq!(client.busy_count(), 1);
        assert_eq!(client.reconnects(), 2);
    }

    #[test]
    fn torn_pipelined_chunk_is_resent_in_full() {
        // Connection 1 delivers only the first of two replies before
        // closing: which requests executed is unknown, so the idempotent
        // chunk is re-sent whole on connection 2.
        let connector = ScriptConnector {
            scripts: VecDeque::from(vec![
                framed(&[Response::Stats(json!({"partial": true}))]),
                framed(&[
                    Response::Stats(json!({"a": 1u64})),
                    Response::Stats(json!({"b": 2u64})),
                ]),
            ]),
        };
        let mut client = ResilientClient::new(connector, RetryPolicy::immediate(7));
        let replies = client
            .call_pipelined(&[Request::Stats, Request::Stats])
            .expect("resent after the torn burst");
        assert_eq!(replies.len(), 2);
        assert_eq!(client.retries(), 1);
        assert_eq!(client.reconnects(), 2);
    }

    #[test]
    fn exhaustion_is_classified() {
        // Every connection closes without replying.
        let connector = ScriptConnector {
            scripts: VecDeque::from(vec![Vec::new(), Vec::new(), Vec::new(), Vec::new()]),
        };
        let mut client = ResilientClient::new(connector, RetryPolicy::immediate(7));
        match client.call(&Request::Stats) {
            Err(ResilientError::Exhausted { label, attempts }) => {
                assert_eq!(label, "disconnect");
                assert_eq!(attempts, 4);
            }
            other => panic!("expected exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn ambiguous_swap_resyncs_via_epoch_not_blind_retry() {
        use tangled_pki::store::RootStore;
        let profile = "AOSP 4.4";
        // Connection 1 answers the pre-swap stats probe (epoch 6), then
        // closes before replying to the swap itself — the ambiguous case.
        // Connection 2 answers the post-failure stats probe with epoch 7:
        // the swap landed. No third connection exists, so a blind re-send
        // of the swap would fail the test.
        let connector = ScriptConnector {
            scripts: VecDeque::from(vec![
                framed(&[stats_with_epoch(profile, 6)]),
                framed(&[stats_with_epoch(profile, 7)]),
            ]),
        };
        let mut client = ResilientClient::new(connector, RetryPolicy::immediate(7));
        let outcome = client
            .swap(profile, &RootStore::new("x").snapshot())
            .expect("resynced");
        assert!(outcome.resynced);
        assert_eq!(outcome.epoch, 7);
        assert_eq!(outcome.anchors, None);
        assert_eq!(client.resyncs(), 1);
    }

    #[test]
    fn unapplied_swap_is_retried_then_confirmed() {
        use tangled_pki::store::RootStore;
        let profile = "AOSP 4.4";
        // Conn 1: pre-swap stats (epoch 6), then closes (swap lost).
        // Conn 2: post-failure stats still 6 — provably not applied.
        // Conn 3: second attempt's pre-swap stats (6) and the swap reply.
        let connector = ScriptConnector {
            scripts: VecDeque::from(vec![
                framed(&[stats_with_epoch(profile, 6)]),
                framed(&[stats_with_epoch(profile, 6)]),
                framed(&[
                    stats_with_epoch(profile, 6),
                    Response::Swap {
                        profile: profile.into(),
                        epoch: 7,
                        anchors: 0,
                    },
                ]),
            ]),
        };
        let mut client = ResilientClient::new(connector, RetryPolicy::immediate(7));
        let outcome = client
            .swap(profile, &RootStore::new("x").snapshot())
            .expect("second attempt succeeds");
        assert!(!outcome.resynced);
        assert_eq!(outcome.epoch, 7);
        assert_eq!(outcome.anchors, Some(0));
        assert_eq!(client.resyncs(), 0);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::new(42);
        let mut a = StdRng::seed_from_u64(policy.seed);
        let mut b = StdRng::seed_from_u64(policy.seed);
        for attempt in 1..=8 {
            let da = policy.delay(attempt, &mut a);
            let db = policy.delay(attempt, &mut b);
            assert_eq!(da, db, "same seed, same delay");
            assert!(da <= policy.max_delay);
            assert!(da >= policy.base_delay / 2);
        }
        // The immediate policy never sleeps.
        let imm = RetryPolicy::immediate(42);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(imm.delay(3, &mut rng), Duration::ZERO);
    }
}
