//! Degraded run: inject faults into the ingest surfaces and watch the
//! pipeline quarantine its way to a complete result set.
//!
//! ```text
//! cargo run --release --example degraded_study
//! ```
//!
//! Builds a seeded [`FaultPlan`], damages 5 % of the Notary wire chains
//! and cacerts files on the way in, then prints the health ledger that
//! reconciles every injected fault against a quarantine record — and the
//! paper's Table 3, computed over the survivors.

use tangled_mass::analysis::{tables, Study};
use tangled_mass::faults::FaultPlan;

fn main() {
    // A fault plan is addressed by seed and rate; the same seed always
    // damages the same units, so degraded runs are reproducible.
    let plan = FaultPlan::new(2014).with_rate(0.05);
    println!(
        "degrading ingest surfaces: seed {}, rate {:.0}%\n",
        plan.seed,
        plan.rate * 100.0
    );

    let study = Study::with_faults(0.25, 0.25, &plan);

    // The health ledger: every fault the plan injected, and the stage +
    // error under which the pipeline quarantined it.
    println!("{}", study.health);
    assert!(study.health.is_balanced(), "a fault escaped quarantine");

    // The analysis still completes end to end on the survivors.
    println!("\n{}", tables::table3(&study.validation).render());
    println!(
        "tables and figures computed over {} surviving notary certs \
         and {} devices",
        study.ecosystem.len(),
        study.population.devices.len()
    );
}
