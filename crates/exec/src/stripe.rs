//! Lock-striped hash maps for cross-shard memoisation.
//!
//! A [`StripedMap`] spreads entries over N independently locked stripes by
//! key hash, so shards running on different threads rarely contend even
//! when they share one memo. The map is *value-deterministic*: callers
//! must only insert values that are pure functions of their key (chain
//! verdicts, signature checks). Under that contract, which thread computes
//! an entry first — the only racy thing here — cannot be observed in any
//! result, and a compute race at worst duplicates work, never corrupts it.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default stripe count: comfortably above any realistic pool width.
pub const DEFAULT_STRIPES: usize = 64;

/// A lock-striped concurrent memo map.
pub struct StripedMap<K, V> {
    stripes: Vec<Mutex<HashMap<K, V>>>,
    /// Per-stripe entry cap; a stripe at the cap is cleared before the next
    /// insert (epoch-style bound for long-lived process-wide memos).
    stripe_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Hash + Eq, V: Clone> StripedMap<K, V> {
    /// A map with `stripes` stripes (minimum 1) and no entry bound.
    pub fn new(stripes: usize) -> StripedMap<K, V> {
        StripedMap::bounded(stripes, usize::MAX)
    }

    /// A map whose stripes each hold at most `stripe_cap` entries; a full
    /// stripe is flushed wholesale before admitting the next entry.
    pub fn bounded(stripes: usize, stripe_cap: usize) -> StripedMap<K, V> {
        StripedMap {
            stripes: (0..stripes.max(1)).map(|_| Mutex::new(HashMap::new())).collect(),
            stripe_cap: stripe_cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn stripe_for(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.stripes[(hasher.finish() as usize) % self.stripes.len()]
    }

    /// Look up `key`, or compute it with `make` and cache the result.
    ///
    /// The stripe lock is *not* held while `make` runs, so an expensive
    /// computation never blocks unrelated keys; two threads racing on the
    /// same key may both compute, and the first insert wins (identical
    /// values by the purity contract, so the winner is unobservable).
    pub fn get_or_insert_with<F: FnOnce() -> V>(&self, key: K, make: F) -> V {
        if let Some(v) = self.get(&key) {
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = make();
        let mut stripe = self.stripe_for(&key).lock().expect("stripe poisoned");
        if stripe.len() >= self.stripe_cap && !stripe.contains_key(&key) {
            stripe.clear();
        }
        stripe.entry(key).or_insert_with(|| value.clone());
        value
    }

    /// Look up `key` without computing.
    pub fn get(&self, key: &K) -> Option<V> {
        let stripe = self.stripe_for(key).lock().expect("stripe poisoned");
        let hit = stripe.get(key).cloned();
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Insert (or overwrite) an entry directly.
    pub fn insert(&self, key: K, value: V) {
        let mut stripe = self.stripe_for(&key).lock().expect("stripe poisoned");
        if stripe.len() >= self.stripe_cap && !stripe.contains_key(&key) {
            stripe.clear();
        }
        stripe.insert(key, value);
    }

    /// Total entries across stripes.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("stripe poisoned").len())
            .sum()
    }

    /// True when no stripe holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of stripes.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }

    /// Lifetime (lookup hits, compute misses). Lookups that miss without
    /// computing (plain [`StripedMap::get`]) count in neither.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Drop every entry (counters survive).
    pub fn clear(&self) {
        for stripe in &self.stripes {
            stripe.lock().expect("stripe poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn memoises_and_counts() {
        let map: StripedMap<u32, u32> = StripedMap::new(8);
        let computes = AtomicUsize::new(0);
        let make = |x: u32| {
            computes.fetch_add(1, Ordering::SeqCst);
            x * 2
        };
        assert_eq!(map.get_or_insert_with(21, || make(21)), 42);
        assert_eq!(map.get_or_insert_with(21, || make(21)), 42);
        assert_eq!(computes.load(Ordering::SeqCst), 1, "second call hits");
        assert_eq!(map.len(), 1);
        let (hits, misses) = map.counters();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn concurrent_fill_is_consistent() {
        let map: StripedMap<u64, u64> = StripedMap::new(16);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let map = &map;
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let got = map.get_or_insert_with(i, || i * i);
                        assert_eq!(got, i * i, "thread {t} read a torn value");
                    }
                });
            }
        });
        assert_eq!(map.len(), 500);
        for i in 0..500 {
            assert_eq!(map.get(&i), Some(i * i));
        }
    }

    #[test]
    fn bounded_stripes_flush_at_cap() {
        // One stripe, cap 4: the fifth distinct key flushes the stripe.
        let map: StripedMap<u32, u32> = StripedMap::bounded(1, 4);
        for i in 0..4 {
            map.insert(i, i);
        }
        assert_eq!(map.len(), 4);
        map.insert(99, 99);
        assert_eq!(map.len(), 1, "cap flush keeps only the newcomer");
        assert_eq!(map.get(&99), Some(99));
        // Existing keys update in place without flushing.
        map.insert(99, 100);
        assert_eq!(map.get(&99), Some(100));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn clear_empties_every_stripe() {
        let map: StripedMap<u32, u32> = StripedMap::new(4);
        for i in 0..64 {
            map.insert(i, i);
        }
        assert!(!map.is_empty());
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.stripe_count(), 4);
    }
}
