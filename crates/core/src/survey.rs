//! Population-wide interception survey — how the §7 case was actually
//! found: "out of the 15K sessions, we identified a case of TLS
//! interception for one user running a Nexus 7 device".
//!
//! [`survey`] replays Netalyzr's per-session trust-chain probes over a
//! whole population, with a configurable set of devices sitting behind an
//! intercepting proxy, and reports which sessions exposed interception.

use std::collections::{HashMap, HashSet};
use tangled_intercept::detect::probe;
use tangled_intercept::origin::OriginServers;
use tangled_intercept::{MitmProxy, Verdict};
use tangled_netalyzr::device::DeviceId;
use tangled_netalyzr::Population;

/// One session's probe outcome.
#[derive(Debug, Clone)]
pub struct SessionProbe {
    /// Session index in the population.
    pub session: u32,
    /// The device that ran it.
    pub device: DeviceId,
    /// Number of probed targets flagged as intercepted.
    pub intercepted_targets: usize,
    /// Subject of the interfering issuer, when one was identified.
    pub interfering_issuer: Option<String>,
}

/// Result of surveying a population.
#[derive(Debug, Clone)]
pub struct SurveyReport {
    /// Total sessions probed.
    pub sessions: usize,
    /// Sessions that exposed interception.
    pub flagged: Vec<SessionProbe>,
}

impl SurveyReport {
    /// Distinct devices with at least one flagged session.
    pub fn flagged_devices(&self) -> HashSet<DeviceId> {
        self.flagged.iter().map(|p| p.device).collect()
    }
}

/// Probe every session of `pop`. Devices in `proxied` have all their
/// traffic flowing through a fresh Reality-Mine-style proxy (the paper's
/// tun-interface setup); everyone else reaches origins directly.
///
/// Clean-path sessions take an O(1) shortcut — the origin chains anchor at
/// the known public-web issuer, so the probe outcome reduces to "does the
/// device store trust that issuer"; proxied sessions run the full
/// chain-validation probe per target.
pub fn survey(pop: &Population, proxied: &HashSet<DeviceId>) -> SurveyReport {
    let origin = OriginServers::for_table6();
    let expected = origin.issuer_identity();
    let targets: Vec<_> = origin.targets().cloned().collect();
    // One proxy instance per proxied device (each middlebox mints its own
    // chains; re-signed leaves are cached inside the proxy). A failed CA
    // mint is kept as a classified error and flags the device's sessions
    // instead of panicking or dropping them silently.
    let mut proxies: HashMap<DeviceId, Result<MitmProxy, tangled_intercept::MintError>> = proxied
        .iter()
        .map(|&id| (id, MitmProxy::reality_mine()))
        .collect();

    let mut flagged = Vec::new();
    for s in &pop.sessions {
        let device = pop.device_of(s);
        if let Some(proxy_slot) = proxies.get_mut(&s.device) {
            let proxy = match proxy_slot {
                Ok(proxy) => proxy,
                Err(e) => {
                    flagged.push(SessionProbe {
                        session: s.index,
                        device: s.device,
                        intercepted_targets: targets.len(),
                        interfering_issuer: Some(format!("mint-error: {e}")),
                    });
                    continue;
                }
            };
            let mut intercepted = 0usize;
            let mut issuer = None;
            for t in &targets {
                let chain = match proxy.serve(t, &origin) {
                    Ok(chain) => chain,
                    Err(e) => {
                        intercepted += 1;
                        issuer.get_or_insert(format!("mint-error: {e}"));
                        continue;
                    }
                };
                let report = probe(t, &chain, &device.store, &expected, false);
                match report.verdict {
                    Verdict::Clean => {}
                    Verdict::UntrustedChain { presented_issuer } => {
                        intercepted += 1;
                        issuer.get_or_insert(presented_issuer);
                    }
                    Verdict::UnexpectedAnchor { anchor } => {
                        intercepted += 1;
                        issuer.get_or_insert(anchor.subject);
                    }
                    _ => intercepted += 1,
                }
            }
            if intercepted > 0 {
                flagged.push(SessionProbe {
                    session: s.index,
                    device: s.device,
                    intercepted_targets: intercepted,
                    interfering_issuer: issuer,
                });
            }
        } else {
            // Direct path: chains anchor at the expected issuer; the probe
            // outcome is decided by the device store's trust in it.
            let trusted = device
                .store
                .get(&expected)
                .is_some_and(|a| a.trusts_tls());
            if !trusted {
                flagged.push(SessionProbe {
                    session: s.index,
                    device: s.device,
                    intercepted_targets: targets.len(),
                    interfering_issuer: None,
                });
            }
        }
    }

    SurveyReport {
        sessions: pop.sessions.len(),
        flagged,
    }
}

/// Pick the §7 victim: a Nexus 7 on Android 4.4, as the paper found.
pub fn nexus7_victim(pop: &Population) -> Option<DeviceId> {
    pop.devices
        .iter()
        .find(|d| {
            d.model.contains("Nexus 7")
                && d.os_version == tangled_pki::vocab::AndroidVersion::V4_4
        })
        .map(|d| d.id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangled_netalyzr::PopulationSpec;

    fn pop() -> Population {
        Population::generate(&PopulationSpec::scaled(0.1))
    }

    #[test]
    fn clean_population_has_no_flags() {
        let p = pop();
        let report = survey(&p, &HashSet::new());
        assert_eq!(report.sessions, p.sessions.len());
        assert!(report.flagged.is_empty(), "no proxy → no interception");
    }

    #[test]
    fn single_proxied_device_is_found() {
        let p = pop();
        let victim = nexus7_victim(&p).expect("population carries Nexus 7s");
        let proxied: HashSet<_> = [victim].into_iter().collect();
        let report = survey(&p, &proxied);

        // Every flagged session belongs to the victim, and all of the
        // victim's sessions are flagged.
        assert_eq!(report.flagged_devices(), proxied);
        let victim_sessions = p
            .sessions
            .iter()
            .filter(|s| s.device == victim)
            .count();
        assert_eq!(report.flagged.len(), victim_sessions);
        for f in &report.flagged {
            // The Table 6 split: 12 of the 21 targets are re-signed.
            assert_eq!(f.intercepted_targets, 12);
            assert!(f
                .interfering_issuer
                .as_deref()
                .unwrap()
                .contains("Reality Mine"));
        }
    }

    #[test]
    fn multiple_proxied_devices_all_found() {
        let p = pop();
        let proxied: HashSet<_> = p.devices.iter().take(3).map(|d| d.id).collect();
        let report = survey(&p, &proxied);
        // Devices with zero sessions can't be observed; flagged ⊆ proxied.
        assert!(report.flagged_devices().is_subset(&proxied));
        assert!(!report.flagged.is_empty());
    }
}
