//! Single-certificate validation policy.
//!
//! [`check_cert`] applies the per-certificate checks RFC 5280 path
//! validation performs at each step: validity window, CA authority
//! (basicConstraints + keyUsage) for issuing certificates, and path length
//! budgets. [`chain`](crate::chain) composes these along a path.

use crate::cert::Certificate;
use tangled_asn1::Time;

/// The role a certificate plays at one step of a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertRole {
    /// The end-entity certificate.
    Leaf,
    /// An intermediate or root issuing certificate with the given number of
    /// CA certificates *below* it in the path (excluding the leaf).
    Issuer {
        /// CA certificates between this one and the leaf.
        ca_certs_below: u32,
    },
}

/// A per-certificate validation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertCheckError {
    /// Certificate not yet valid at the verification time.
    NotYetValid,
    /// Certificate expired at the verification time.
    Expired,
    /// An issuing certificate lacks `basicConstraints cA=TRUE`.
    NotACa,
    /// An issuing certificate has keyUsage without `keyCertSign`.
    KeyCertSignMissing,
    /// The `pathLenConstraint` budget is exceeded.
    PathLenExceeded,
}

impl std::fmt::Display for CertCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertCheckError::NotYetValid => write!(f, "certificate not yet valid"),
            CertCheckError::Expired => write!(f, "certificate expired"),
            CertCheckError::NotACa => write!(f, "issuing certificate is not a CA"),
            CertCheckError::KeyCertSignMissing => {
                write!(f, "issuing certificate lacks keyCertSign usage")
            }
            CertCheckError::PathLenExceeded => write!(f, "pathLenConstraint exceeded"),
        }
    }
}

impl std::error::Error for CertCheckError {}

/// Check one certificate for validity at `at` in the given `role`.
pub fn check_cert(cert: &Certificate, at: Time, role: CertRole) -> Result<(), CertCheckError> {
    if at < cert.not_before {
        return Err(CertCheckError::NotYetValid);
    }
    if at > cert.not_after {
        return Err(CertCheckError::Expired);
    }
    if let CertRole::Issuer { ca_certs_below } = role {
        let bc = cert.basic_constraints();
        match bc {
            Some(bc) if bc.ca => {
                if let Some(max) = bc.path_len {
                    if ca_certs_below > max {
                        return Err(CertCheckError::PathLenExceeded);
                    }
                }
            }
            // v3 issuers must assert cA. (v1 roots without extensions are
            // grandfathered by the chain layer, which treats configured
            // trust anchors as CA-capable.)
            _ => return Err(CertCheckError::NotACa),
        }
        if let Some(ku) = cert.key_usage() {
            if !ku.key_cert_sign {
                return Err(CertCheckError::KeyCertSignMissing);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CertificateBuilder;
    use crate::extensions::{BasicConstraints, Extension, KeyUsage};
    use crate::name::DistinguishedName;
    use tangled_crypto::rsa::RsaKeyPair;
    use tangled_crypto::{SplitMix64, Uint};

    fn kp() -> RsaKeyPair {
        RsaKeyPair::generate(512, &mut SplitMix64::new(77)).unwrap()
    }

    fn mk_ca(path_len: Option<u32>) -> Certificate {
        let kp = kp();
        CertificateBuilder::new(
            DistinguishedName::common_name("CA"),
            DistinguishedName::common_name("CA"),
            Time::date(2010, 1, 1).unwrap(),
            Time::date(2020, 1, 1).unwrap(),
        )
        .ca(path_len)
        .sign(kp.public_key(), &kp)
        .unwrap()
    }

    #[test]
    fn window_enforcement() {
        let ca = mk_ca(None);
        assert_eq!(
            check_cert(&ca, Time::date(2009, 12, 31).unwrap(), CertRole::Leaf),
            Err(CertCheckError::NotYetValid)
        );
        assert_eq!(
            check_cert(&ca, Time::date(2020, 1, 2).unwrap(), CertRole::Leaf),
            Err(CertCheckError::Expired)
        );
        assert_eq!(
            check_cert(&ca, Time::date(2015, 6, 1).unwrap(), CertRole::Leaf),
            Ok(())
        );
    }

    #[test]
    fn path_len_budget() {
        let ca = mk_ca(Some(1));
        let at = Time::date(2015, 1, 1).unwrap();
        assert_eq!(check_cert(&ca, at, CertRole::Issuer { ca_certs_below: 0 }), Ok(()));
        assert_eq!(check_cert(&ca, at, CertRole::Issuer { ca_certs_below: 1 }), Ok(()));
        assert_eq!(
            check_cert(&ca, at, CertRole::Issuer { ca_certs_below: 2 }),
            Err(CertCheckError::PathLenExceeded)
        );
    }

    #[test]
    fn non_ca_cannot_issue() {
        let pair = kp();
        let leaf = CertificateBuilder::new(
            DistinguishedName::common_name("X"),
            DistinguishedName::common_name("X"),
            Time::date(2010, 1, 1).unwrap(),
            Time::date(2020, 1, 1).unwrap(),
        )
        .tls_server(vec!["x".into()])
        .sign(pair.public_key(), &pair)
        .unwrap();
        let at = Time::date(2015, 1, 1).unwrap();
        assert_eq!(check_cert(&leaf, at, CertRole::Leaf), Ok(()));
        assert_eq!(
            check_cert(&leaf, at, CertRole::Issuer { ca_certs_below: 0 }),
            Err(CertCheckError::NotACa)
        );
    }

    #[test]
    fn cert_sign_usage_required_for_issuers() {
        let pair = kp();
        // cA=TRUE but keyUsage without keyCertSign — malformed CA.
        let cert = CertificateBuilder::new(
            DistinguishedName::common_name("BadCA"),
            DistinguishedName::common_name("BadCA"),
            Time::date(2010, 1, 1).unwrap(),
            Time::date(2020, 1, 1).unwrap(),
        )
        .extension(Extension::BasicConstraints(BasicConstraints {
            ca: true,
            path_len: None,
        }))
        .extension(Extension::KeyUsage(KeyUsage::tls_server()))
        .serial(Uint::from_u64(3))
        .sign(pair.public_key(), &pair)
        .unwrap();
        assert_eq!(
            check_cert(
                &cert,
                Time::date(2015, 1, 1).unwrap(),
                CertRole::Issuer { ca_certs_below: 0 }
            ),
            Err(CertCheckError::KeyCertSignMissing)
        );
    }
}
