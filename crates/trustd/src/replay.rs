//! Deterministic load generation over the Netalyzr population.
//!
//! [`queries`] derives a reproducible request mix from a seeded
//! [`Population`]: every session validates an origin chain against its
//! device's AOSP profile, with classify/audit/probe requests interleaved
//! on fixed session strides. The same [`ReplaySpec`] therefore produces
//! the same requests in the same order every time — which is what lets
//! the loadgen CLI assert that served verdicts are *byte-identical* to
//! [`offline_verdicts`] computed without any server at all.

use crate::client::TrustClient;
use crate::resilient::{Connect, ResilientClient, RetryPolicy, TcpConnector};
use crate::service::{profile_for_version, TrustService, DEFAULT_CACHE_CAPACITY};
use crate::wire::{ChainVerdict, Request, Response};
use serde_json::Value;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use tangled_faults::chaos::{ChaosPlan, ChaosStream, WireFaultKind, WireLedger};
use tangled_intercept::origin::OriginServers;
use tangled_intercept::policy::Target;
use tangled_netalyzr::{Population, PopulationSpec};
use tangled_pki::cacerts::to_cacerts_pem;

/// The paper's full session count (scale 1.0).
const FULL_SESSIONS: f64 = 15_970.0;

/// Which request mix a replay drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayOp {
    /// The classic per-session mix: validate, with classify/audit/probe
    /// interleaved on fixed strides.
    Mixed,
    /// One `compare` request per chain of the study's Notary corpus, in
    /// corpus order — the disparity engine's verdict vectors, served.
    Compare,
    /// The mixed mix's validate stream, grouped into `batch_validate`
    /// requests of up to [`BATCH_DEPTH`] chains per store profile — the
    /// amortised form of the same workload.
    Batch,
}

/// How many chains a `--op batch` replay packs into one `batch_validate`
/// request before flushing it.
pub const BATCH_DEPTH: usize = 16;

/// What to replay.
#[derive(Debug, Clone, Copy)]
pub struct ReplaySpec {
    /// Population seed.
    pub seed: u64,
    /// Number of sessions to replay.
    pub sessions: usize,
    /// The request mix.
    pub op: ReplayOp,
}

impl ReplaySpec {
    /// A spec with the default seed and the mixed request mix.
    pub fn new(seed: u64, sessions: usize) -> ReplaySpec {
        ReplaySpec {
            seed,
            sessions,
            op: ReplayOp::Mixed,
        }
    }

    /// The same spec driving the `compare` mix.
    pub fn with_op(self, op: ReplayOp) -> ReplaySpec {
        ReplaySpec { op, ..self }
    }
}

/// The corpus scale a session count maps to — shared by the population
/// generator and the compare mix, so `loadgen --sessions N` and
/// `tangled disparity <scale>` line up on the same chain corpus.
pub fn scale_for_sessions(sessions: usize) -> f64 {
    ((sessions as f64 / FULL_SESSIONS) * 1.25).clamp(0.02, 1.0)
}

/// The outcome of one replay run.
pub struct ReplayOutcome {
    /// Canonical verdict strings, one per request, in request order.
    pub verdicts: Vec<String>,
    /// Requests sent.
    pub requests: usize,
    /// `error` responses with stage `wire` (protocol errors).
    pub wire_errors: usize,
    /// TCP connections opened. Keep-alive reuse makes this 1 on a clean
    /// run regardless of session count — the loadgen summary reports it
    /// next to the request count so connect cost can never masquerade as
    /// server cost again.
    pub connects: u64,
    /// Wall-clock time spent replaying.
    pub elapsed: Duration,
    /// The server's stats document, fetched after the replay.
    pub stats: Value,
}

/// Generate the population for a spec: scaled so at least `sessions`
/// sessions exist (the generator's per-manufacturer rounding can
/// undershoot a naive scale).
pub fn population(spec: &ReplaySpec) -> Population {
    Population::generate(&PopulationSpec {
        seed: spec.seed,
        scale: scale_for_sessions(spec.sessions),
    })
}

/// The deterministic request mix for a population: per session, a
/// `validate` of an origin chain against the device's AOSP profile; every
/// 4th session additionally classifies the device's first extra root,
/// every 8th audits the device's cacerts snapshot, every 16th probes.
pub fn queries(pop: &Population, spec: &ReplaySpec) -> Vec<Request> {
    let origin = OriginServers::for_table6();
    let mut targets: Vec<Target> = origin.targets().cloned().collect();
    targets.sort_by_key(|t| t.to_string());

    let chain_for = |t: &Target| -> Vec<Vec<u8>> {
        origin
            .chain(t)
            .expect("table 6 target has a chain")
            .iter()
            .map(|c| c.to_der().to_vec())
            .collect()
    };

    let mut out = Vec::new();
    for session in pop.sessions.iter().take(spec.sessions) {
        let device = pop.device_of(session);
        let profile = profile_for_version(device.os_version).to_owned();
        let target = &targets[session.index as usize % targets.len()];
        out.push(Request::Validate {
            profile: profile.clone(),
            chain: chain_for(target),
        });
        if session.index % 4 == 1 {
            if let Some(extra) = device.additional_certs().first() {
                out.push(Request::Classify {
                    cert: extra.cert.to_der().to_vec(),
                });
            }
        }
        if session.index % 8 == 2 {
            out.push(Request::Audit {
                baseline: device.os_version.label().to_owned(),
                files: to_cacerts_pem(&device.store),
            });
        }
        if session.index % 16 == 5 {
            out.push(Request::Probe {
                profile,
                target: target.to_string(),
                chain: chain_for(target),
                pinned: false,
            });
        }
    }
    out
}

/// The `compare` request mix: one `compare` per chain of the Notary
/// corpus at the spec's derived scale, in corpus order. Every reply is a
/// full per-chain verdict vector, so a replay of this mix *is* the
/// disparity engine's offline computation, served.
pub fn compare_queries(spec: &ReplaySpec) -> Vec<Request> {
    let eco = tangled_notary::Ecosystem::generate(&tangled_notary::EcosystemSpec::scaled(
        scale_for_sessions(spec.sessions),
    ));
    eco.certs
        .iter()
        .map(|cert| Request::Compare {
            chain: cert.chain.iter().map(|c| c.to_der().to_vec()).collect(),
        })
        .collect()
}

/// The `batch_validate` request mix: the same per-session validate
/// stream as the mixed mix, grouped into per-profile batches of up to
/// [`BATCH_DEPTH`] chains. Batches flush in arrival order when full; the
/// remainders flush in sorted profile order — deterministic, so the
/// served replay can be fingerprinted against [`offline_verdicts`].
pub fn batch_queries(pop: &Population, spec: &ReplaySpec) -> Vec<Request> {
    let origin = OriginServers::for_table6();
    let mut targets: Vec<Target> = origin.targets().cloned().collect();
    targets.sort_by_key(|t| t.to_string());

    let chain_for = |t: &Target| -> Vec<Vec<u8>> {
        origin
            .chain(t)
            .expect("table 6 target has a chain")
            .iter()
            .map(|c| c.to_der().to_vec())
            .collect()
    };

    let mut out = Vec::new();
    let mut pending: std::collections::BTreeMap<String, Vec<Vec<Vec<u8>>>> =
        std::collections::BTreeMap::new();
    for session in pop.sessions.iter().take(spec.sessions) {
        let device = pop.device_of(session);
        let profile = profile_for_version(device.os_version).to_owned();
        let target = &targets[session.index as usize % targets.len()];
        let chains = pending.entry(profile.clone()).or_default();
        chains.push(chain_for(target));
        if chains.len() >= BATCH_DEPTH {
            out.push(Request::BatchValidate {
                profile,
                chains: std::mem::take(chains),
            });
        }
    }
    for (profile, chains) in pending {
        if !chains.is_empty() {
            out.push(Request::BatchValidate { profile, chains });
        }
    }
    out
}

/// The request sequence for a spec, honouring its [`ReplayOp`].
pub fn queries_for(spec: &ReplaySpec) -> Vec<Request> {
    match spec.op {
        ReplayOp::Mixed => queries(&population(spec), spec),
        ReplayOp::Compare => compare_queries(spec),
        ReplayOp::Batch => batch_queries(&population(spec), spec),
    }
}

/// FNV-1a fingerprint over a verdict sequence (one canonical string per
/// request, newline-framed). The disparity report and `loadgen --op
/// compare` both print this, so one `grep` ties the served replies to
/// the offline verdict vectors.
pub fn verdict_fingerprint(verdicts: &[String]) -> u64 {
    let mut data = Vec::new();
    for v in verdicts {
        data.extend_from_slice(v.as_bytes());
        data.push(b'\n');
    }
    tangled_crypto::hash::fnv1a(&data)
}

/// The canonical (comparison) form of a response. Excludes the `cached`
/// flag — a verdict must not depend on whether the memo cache answered.
pub fn canonical(resp: &Response) -> String {
    match resp {
        Response::Validate { verdict, .. } => match verdict {
            ChainVerdict::Trusted { anchor, chain_len } => {
                format!("validate/trusted/{anchor}/{chain_len}")
            }
            ChainVerdict::Untrusted { error } => format!("validate/untrusted/{error}"),
        },
        Response::Classify { class, profiles } => {
            format!("classify/{class}/{}", profiles.join(","))
        }
        Response::Audit {
            risk,
            added,
            removed,
            findings,
            quarantined,
        } => format!(
            "audit/{risk}/+{added}/-{removed}/f{findings}/q{}",
            quarantined.len()
        ),
        Response::Probe { verdict } => format!("probe/{verdict}"),
        Response::ProbeSession { outcome } => format!("probe_session/{outcome}"),
        Response::Compare {
            chain_key,
            verdicts,
            ..
        } => {
            let parts: Vec<String> = verdicts
                .iter()
                .map(|(store, v)| match v {
                    ChainVerdict::Trusted { anchor, chain_len } => {
                        format!("{store}=trusted/{anchor}/{chain_len}")
                    }
                    ChainVerdict::Untrusted { error } => {
                        format!("{store}=untrusted/{error}")
                    }
                })
                .collect();
            format!("compare/{chain_key}/{}", parts.join("|"))
        }
        Response::BatchValidate {
            profile, verdicts, ..
        } => {
            let parts: Vec<String> = verdicts
                .iter()
                .map(|v| match v {
                    ChainVerdict::Trusted { anchor, chain_len } => {
                        format!("trusted/{anchor}/{chain_len}")
                    }
                    ChainVerdict::Untrusted { error } => format!("untrusted/{error}"),
                })
                .collect();
            format!("batch_validate/{profile}/{}", parts.join("|"))
        }
        Response::Swap {
            profile, anchors, ..
        } => format!("swap/{profile}/{anchors}"),
        Response::Stats(_) => "stats".to_owned(),
        Response::Busy => "busy".to_owned(),
        Response::Error { stage, error } => format!("error/{stage}/{error}"),
    }
}

/// Compute the replay's expected verdicts with no server involved: build
/// a local [`TrustService`] and run every request through
/// [`TrustService::handle`] directly.
pub fn offline_verdicts(spec: &ReplaySpec) -> Vec<String> {
    let service = TrustService::new(DEFAULT_CACHE_CAPACITY);
    queries_for(spec)
        .iter()
        .map(|req| canonical(&service.handle(req)))
        .collect()
}

/// Replay a spec against a live server, serially (pipeline depth 1).
pub fn replay(
    addr: impl ToSocketAddrs + Clone,
    spec: &ReplaySpec,
) -> Result<ReplayOutcome, String> {
    replay_pipelined(addr, spec, 1)
}

/// Replay a spec against a live server with request pipelining: requests
/// go out in chunks of `depth` frames before any reply is read, over one
/// kept-alive connection (the [`ResilientClient`] holds the connection
/// across calls and only reopens it after a failure — loadgen measures
/// server cost, not connect cost). Every mix this replays is idempotent,
/// so a failed chunk is safely re-sent whole.
pub fn replay_pipelined(
    addr: impl ToSocketAddrs + Clone,
    spec: &ReplaySpec,
    depth: usize,
) -> Result<ReplayOutcome, String> {
    // Race a server that is still binding (the CI smoke starts it in the
    // background): probe until it accepts, then hand the address to the
    // keep-alive client.
    let probe = TrustClient::connect_retry(addr.clone(), Duration::from_secs(5))
        .map_err(|e| format!("server never came up: {e}"))?;
    drop(probe);
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolving address: {e}"))?
        .next()
        .ok_or("address resolved to nothing")?;
    let mut client =
        ResilientClient::new(TcpConnector::new(addr), RetryPolicy::new(spec.seed));

    let requests = queries_for(spec);
    let depth = depth.max(1);
    let started = Instant::now();
    let mut verdicts = Vec::with_capacity(requests.len());
    let mut wire_errors = 0usize;
    for chunk in requests.chunks(depth) {
        let replies = client
            .call_pipelined(chunk)
            .map_err(|e| format!("replay chunk: {e}"))?;
        for resp in &replies {
            if matches!(resp, Response::Error { stage, .. } if stage == "wire") {
                wire_errors += 1;
            }
            verdicts.push(canonical(resp));
        }
    }
    let elapsed = started.elapsed();

    let stats = match client
        .call(&Request::Stats)
        .map_err(|e| format!("fetching stats: {e}"))?
    {
        Response::Stats(doc) => doc,
        _ => return Err("unexpected stats reply".into()),
    };

    Ok(ReplayOutcome {
        requests: requests.len(),
        verdicts,
        wire_errors,
        connects: client.reconnects(),
        elapsed,
        stats,
    })
}

/// Outcome of a chaos replay through the resilient client.
pub struct ResilientOutcome {
    /// Canonical verdict strings, one per request, in request order.
    pub verdicts: Vec<String>,
    /// Requests issued (each may have taken several attempts).
    pub requests: usize,
    /// `error` responses with stage `wire` (protocol errors).
    pub wire_errors: usize,
    /// Retry attempts beyond first tries.
    pub retries: u64,
    /// `busy` sheds absorbed by the retry loop.
    pub busy: u64,
    /// Connections opened (1 plus one per fault-forced reconnect).
    pub reconnects: u64,
    /// Wire faults injected by the chaos wrapper.
    pub faults: usize,
    /// Wall-clock time spent replaying.
    pub elapsed: Duration,
    /// The server's stats document, fetched after the replay.
    pub stats: Value,
}

/// TCP connections whose client side rides a seeded chaos wrapper: each
/// connection gets the next salt, so the fault schedule is a pure
/// function of `(seed, connection ordinal, frame ordinal)`.
struct ChaosConnector {
    addr: SocketAddr,
    plan: ChaosPlan,
    salt: u64,
    ledger: WireLedger,
}

impl Connect for ChaosConnector {
    type Stream = ChaosStream<TcpStream>;

    fn connect(&mut self) -> io::Result<TrustClient<ChaosStream<TcpStream>>> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        self.salt += 1;
        Ok(TrustClient::from_stream(ChaosStream::with_ledger(
            stream,
            &self.plan,
            self.salt,
            Arc::clone(&self.ledger),
        )))
    }
}

/// Replay a spec against a live server through the [`ResilientClient`],
/// with seeded wire faults injected on the client side.
///
/// Only the *lossy* fault kinds ([`WireFaultKind::LOSSY`] — disconnect,
/// partial write, trickle) are scheduled: they can delay or destroy a
/// request in transit but never deliver a *corrupted* one, so every
/// request the server executes is exact and the replay's verdicts must
/// still match [`offline_verdicts`] byte for byte. That is the whole
/// point: faults cost retries, not answers. The query mix is pure
/// (validate/classify/audit/probe), so blind retries are safe under the
/// idempotency rules.
pub fn replay_resilient(
    addr: impl ToSocketAddrs,
    spec: &ReplaySpec,
    chaos_seed: u64,
    chaos_rate: f64,
) -> Result<ResilientOutcome, String> {
    let addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("resolving address: {e}"))?
        .next()
        .ok_or("address resolved to nothing")?;
    let ledger: WireLedger = Arc::new(Mutex::new(Vec::new()));
    let plan = ChaosPlan::new(chaos_seed)
        .with_rate(chaos_rate)
        .only(&WireFaultKind::LOSSY);
    let connector = ChaosConnector {
        addr,
        plan,
        salt: 0,
        ledger: Arc::clone(&ledger),
    };
    // Zero backoff delay (the smoke test runs under CI wall-clock), but a
    // deeper attempt budget than the serving default: at injection rates
    // this high, four attempts of a breaking fault in a row is plausible.
    let policy = RetryPolicy {
        max_attempts: 8,
        ..RetryPolicy::immediate(chaos_seed)
    };
    let mut client = ResilientClient::new(connector, policy);

    let requests = queries_for(spec);
    let started = Instant::now();
    let mut verdicts = Vec::with_capacity(requests.len());
    let mut wire_errors = 0usize;
    for req in &requests {
        let resp = client.call(req).map_err(|e| format!("chaos replay: {e}"))?;
        if matches!(&resp, Response::Error { stage, .. } if stage == "wire") {
            wire_errors += 1;
        }
        verdicts.push(canonical(&resp));
    }
    let elapsed = started.elapsed();

    let stats = match client
        .call(&Request::Stats)
        .map_err(|e| format!("fetching stats: {e}"))?
    {
        Response::Stats(doc) => doc,
        _ => return Err("unexpected stats reply".into()),
    };
    let faults = ledger.lock().map(|l| l.len()).unwrap_or(0);
    Ok(ResilientOutcome {
        requests: requests.len(),
        verdicts,
        wire_errors,
        retries: client.retries(),
        busy: client.busy_count(),
        reconnects: client.reconnects(),
        faults,
        elapsed,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_mix_is_deterministic_and_covers_kinds() {
        let spec = ReplaySpec::new(2014, 120);
        let pop = population(&spec);
        assert!(
            pop.sessions.len() >= spec.sessions,
            "population undershoots: {} < {}",
            pop.sessions.len(),
            spec.sessions
        );
        let a = queries(&pop, &spec);
        let b = queries(&population(&spec), &spec);
        assert_eq!(a, b, "same spec, same queries");
        assert!(a.len() >= spec.sessions);
        let kinds: std::collections::BTreeSet<&str> =
            a.iter().map(|r| r.kind()).collect();
        assert!(kinds.contains("validate"));
        assert!(kinds.contains("audit"));
        assert!(kinds.contains("probe"));
    }

    #[test]
    fn offline_verdicts_are_reproducible() {
        let spec = ReplaySpec::new(7, 40);
        assert_eq!(offline_verdicts(&spec), offline_verdicts(&spec));
    }

    #[test]
    fn compare_mix_covers_the_corpus_deterministically() {
        let spec = ReplaySpec::new(2014, 60).with_op(ReplayOp::Compare);
        let qs = queries_for(&spec);
        assert!(!qs.is_empty());
        assert!(qs.iter().all(|q| q.kind() == "compare"));
        assert_eq!(qs, queries_for(&spec), "same spec, same queries");

        let offline = offline_verdicts(&spec);
        assert_eq!(offline.len(), qs.len());
        // Every reply carries the full 10-store vector (9 separators).
        assert!(offline
            .iter()
            .all(|v| v.starts_with("compare/") && v.matches('|').count() == 9));
        let fp = verdict_fingerprint(&offline);
        assert_eq!(fp, verdict_fingerprint(&offline_verdicts(&spec)));
    }

    #[test]
    fn batch_mix_groups_the_validate_stream_deterministically() {
        let spec = ReplaySpec::new(2014, 120).with_op(ReplayOp::Batch);
        let qs = queries_for(&spec);
        assert!(!qs.is_empty());
        assert!(qs.iter().all(|q| q.kind() == "batch_validate"));
        assert_eq!(qs, queries_for(&spec), "same spec, same queries");

        // The batched mix carries exactly the validate stream of the
        // mixed mix: same chains, same multiplicity, grouped by profile.
        let mixed_spec = ReplaySpec::new(2014, 120);
        let mut singles: Vec<(String, Vec<Vec<u8>>)> = queries_for(&mixed_spec)
            .into_iter()
            .filter_map(|q| match q {
                Request::Validate { profile, chain } => Some((profile, chain)),
                _ => None,
            })
            .collect();
        let mut batched: Vec<(String, Vec<Vec<u8>>)> = qs
            .iter()
            .flat_map(|q| match q {
                Request::BatchValidate { profile, chains } => chains
                    .iter()
                    .map(|c| (profile.clone(), c.clone()))
                    .collect::<Vec<_>>(),
                _ => unreachable!("batch mix only"),
            })
            .collect();
        singles.sort();
        batched.sort();
        assert_eq!(singles, batched);

        // No batch exceeds the depth cap, and offline verdicts line up
        // one-per-request for fingerprinting.
        for q in &qs {
            if let Request::BatchValidate { chains, .. } = q {
                assert!(!chains.is_empty() && chains.len() <= BATCH_DEPTH);
            }
        }
        let offline = offline_verdicts(&spec);
        assert_eq!(offline.len(), qs.len());
        assert!(offline.iter().all(|v| v.starts_with("batch_validate/")));
    }

    #[test]
    fn canonical_ignores_cached_flag() {
        let verdict = ChainVerdict::Trusted {
            anchor: "CN=R".into(),
            chain_len: 2,
        };
        let cold = Response::Validate {
            verdict: verdict.clone(),
            cached: false,
        };
        let warm = Response::Validate {
            verdict,
            cached: true,
        };
        assert_eq!(canonical(&cold), canonical(&warm));
    }
}
