//! Modular arithmetic: addition, multiplication, exponentiation and
//! inversion over [`Uint`] operands.
//!
//! Exponentiation uses plain left-to-right square-and-multiply with a full
//! reduction after every step. For the 512–2048-bit moduli in this workspace
//! that is fast enough (a 1024-bit modpow completes in well under a
//! millisecond in release builds), so we deliberately skip Montgomery form.

use crate::bigint::Uint;
use crate::CryptoError;

/// `(a + b) mod m`.
pub fn mod_add(a: &Uint, b: &Uint, m: &Uint) -> Result<Uint, CryptoError> {
    a.add(b).rem(m)
}

/// `(a * b) mod m`.
pub fn mod_mul(a: &Uint, b: &Uint, m: &Uint) -> Result<Uint, CryptoError> {
    a.mul(b).rem(m)
}

/// `(a - b) mod m`, wrapping negative intermediates into the ring.
pub fn mod_sub(a: &Uint, b: &Uint, m: &Uint) -> Result<Uint, CryptoError> {
    let a = a.rem(m)?;
    let b = b.rem(m)?;
    if a >= b {
        Ok(a.sub(&b))
    } else {
        Ok(a.add(m).sub(&b))
    }
}

/// `base^exp mod m`.
///
/// Odd moduli (every RSA modulus) take the Montgomery fast path with a
/// 4-bit window; even moduli fall back to square-and-multiply with full
/// reductions. Returns an error only for a zero modulus. `x^0 mod 1` is 0
/// (the ring mod 1 has a single element).
pub fn mod_pow(base: &Uint, exp: &Uint, m: &Uint) -> Result<Uint, CryptoError> {
    if m.is_zero() {
        return Err(CryptoError::DivisionByZero);
    }
    if m.is_one() {
        return Ok(Uint::zero());
    }
    if !m.is_even() {
        return Ok(Montgomery::new(m)?.pow(base, exp));
    }
    let mut result = Uint::one();
    let mut acc = base.rem(m)?;
    let bits = exp.bit_len();
    for i in 0..bits {
        if exp.bit(i) {
            result = result.mul(&acc).rem(m)?;
        }
        if i + 1 < bits {
            acc = acc.mul(&acc).rem(m)?;
        }
    }
    Ok(result)
}

/// Montgomery-form modular arithmetic for an odd modulus.
///
/// Implements CIOS (coarsely integrated operand scanning) multiplication
/// and windowed exponentiation. All values passed in and returned are in
/// the ordinary (non-Montgomery) domain; conversion happens internally.
pub struct Montgomery {
    /// Modulus limbs, little-endian, length `k`.
    n: Vec<u64>,
    /// `-n^{-1} mod 2^64`.
    n0: u64,
    /// `R² mod n` where `R = 2^(64k)`, used to enter the Montgomery domain.
    r2: Vec<u64>,
    /// Number of limbs.
    k: usize,
}

impl Montgomery {
    /// Build a context for an odd modulus `m > 1`.
    pub fn new(m: &Uint) -> Result<Montgomery, CryptoError> {
        if m.is_zero() || m.is_even() || m.is_one() {
            return Err(CryptoError::NotInvertible);
        }
        let n: Vec<u64> = m.limbs().to_vec();
        let k = n.len();
        // Newton iteration for n[0]^{-1} mod 2^64 (odd, so invertible).
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n[0].wrapping_mul(inv)));
        }
        let n0 = inv.wrapping_neg();
        // R² mod n via one big-integer reduction.
        let r2_uint = Uint::one().shl(128 * k).rem(m)?;
        let mut r2 = r2_uint.limbs().to_vec();
        r2.resize(k, 0);
        Ok(Montgomery { n, n0, r2, k })
    }

    /// CIOS Montgomery product: returns `a·b·R⁻¹ mod n` (operands and
    /// result as `k`-limb little-endian vectors).
    #[allow(clippy::needless_range_loop)] // indexed limbs: the standard idiom
    fn mont_mul(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let k = self.k;
        let mut t = vec![0u64; k + 2];
        for &ai in a.iter().take(k) {
            // t += ai * b
            let mut carry: u128 = 0;
            for j in 0..k {
                let s = t[j] as u128 + ai as u128 * b[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = t[k + 1].wrapping_add((s >> 64) as u64);

            // m = t[0] * n0 mod 2^64; t += m * n; t >>= 64.
            let m = t[0].wrapping_mul(self.n0);
            let mut carry: u128 = 0;
            for j in 0..k {
                let s = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j] = s as u64;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as u64;
            t[k + 1] = t[k + 1].wrapping_add((s >> 64) as u64);

            // Shift one limb (divide by 2^64; t[0] is zero by construction).
            for j in 0..=k {
                t[j] = t[j + 1];
            }
            t[k + 1] = 0;
        }
        // t < 2n holds; one conditional subtraction normalizes.
        t.truncate(k + 1);
        if ge(&t, &self.n) {
            sub_in_place(&mut t, &self.n);
        }
        t.truncate(k);
        t
    }

    /// `base^exp mod n` with a 4-bit fixed window.
    pub fn pow(&self, base: &Uint, exp: &Uint) -> Uint {
        let k = self.k;
        // Reduce the base and pad to k limbs.
        let base = base
            .rem(&Uint::from_limbs(self.n.clone()))
            .expect("modulus nonzero");
        let mut base_limbs = base.limbs().to_vec();
        base_limbs.resize(k, 0);

        // one_mont = R mod n = mont_mul(1, R²).
        let mut one = vec![0u64; k];
        one[0] = 1;
        let one_mont = self.mont_mul(&one, &self.r2);
        if exp.is_zero() {
            return Uint::from_limbs(self.mont_mul(&one_mont, &one));
        }
        let base_mont = self.mont_mul(&base_limbs, &self.r2);

        // Window table: powers 0..15.
        let mut table = Vec::with_capacity(16);
        table.push(one_mont.clone());
        table.push(base_mont.clone());
        for i in 2..16 {
            let prev: &Vec<u64> = &table[i - 1];
            table.push(self.mont_mul(prev, &base_mont));
        }

        let bits = exp.bit_len();
        let windows = bits.div_ceil(4);
        let mut acc = one_mont;
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                acc = self.mont_mul(&acc, &acc);
                acc = self.mont_mul(&acc, &acc);
                acc = self.mont_mul(&acc, &acc);
                acc = self.mont_mul(&acc, &acc);
            }
            let mut nibble = 0usize;
            for b in 0..4 {
                if exp.bit(w * 4 + b) {
                    nibble |= 1 << b;
                }
            }
            if nibble != 0 {
                acc = self.mont_mul(&acc, &table[nibble]);
                started = true;
            } else if started {
                // Window of zeros: squarings above already applied.
            }
        }
        if !started {
            // exp was a string of zero nibbles — only possible for exp == 0,
            // handled above; defensive fallback.
            acc = self.mont_mul(&acc, &table[0]);
        }
        // Leave the Montgomery domain.
        Uint::from_limbs(self.mont_mul(&acc, &one))
    }
}

/// `a >= b` for little-endian limb slices (a may be one limb longer).
fn ge(a: &[u64], b: &[u64]) -> bool {
    if a.len() > b.len() && a[b.len()..].iter().any(|&l| l != 0) {
        return true;
    }
    for i in (0..b.len()).rev() {
        let ai = a.get(i).copied().unwrap_or(0);
        match ai.cmp(&b[i]) {
            std::cmp::Ordering::Greater => return true,
            std::cmp::Ordering::Less => return false,
            std::cmp::Ordering::Equal => continue,
        }
    }
    true
}

/// `a -= b` in place for little-endian limb slices (`a >= b`).
#[allow(clippy::needless_range_loop)] // indexed limbs: the standard idiom
fn sub_in_place(a: &mut [u64], b: &[u64]) {
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let bi = b.get(i).copied().unwrap_or(0);
        let (d1, b1) = a[i].overflowing_sub(bi);
        let (d2, b2) = d1.overflowing_sub(borrow);
        a[i] = d2;
        borrow = (b1 as u64) + (b2 as u64);
    }
    debug_assert_eq!(borrow, 0);
}

/// Modular inverse of `a` mod `m` via the extended Euclidean algorithm.
///
/// Errors with [`CryptoError::NotInvertible`] when `gcd(a, m) != 1`.
pub fn mod_inv(a: &Uint, m: &Uint) -> Result<Uint, CryptoError> {
    if m.is_zero() {
        return Err(CryptoError::DivisionByZero);
    }
    // Extended Euclid tracking only the coefficient of `a`, in the signed
    // representation (value, is_negative) to avoid a signed bigint type.
    let mut r0 = m.clone();
    let mut r1 = a.rem(m)?;
    let mut t0 = (Uint::zero(), false);
    let mut t1 = (Uint::one(), false);

    while !r1.is_zero() {
        let (q, r2) = r0.div_rem(&r1)?;
        // t2 = t0 - q * t1 in signed arithmetic.
        let qt1 = q.mul(&t1.0);
        let t2 = signed_sub(&t0, &(qt1, t1.1));
        r0 = r1;
        r1 = r2;
        t0 = t1;
        t1 = t2;
    }

    if !r0.is_one() {
        return Err(CryptoError::NotInvertible);
    }
    let (mag, neg) = t0;
    let mag = mag.rem(m)?;
    if neg && !mag.is_zero() {
        Ok(m.sub(&mag))
    } else {
        Ok(mag)
    }
}

/// Signed subtraction on (magnitude, negative) pairs.
fn signed_sub(a: &(Uint, bool), b: &(Uint, bool)) -> (Uint, bool) {
    match (a.1, b.1) {
        // a - b with both nonnegative.
        (false, false) => {
            if a.0 >= b.0 {
                (a.0.sub(&b.0), false)
            } else {
                (b.0.sub(&a.0), true)
            }
        }
        // a - (-b) = a + b
        (false, true) => (a.0.add(&b.0), false),
        // -a - b = -(a + b)
        (true, false) => (a.0.add(&b.0), true),
        // -a - (-b) = b - a
        (true, true) => {
            if b.0 >= a.0 {
                (b.0.sub(&a.0), false)
            } else {
                (a.0.sub(&b.0), true)
            }
        }
    }
}

/// Least common multiple. Used for the Carmichael function in RSA keygen.
pub fn lcm(a: &Uint, b: &Uint) -> Uint {
    if a.is_zero() || b.is_zero() {
        return Uint::zero();
    }
    let g = a.gcd(b);
    a.div_rem(&g).expect("gcd nonzero").0.mul(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> Uint {
        Uint::from_u64(v)
    }

    #[test]
    fn mod_pow_small() {
        assert_eq!(mod_pow(&u(2), &u(10), &u(1000)).unwrap(), u(24));
        assert_eq!(mod_pow(&u(3), &u(0), &u(7)).unwrap(), u(1));
        assert_eq!(mod_pow(&u(0), &u(5), &u(7)).unwrap(), u(0));
        assert_eq!(mod_pow(&u(5), &u(3), &u(1)).unwrap(), u(0));
    }

    #[test]
    fn mod_pow_fermat() {
        // a^(p-1) ≡ 1 mod p for prime p, gcd(a,p)=1.
        let p = u(1_000_000_007);
        for a in [2u64, 3, 65537, 999_999_999] {
            assert_eq!(mod_pow(&u(a), &p.sub(&Uint::one()), &p).unwrap(), Uint::one());
        }
    }

    #[test]
    fn mod_pow_large_modulus() {
        // 2^128 mod (2^89 - 1) — Mersenne prime modulus, cross-checked value.
        let m = Uint::from_hex("1ffffffffffffffffffffff").unwrap(); // 2^89-1
        let got = mod_pow(&u(2), &u(128), &m).unwrap();
        // 2^128 = 2^89 * 2^39 ≡ 2^39 (mod 2^89 - 1)
        assert_eq!(got, Uint::one().shl(39));
    }

    #[test]
    fn mod_pow_zero_modulus() {
        assert_eq!(
            mod_pow(&u(2), &u(2), &Uint::zero()),
            Err(CryptoError::DivisionByZero)
        );
    }

    #[test]
    fn mod_inv_basics() {
        let inv = mod_inv(&u(3), &u(11)).unwrap();
        assert_eq!(inv, u(4)); // 3*4 = 12 ≡ 1 mod 11
        assert_eq!(mod_inv(&u(4), &u(8)), Err(CryptoError::NotInvertible));
        assert_eq!(mod_inv(&u(1), &u(2)).unwrap(), u(1));
    }

    #[test]
    fn mod_inv_round_trip_large() {
        let m = Uint::from_hex("ffffffffffffffffffffffffffffff61").unwrap();
        let a = Uint::from_hex("123456789abcdef0123456789abcdef").unwrap();
        let inv = mod_inv(&a, &m).unwrap();
        assert_eq!(mod_mul(&a, &inv, &m).unwrap(), Uint::one());
    }

    #[test]
    fn mod_sub_wraps() {
        assert_eq!(mod_sub(&u(3), &u(5), &u(7)).unwrap(), u(5));
        assert_eq!(mod_sub(&u(5), &u(3), &u(7)).unwrap(), u(2));
        assert_eq!(mod_sub(&u(5), &u(5), &u(7)).unwrap(), u(0));
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm(&u(4), &u(6)), u(12));
        assert_eq!(lcm(&u(0), &u(6)), u(0));
        assert_eq!(lcm(&u(7), &u(13)), u(91));
    }

    /// Reference square-and-multiply with full reductions, for cross-checks.
    fn mod_pow_reference(base: &Uint, exp: &Uint, m: &Uint) -> Uint {
        let mut result = Uint::one();
        let mut acc = base.rem(m).unwrap();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul(&acc).rem(m).unwrap();
            }
            acc = acc.mul(&acc).rem(m).unwrap();
        }
        result
    }

    #[test]
    fn montgomery_matches_reference() {
        // Sweep odd moduli of several limb counts and assorted exponents.
        let moduli = [
            Uint::from_u64(3),
            Uint::from_u64(65537),
            Uint::from_hex("ffffffffffffffc5").unwrap(),
            Uint::from_hex("e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934d").unwrap(),
            Uint::from_hex(
                "c107f487b029ebb4d0dd9b0cb530fe64da0ee699f2cc562ab5891f2bd236366b",
            )
            .unwrap(),
        ];
        let exps = [
            Uint::zero(),
            Uint::one(),
            Uint::from_u64(2),
            Uint::from_u64(65537),
            Uint::from_hex("123456789abcdef0123456789abcdef").unwrap(),
        ];
        let bases = [
            Uint::zero(),
            Uint::one(),
            Uint::from_u64(2),
            Uint::from_hex("deadbeefcafebabe0123456789abcdef").unwrap(),
        ];
        for m in &moduli {
            for e in &exps {
                for b in &bases {
                    assert_eq!(
                        mod_pow(b, e, m).unwrap(),
                        mod_pow_reference(b, e, m),
                        "b={b:?} e={e:?} m={m:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn montgomery_rejects_even_modulus() {
        assert!(Montgomery::new(&Uint::from_u64(10)).is_err());
        assert!(Montgomery::new(&Uint::one()).is_err());
        assert!(Montgomery::new(&Uint::zero()).is_err());
        // Even modulus still works through the generic path.
        assert_eq!(mod_pow(&u(3), &u(4), &u(10)).unwrap(), u(1));
    }

    #[test]
    fn montgomery_base_larger_than_modulus() {
        let m = Uint::from_hex("ffffffffffffffc5").unwrap();
        let big = m.mul(&u(3)).add(&u(7));
        assert_eq!(
            mod_pow(&big, &u(5), &m).unwrap(),
            mod_pow_reference(&big, &u(5), &m)
        );
    }

    #[test]
    fn mod_add_mul() {
        assert_eq!(mod_add(&u(5), &u(6), &u(7)).unwrap(), u(4));
        assert_eq!(mod_mul(&u(5), &u(6), &u(7)).unwrap(), u(2));
    }
}
