//! Session and addition classification — the §5/§6 headline statistics.
//!
//! * 39 % of sessions carry additional certificates (§5, Figure 1);
//! * additions split 6.7 % Mozilla+iOS7 / 16.2 % iOS7-only / 37.1 %
//!   Android-specific / 40.0 % not recorded by the Notary (§5.1);
//! * 24 % of sessions run on rooted handsets; rooted-only certificates
//!   show up in ~6 % of those (§6).

use std::collections::HashMap;
use tangled_netalyzr::Population;
use tangled_pki::extras::{catalogue, Figure2Class};
use tangled_pki::stores::{global_factory, mint_extra};
use tangled_x509::CertIdentity;

/// The headline aggregate statistics of §5 and §6.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadlineStats {
    /// Fraction of sessions whose store extends the AOSP baseline.
    pub extended_session_fraction: f64,
    /// Number of devices missing AOSP certificates (paper: 5).
    pub devices_missing_certs: usize,
    /// Fraction of sessions on rooted handsets (paper: 24 %).
    pub rooted_session_fraction: f64,
    /// Of rooted sessions, the fraction exposing root-app-installed
    /// certificates (paper: ~6 %).
    pub rooted_only_share_of_rooted: f64,
    /// Distinct additional-certificate identities observed.
    pub distinct_additions: usize,
}

/// Compute the headline statistics over a population.
pub fn headline_stats(pop: &Population) -> HeadlineStats {
    let mut extended = 0usize;
    let mut rooted = 0usize;
    let mut rooted_only = 0usize;
    for s in &pop.sessions {
        let d = pop.device_of(s);
        if d.has_extended_store() {
            extended += 1;
        }
        if d.rooted {
            rooted += 1;
            if d.has_root_app_certs() {
                rooted_only += 1;
            }
        }
    }
    let n = pop.sessions.len().max(1) as f64;
    let mut additions: std::collections::HashSet<CertIdentity> = Default::default();
    for d in &pop.devices {
        for a in d.additional_certs() {
            additions.insert(a.identity());
        }
    }
    HeadlineStats {
        extended_session_fraction: extended as f64 / n,
        devices_missing_certs: pop
            .devices
            .iter()
            .filter(|d| d.is_missing_aosp_certs())
            .count(),
        rooted_session_fraction: rooted as f64 / n,
        rooted_only_share_of_rooted: if rooted == 0 {
            0.0
        } else {
            rooted_only as f64 / rooted as f64
        },
        distinct_additions: additions.len(),
    }
}

/// The §4.1 collection statistics: "we collected information about 2.3
/// million root certificates in 15,970 Netalyzr executions … only 314 root
/// certificates are unique based on the certificate signature."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectionStats {
    /// Root certificates collected across all sessions (each session
    /// reports its device's full store).
    pub total_collected: u64,
    /// Distinct certificates among them, by the paper's identity.
    pub unique: usize,
}

/// Compute the collection statistics over a population.
pub fn collection_stats(pop: &Population) -> CollectionStats {
    let mut total = 0u64;
    let mut unique: std::collections::HashSet<CertIdentity> = Default::default();
    // Unique certificates per *device store*; session totals weight by use.
    let mut per_device_size: Vec<u64> = Vec::with_capacity(pop.devices.len());
    for d in &pop.devices {
        per_device_size.push(d.store.len() as u64);
        for a in d.store.iter() {
            unique.insert(a.identity());
        }
    }
    for s in &pop.sessions {
        total += per_device_size[s.device.0 as usize];
    }
    CollectionStats {
        total_collected: total,
        unique: unique.len(),
    }
}

/// Map from certificate identity to Figure 2 class for every catalogued
/// extra (additions outside the catalogue — rooted CAs, user VPN roots —
/// classify as "not recorded", which is where the paper's Notary lookup
/// would put them too).
pub fn class_index() -> HashMap<CertIdentity, Figure2Class> {
    let mut factory = global_factory().lock().expect("factory poisoned");
    catalogue()
        .iter()
        .map(|e| (mint_extra(&mut factory, e).identity(), e.class()))
        .collect()
}

/// Distribution of addition classes over *distinct* additional
/// certificates observed on non-rooted devices — the §5.1 percentages.
pub fn addition_class_distribution(pop: &Population) -> HashMap<Figure2Class, f64> {
    let index = class_index();
    let mut seen: std::collections::HashSet<CertIdentity> = Default::default();
    for d in pop.devices.iter().filter(|d| !d.rooted) {
        for a in d.additional_certs() {
            seen.insert(a.identity());
        }
    }
    let mut counts: HashMap<Figure2Class, usize> = HashMap::new();
    for id in &seen {
        let class = index
            .get(id)
            .copied()
            .unwrap_or(Figure2Class::NotRecorded);
        *counts.entry(class).or_default() += 1;
    }
    let total = seen.len().max(1) as f64;
    counts
        .into_iter()
        .map(|(k, v)| (k, v as f64 / total))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangled_netalyzr::PopulationSpec;

    fn pop() -> Population {
        Population::generate(&PopulationSpec::scaled(0.5))
    }

    #[test]
    fn extended_fraction_near_39_percent() {
        let stats = headline_stats(&pop());
        assert!(
            (0.30..=0.48).contains(&stats.extended_session_fraction),
            "extended fraction {:.3} (paper: 0.39)",
            stats.extended_session_fraction
        );
    }

    #[test]
    fn rooted_fraction_near_24_percent() {
        let stats = headline_stats(&pop());
        assert!(
            (0.18..=0.30).contains(&stats.rooted_session_fraction),
            "rooted {:.3}",
            stats.rooted_session_fraction
        );
    }

    #[test]
    fn missing_devices_counted() {
        let stats = headline_stats(&pop());
        assert_eq!(stats.devices_missing_certs, 5);
    }

    #[test]
    fn class_distribution_covers_all_classes() {
        let dist = addition_class_distribution(&pop());
        let total: f64 = dist.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // All four legend classes appear among wild additions.
        assert!(dist.contains_key(&Figure2Class::MozillaAndIos7));
        assert!(dist.contains_key(&Figure2Class::Ios7));
        assert!(dist.contains_key(&Figure2Class::OnlyAndroid));
        assert!(dist.contains_key(&Figure2Class::NotRecorded));
        // Shape: NotRecorded and OnlyAndroid dominate, as in §5.1.
        assert!(dist[&Figure2Class::NotRecorded] > dist[&Figure2Class::MozillaAndIos7]);
        assert!(dist[&Figure2Class::OnlyAndroid] > dist[&Figure2Class::MozillaAndIos7]);
    }

    #[test]
    fn collection_stats_match_section_4_1() {
        // Full scale: the paper collects 2.3M root certs over 15,970
        // sessions (~144/session) with ~314 unique.
        let pop = Population::generate(&PopulationSpec::default());
        let stats = collection_stats(&pop);
        let per_session = stats.total_collected as f64 / 15_970.0;
        assert!(
            (139.0..=165.0).contains(&per_session),
            "per-session store size {per_session:.1} (paper: ~144)"
        );
        assert!(
            (2_200_000..=2_600_000).contains(&stats.total_collected),
            "total {} (paper: 2.3M)",
            stats.total_collected
        );
        assert!(
            (250..=340).contains(&stats.unique),
            "unique {} (paper: 314)",
            stats.unique
        );
    }

    #[test]
    fn class_index_covers_catalogue() {
        let idx = class_index();
        assert_eq!(idx.len(), 104);
    }
}
