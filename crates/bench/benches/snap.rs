//! Snapshot persistence benchmarks (DESIGN.md §12).
//!
//! The number the subsystem exists for: cold-generating a study from the
//! seed versus loading the same study back from a snapshot file. Encode
//! and journal-append rates ride along so regressions in the wire format
//! show up without a profiler.

use criterion::black_box;
use tangled_bench::criterion;
use tangled_core::Study;
use tangled_exec::ExecPool;
use tangled_pki::stores::ReferenceStore;
use tangled_snap::{
    decode_study, encode_checkpoint, encode_delta, encode_study, encode_study_sections,
    materialize, read_checkpoint, Journal, Snapshot, SwapRecord, TrustState,
};

fn main() {
    let mut c = criterion();

    let scale = 0.25;
    let study = Study::new(scale, scale);
    let bytes = encode_study(&study, &ExecPool::current());
    println!(
        "snapshot at scale {scale}: {} bytes, {} section-body bytes",
        bytes.len(),
        Snapshot::parse(bytes.clone())
            .expect("own bytes parse")
            .entries()
            .iter()
            .map(|e| e.len)
            .sum::<u64>()
    );

    // The headline comparison: cold generate vs snapshot load.
    c.bench_function("snap/cold_generate", |b| {
        b.iter(|| black_box(Study::new(scale, scale).population.devices.len()))
    });
    c.bench_function("snap/load", |b| {
        b.iter(|| {
            let snap = Snapshot::parse(bytes.clone()).expect("parses");
            black_box(decode_study(&snap).expect("decodes").population.devices.len())
        })
    });

    // Encode at width 1 vs 4: the section bodies shard over the pool.
    for width in [1usize, 4] {
        let pool = ExecPool::with_threads(width);
        c.bench_function(&format!("snap/encode_{width}t"), |b| {
            b.iter(|| black_box(encode_study(&study, &pool).len()))
        });
    }

    // Journal append+fsync rate, the cost a trustd swap pays up front.
    let dir = std::env::temp_dir().join("tangled-bench-snap");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("bench-{}.jrn", std::process::id()));
    let record = SwapRecord {
        profile: "bench".into(),
        epoch: 1,
        store: ReferenceStore::Mozilla.cached().snapshot(),
    };
    c.bench_function("snap/journal_append_fsync", |b| {
        let _ = std::fs::remove_file(&path);
        let (mut journal, _, _) = Journal::open(path.to_str().unwrap()).expect("opens");
        b.iter(|| journal.append(black_box(&record)).expect("appends"))
    });
    let _ = std::fs::remove_file(&path);

    // Delta encode + chain materialisation: the longitudinal format's
    // incremental cost against re-encoding a full snapshot.
    let sections = encode_study_sections(&study, &ExecPool::current());
    c.bench_function("snap/delta_encode", |b| {
        b.iter(|| black_box(encode_delta(&sections, &bytes, 1).expect("encodes").bytes.len()))
    });
    let delta = encode_delta(&sections, &bytes, 1).expect("encodes").bytes;
    let chain = [bytes.clone(), delta];
    c.bench_function("snap/delta_materialize", |b| {
        b.iter(|| black_box(materialize(&chain, u64::MAX).expect("materialises").bytes.len()))
    });

    // Recovery comparison: replaying an unbounded journal (O(total
    // swaps ever)) vs opening a compacted checkpoint plus the truncated
    // tail (O(current state)). 256 swaps folding to 4 profiles.
    let swaps: Vec<SwapRecord> = (0..256u64)
        .map(|i| SwapRecord {
            profile: format!("canary-{}", i % 4),
            epoch: 11 + i,
            store: ReferenceStore::Mozilla.cached().snapshot(),
        })
        .collect();
    let unbounded_path = dir.join(format!("unbounded-{}.jrn", std::process::id()));
    let _ = std::fs::remove_file(&unbounded_path);
    let (mut journal, _, _) = Journal::open(unbounded_path.to_str().unwrap()).expect("opens");
    for record in &swaps {
        journal.append(record).expect("appends");
    }
    drop(journal);
    c.bench_function("snap/recover_unbounded_journal", |b| {
        b.iter(|| {
            let (_, records, _) =
                Journal::open(unbounded_path.to_str().unwrap()).expect("opens");
            black_box(records.len())
        })
    });

    let state = TrustState::fold(&swaps);
    let ckpt = encode_checkpoint(None, &state).expect("checkpoint encodes").bytes;
    let ckpt_path = dir.join(format!("compacted-{}.ckpt", std::process::id()));
    std::fs::write(&ckpt_path, &ckpt).expect("checkpoint writes");
    let tail_path = dir.join(format!("compacted-{}.jrn", std::process::id()));
    let _ = std::fs::remove_file(&tail_path);
    let (journal, _, _) = Journal::open(tail_path.to_str().unwrap()).expect("opens");
    drop(journal);
    c.bench_function("snap/recover_compacted_checkpoint", |b| {
        b.iter(|| {
            let snap = Snapshot::open(ckpt_path.to_str().unwrap()).expect("opens");
            let state = read_checkpoint(&snap)
                .expect("reads")
                .expect("carries trust-state");
            let (_, tail, _) = Journal::open(tail_path.to_str().unwrap()).expect("opens");
            black_box(state.records.len() + tail.len())
        })
    });
    let _ = std::fs::remove_file(&unbounded_path);
    let _ = std::fs::remove_file(&ckpt_path);
    let _ = std::fs::remove_file(&tail_path);

    c.final_summary();
}
